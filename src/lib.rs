//! # flint-suite — umbrella crate for the FLInt reproduction
//!
//! Re-exports every crate of the workspace under one roof so that the
//! examples and integration tests can exercise the whole system:
//!
//! * [`core`] — the FLInt operator (the paper's contribution),
//! * [`softfloat`] — software IEEE-754 arithmetic (no-FPU baseline),
//! * [`data`] — synthetic UCI-shaped datasets,
//! * [`forest`] — CART training and random forests,
//! * [`layout`] — the CAGS cache-aware layout optimization,
//! * [`qscorer`] — QuickScorer interleaved traversal with a FLInt mode,
//! * [`exec`] — the measured inference backends and the unified engine
//!   layer (`Predictor` trait + `EngineKind` registry) every
//!   prediction path plugs into,
//! * [`codegen`] — C/ASM/Rust emitters and the integer-only tree VM,
//! * [`sim`] — machine cost models and cycle accounting,
//! * [`serve`] — the micro-batching inference server (request
//!   queueing over any registered engine, TCP/stdin front ends).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use flint_codegen as codegen;
pub use flint_core as core;
pub use flint_data as data;
pub use flint_exec as exec;
pub use flint_forest as forest;
pub use flint_layout as layout;
pub use flint_qscorer as qscorer;
pub use flint_serve as serve;
pub use flint_sim as sim;
pub use flint_softfloat as softfloat;
