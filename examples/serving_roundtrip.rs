//! Client/server round trip through the `flint-serve` TCP front ends:
//! train a forest, serve it on a loopback port — through the `epoll`
//! event loop on Linux, the `threads` baseline elsewhere — score rows
//! over the wire from concurrent client connections, check every
//! response against the forest's direct majority vote, read the
//! `stats` snapshot, and shut the server down cleanly.
//!
//! ```text
//! cargo run --release --example serving_roundtrip
//! ```

use flint_suite::data::synth::SynthSpec;
use flint_suite::exec::{EngineBuilder, EngineKind};
use flint_suite::forest::{ForestConfig, RandomForest};
use flint_suite::serve::{BatchPolicy, EpollServer, FrontEnd, MetricsSnapshot, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SynthSpec::new(240, 6, 3).seed(17).generate();
    let forest = RandomForest::fit(&data, &ForestConfig::grid(12, 10))?;
    let engine = EngineBuilder::new(&forest)
        .build(EngineKind::parse("flint-blocked").expect("registered"))?;
    let policy = BatchPolicy::default()
        .max_batch(16)
        .linger(Duration::from_micros(300))
        .workers(2);

    // The event-loop front end is the default on Linux; both speak the
    // identical line protocol, so everything below is front-end
    // agnostic.
    let front_end = if cfg!(target_os = "linux") {
        FrontEnd::Epoll
    } else {
        FrontEnd::Threads
    };
    // Port 0 = ephemeral: the OS picks a free loopback port.
    type Runner = JoinHandle<std::io::Result<MetricsSnapshot>>;
    let (addr, engine_name, runner): (SocketAddr, &str, Runner) = match front_end {
        FrontEnd::Epoll => {
            let server = EpollServer::bind("127.0.0.1:0", engine, policy)?;
            let addr = server.local_addr();
            let name = server.engine_name();
            (addr, name, std::thread::spawn(move || server.run()))
        }
        FrontEnd::Threads => {
            let server = Server::bind("127.0.0.1:0", engine, policy)?;
            let addr = server.local_addr();
            let name = server.engine_name();
            (addr, name, std::thread::spawn(move || server.run()))
        }
    };
    println!(
        "serving {} trees on {addr} (engine {engine_name}, front end {front_end})",
        forest.n_trees()
    );

    // Four concurrent clients, each scoring a strided quarter of the
    // rows — their requests coalesce into shared batches server-side.
    const CLIENTS: usize = 4;
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let data = &data;
            let forest = &forest;
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connects");
                stream.set_nodelay(true).expect("nodelay");
                let mut reader = BufReader::new(stream.try_clone().expect("clones"));
                let mut writer = stream;
                let mut line = String::new();
                for i in (client..data.n_samples()).step_by(CLIENTS) {
                    let row: Vec<String> = data.sample(i).iter().map(f32::to_string).collect();
                    // Even-numbered clients speak bare CSV, odd ones the
                    // JSON-ish form; the server accepts both.
                    let request = if client % 2 == 0 {
                        row.join(",") + "\n"
                    } else {
                        format!("{{\"features\":[{}]}}\n", row.join(","))
                    };
                    writer.write_all(request.as_bytes()).expect("writes");
                    line.clear();
                    reader.read_line(&mut line).expect("reads");
                    let expected = forest.predict_majority(data.sample(i));
                    assert!(
                        line.starts_with(&format!("{{\"class\":{expected},")),
                        "row {i}: served {line:?}, expected class {expected}"
                    );
                }
            });
        }
    });
    println!(
        "{} rows served, every response bit-identical to predict_majority",
        data.n_samples()
    );

    // One more connection for the admin commands.
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    writer.write_all(b"stats\n")?;
    reader.read_line(&mut line)?;
    println!("stats: {}", line.trim());
    writer.write_all(b"shutdown\n")?;
    line.clear();
    reader.read_line(&mut line)?;
    println!("shutdown: {}", line.trim());

    let final_stats = runner.join().expect("server thread")?;
    assert_eq!(final_stats.requests, data.n_samples() as u64);
    println!("final:  {}", final_stats.to_json());
    Ok(())
}
