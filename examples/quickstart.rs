//! Quickstart: train a random forest, compile it with FLInt, and verify
//! that the integer-only backend predicts identically to the naive
//! float backend while being FPU-free.
//!
//! Run with: `cargo run --example quickstart`

use flint_suite::core::{flint_le, PreparedThreshold};
use flint_suite::data::synth::SynthSpec;
use flint_suite::data::{train_test_split, FeatureMatrix};
use flint_suite::exec::{EngineBuilder, EngineKind};
use flint_suite::forest::metrics::accuracy;
use flint_suite::forest::{ForestConfig, RandomForest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The operator itself: one comparison, integer arithmetic only.
    println!("== The FLInt operator ==");
    println!(
        "flint_le(-2.935417, 10.074347) = {}",
        flint_le(-2.935417f32, 10.074347f32)
    );
    let node = PreparedThreshold::new(-2.935417f32)?;
    println!(
        "prepared threshold for -2.935417: key=0x{:08x}, flips_sign={}",
        node.key() as u32,
        node.flips_sign()
    );

    // 2. Train a forest on synthetic data (75/25 split like the paper).
    let data = SynthSpec::new(2000, 8, 3)
        .cluster_std(1.2)
        .negative_fraction(0.5)
        .seed(42)
        .name("quickstart")
        .generate();
    let split = train_test_split(&data, 0.25, 0);
    let forest = RandomForest::fit(&split.train, &ForestConfig::grid(20, 12))?;
    println!("\n== Trained forest ==");
    println!(
        "{} trees, {} nodes, depth {}",
        forest.n_trees(),
        forest.n_nodes(),
        forest.depth()
    );

    // 3. Build every engine of the registry and compare predictions —
    //    the paper's correctness claim, generalized to every execution
    //    strategy in the workspace.
    println!("\n== Engine agreement (the paper's correctness claim) ==");
    let matrix = FeatureMatrix::from_dataset(&split.test);
    let reference = forest.predict_dataset_majority(&split.test);
    let builder = EngineBuilder::new(&forest).profile_data(&split.train);
    for kind in EngineKind::ALL {
        let engine = builder.build(kind)?;
        let preds = engine.predict_matrix(&matrix);
        let agree = preds == reference;
        println!(
            "{:<20} accuracy {:.4}  identical: {}",
            engine.name(),
            accuracy(&preds, split.test.labels()),
            agree
        );
        assert!(agree, "engines must agree prediction-for-prediction");
    }
    println!(
        "\naccuracy {:.4} on every one of the {} registered engines — \
         unchanged by FLInt, as the paper proves.",
        accuracy(&reference, split.test.labels()),
        EngineKind::ALL.len(),
    );
    Ok(())
}
