//! Batch serving demo: score a synthetic UCI-shaped workload through
//! the blocked, multi-threaded batch engine on all four paper
//! configurations and print a throughput table.
//!
//! ```text
//! cargo run --release --example batch_serving
//! ```

use flint_suite::data::uci::{Scale, UciDataset};
use flint_suite::data::{train_test_split, FeatureMatrix};
use flint_suite::exec::{BackendKind, BatchEngine, BatchOptions, CompiledForest};
use flint_suite::forest::{ForestConfig, RandomForest};
use std::time::Instant;

/// Medians the per-run wall clock over `runs` scoring passes.
fn time_runs(runs: usize, mut f: impl FnMut() -> Vec<u32>) -> f64 {
    let mut secs: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            let out = f();
            let took = start.elapsed().as_secs_f64();
            assert!(!out.is_empty());
            took
        })
        .collect();
    secs.sort_by(f64::total_cmp);
    secs[secs.len() / 2]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = std::thread::available_parallelism()
        .map_or(4, usize::from)
        .clamp(2, 8);
    let data = UciDataset::Magic.generate(Scale::Small);
    let split = train_test_split(&data, 0.25, 42);
    let forest = RandomForest::fit(&split.train, &ForestConfig::grid(24, 16))?;
    let matrix = FeatureMatrix::from_dataset(&split.test);
    let n = split.test.n_samples() as f64;

    println!(
        "batch serving: {} test samples, {} trees, depth cap 16, {threads} threads\n",
        split.test.n_samples(),
        forest.n_trees(),
    );
    println!(
        "{:<14} {:>14} {:>14} {:>14} {:>9}",
        "backend", "scalar/s", "blocked/s", "threaded/s", "speedup"
    );
    for kind in BackendKind::PAPER_SET {
        let backend = CompiledForest::compile(&forest, kind, Some(&split.train))?;
        let blocked = BatchEngine::new(&backend, BatchOptions::default());
        let threaded = BatchEngine::new(&backend, BatchOptions::default().threads(threads));

        // Serving a wrong answer fast is not serving: check equivalence.
        let reference = backend.predict_dataset(&split.test);
        assert_eq!(blocked.predict(&matrix), reference);
        assert_eq!(threaded.predict(&matrix), reference);

        let scalar_s = time_runs(9, || backend.predict_dataset(&split.test));
        let blocked_s = time_runs(9, || blocked.predict(&matrix));
        let threaded_s = time_runs(9, || threaded.predict(&matrix));
        let best = blocked_s.min(threaded_s);
        println!(
            "{:<14} {:>14.0} {:>14.0} {:>14.0} {:>8.2}x",
            kind.name(),
            n / scalar_s,
            n / blocked_s,
            n / threaded_s,
            scalar_s / best,
        );
    }
    println!("\n(samples/second; speedup = scalar time / best batched time)");
    Ok(())
}
