//! Batch serving demo: score a synthetic UCI-shaped workload through
//! **every** engine of the `flint-exec` registry and print a throughput
//! table — the one place a serving operator would look to pick an
//! engine for deployment.
//!
//! ```text
//! cargo run --release --example batch_serving
//! ```

use flint_suite::data::uci::{Scale, UciDataset};
use flint_suite::data::{train_test_split, FeatureMatrix};
use flint_suite::exec::{BatchOptions, EngineBuilder, EngineKind};
use flint_suite::forest::{ForestConfig, RandomForest};
use std::time::Instant;

/// Medians the per-run wall clock over `runs` scoring passes.
fn time_runs(runs: usize, mut f: impl FnMut() -> Vec<u32>) -> f64 {
    let mut secs: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            let out = f();
            let took = start.elapsed().as_secs_f64();
            assert!(!out.is_empty());
            took
        })
        .collect();
    secs.sort_by(f64::total_cmp);
    secs[secs.len() / 2]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = std::thread::available_parallelism()
        .map_or(4, usize::from)
        .clamp(2, 8);
    let data = UciDataset::Magic.generate(Scale::Small);
    let split = train_test_split(&data, 0.25, 42);
    let forest = RandomForest::fit(&split.train, &ForestConfig::grid(24, 16))?;
    let matrix = FeatureMatrix::from_dataset(&split.test);
    let n = split.test.n_samples() as f64;

    println!(
        "batch serving: {} test samples, {} trees, depth cap 16, {threads} threads\n",
        split.test.n_samples(),
        forest.n_trees(),
    );
    println!(
        "{:<20} {:>12} {:>12} {:>9}  strategy",
        "engine", "1 thread/s", "threaded/s", "speedup"
    );

    // Serving a wrong answer fast is not serving: every engine is
    // checked against the forest's majority vote before timing.
    let reference = forest.predict_dataset_majority(&split.test);
    let builder = EngineBuilder::new(&forest).profile_data(&split.train);
    let baseline_kind = EngineKind::parse("naive").expect("registered");
    let mut baseline_secs = None;
    for kind in EngineKind::ALL {
        let engine = builder.build(kind)?;
        assert_eq!(engine.predict_matrix(&matrix), reference, "{kind} diverges");

        let single = BatchOptions::default();
        let pooled = BatchOptions::default().threads(threads);
        let single_s = time_runs(5, || engine.predict_batch(&matrix, &single));
        let pooled_s = time_runs(5, || engine.predict_batch(&matrix, &pooled));
        if kind == baseline_kind {
            baseline_secs = Some(single_s);
        }
        let best = single_s.min(pooled_s);
        let speedup = baseline_secs.map_or(f64::NAN, |b| b / best);
        println!(
            "{:<20} {:>12.0} {:>12.0} {:>8.2}x  {}",
            kind.name(),
            n / single_s,
            n / pooled_s,
            speedup,
            kind.describe(),
        );
    }
    println!(
        "\n(samples/second; speedup = naive scalar time / engine's best time;\n\
         vm-* rows interpret bytecode instruction-by-instruction on purpose —\n\
         they model the paper's assembly backend for the cost simulator)"
    );
    Ok(())
}
