//! FLInt beyond random forests: the paper's future work notes that
//! "FLInts can be integrated into other applications, which heavily
//! rely on floating point comparisons". This example sorts, searches
//! and aggregates float data using **integer comparisons only** via
//! [`FlintOrd`] and the `flint_min`/`flint_max` operators — everything
//! an FPU-less device needs for telemetry post-processing.
//!
//! Run with: `cargo run --example sorting_search`

use flint_suite::core::{flint_max, flint_min, FlintOrd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let readings: Vec<f32> = (0..20).map(|_| rng.gen_range(-50.0f32..50.0)).collect();
    println!("raw sensor readings: {readings:.3?}");

    // Sort with integer comparisons only.
    let mut ordered: Vec<FlintOrd<f32>> = readings
        .iter()
        .map(|&v| FlintOrd::try_new(v).expect("sensor data is never NaN"))
        .collect();
    ordered.sort(); // Ord impl = FLInt integer comparisons
    let sorted: Vec<f32> = ordered.iter().map(|o| o.value()).collect();
    println!("sorted (integer-only): {sorted:.3?}");
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));

    // Binary search for an insertion point — still integer-only.
    let probe = FlintOrd::new(0.0f32);
    let idx = ordered.binary_search(&probe).unwrap_or_else(|i| i);
    println!("insertion point for 0.0: index {idx}");
    assert!(idx == 0 || sorted[idx - 1] <= 0.0);
    assert!(idx == sorted.len() || sorted[idx] >= 0.0);

    // Running min/max/clamp without a single float instruction.
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in &readings {
        lo = flint_min(lo, v);
        hi = flint_max(hi, v);
    }
    println!("range: [{lo:.3}, {hi:.3}]");
    assert_eq!(lo, sorted[0]);
    assert_eq!(hi, *sorted.last().expect("non-empty"));

    // Median via the sorted order.
    let median = sorted[sorted.len() / 2];
    println!("median: {median:.3}");

    // A BTreeMap keyed by floats — impossible with raw f32 (no Ord),
    // trivial with FlintOrd.
    use std::collections::BTreeMap;
    let histogram: BTreeMap<FlintOrd<f32>, usize> = readings
        .iter()
        .map(|&v| (FlintOrd::new((v / 10.0).floor() * 10.0), 1))
        .fold(BTreeMap::new(), |mut m, (k, c)| {
            *m.entry(k).or_insert(0) += c;
            m
        });
    println!("decade histogram:");
    for (bucket, count) in &histogram {
        println!(
            "  [{:>6.1}, {:>6.1}): {}",
            bucket.value(),
            bucket.value() + 10.0,
            count
        );
    }
}
