//! End-to-end deployment pipeline: train → persist → reload → compile
//! with CAGS+FLInt → serve — the workflow a downstream user of this
//! library would run in production.
//!
//! Run with: `cargo run --example model_deployment`

use flint_suite::data::train_test_split;
use flint_suite::data::uci::{Scale, UciDataset};
use flint_suite::exec::{BackendKind, CompiledForest};
use flint_suite::forest::metrics::{accuracy, confusion_matrix};
use flint_suite::forest::{io, ForestConfig, RandomForest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train on a MAGIC-telescope-shaped dataset.
    let data = UciDataset::Magic.generate(Scale::Tiny);
    let split = train_test_split(&data, 0.25, 123);
    let forest = RandomForest::fit(&split.train, &ForestConfig::grid(30, 15))?;
    println!(
        "trained {} trees ({} nodes) on {} samples",
        forest.n_trees(),
        forest.n_nodes(),
        split.train.n_samples()
    );

    // 2. Persist the model to the text format and reload it (in memory
    //    here; a file works the same through any Write/BufRead).
    let mut buffer = Vec::new();
    io::write_forest(&forest, &mut buffer)?;
    println!("serialized model: {} bytes", buffer.len());
    let reloaded = io::read_forest(&buffer[..])?;
    assert_eq!(reloaded, forest, "round trip must be exact");

    // 3. Compile the deployment backend: CAGS layout (profiled on the
    //    training data, as the paper prescribes) + FLInt comparisons.
    let backend = CompiledForest::compile(&reloaded, BackendKind::CagsFlint, Some(&split.train))?;

    // 4. Serve the test set and report quality.
    let preds = backend.predict_dataset(&split.test);
    let acc = accuracy(&preds, split.test.labels());
    println!("deployed backend: {}", backend.kind().name());
    println!("test accuracy: {acc:.4}");
    let matrix = confusion_matrix(&preds, split.test.labels(), reloaded.n_classes());
    println!("confusion matrix (rows = truth):");
    for row in &matrix {
        println!("  {row:?}");
    }

    // 5. Sanity: identical to the naive float backend.
    let naive = CompiledForest::compile(&reloaded, BackendKind::Naive, None)?;
    assert_eq!(preds, naive.predict_dataset(&split.test));
    println!("predictions identical to the naive float backend — accuracy unchanged.");
    Ok(())
}
