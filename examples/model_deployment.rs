//! End-to-end deployment pipeline: train → persist → reload → compile
//! with CAGS+FLInt → serve — the workflow a downstream user of this
//! library would run in production.
//!
//! Run with: `cargo run --example model_deployment`

use flint_suite::data::train_test_split;
use flint_suite::data::uci::{Scale, UciDataset};
use flint_suite::data::FeatureMatrix;
use flint_suite::exec::{BatchOptions, EngineBuilder, EngineKind};
use flint_suite::forest::metrics::{accuracy, confusion_matrix};
use flint_suite::forest::{io, ForestConfig, RandomForest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train on a MAGIC-telescope-shaped dataset.
    let data = UciDataset::Magic.generate(Scale::Tiny);
    let split = train_test_split(&data, 0.25, 123);
    let forest = RandomForest::fit(&split.train, &ForestConfig::grid(30, 15))?;
    println!(
        "trained {} trees ({} nodes) on {} samples",
        forest.n_trees(),
        forest.n_nodes(),
        split.train.n_samples()
    );

    // 2. Persist the model to the text format and reload it (in memory
    //    here; a file works the same through any Write/BufRead).
    let mut buffer = Vec::new();
    io::write_forest(&forest, &mut buffer)?;
    println!("serialized model: {} bytes", buffer.len());
    let reloaded = io::read_forest(&buffer[..])?;
    assert_eq!(reloaded, forest, "round trip must be exact");

    // 3. Build the deployment engine from the registry by name, the
    //    way a config file would select it: CAGS layout (profiled on
    //    the training data, as the paper prescribes) + FLInt
    //    comparisons, through the blocked batch traversal with a small
    //    worker pool.
    let builder = EngineBuilder::new(&reloaded)
        .profile_data(&split.train)
        .options(BatchOptions::default().threads(2));
    let engine = builder.build(EngineKind::parse("cags-flint-blocked").expect("registered"))?;
    println!("deployed engine: {} — {}", engine.name(), engine.describe());

    // 4. Serve the test set and report quality. One-off requests go
    //    through `predict_one`; batches through the feature matrix.
    let features = FeatureMatrix::from_dataset(&split.test);
    let preds = engine.predict_matrix(&features);
    assert_eq!(preds[0], engine.predict_one(split.test.sample(0)));
    let acc = accuracy(&preds, split.test.labels());
    println!("test accuracy: {acc:.4}");
    let matrix = confusion_matrix(&preds, split.test.labels(), reloaded.n_classes());
    println!("confusion matrix (rows = truth):");
    for row in &matrix {
        println!("  {row:?}");
    }

    // 5. Sanity: identical to the naive float engine — swapping the
    //    engine name is the whole migration.
    let naive = builder.build(EngineKind::parse("naive").expect("registered"))?;
    assert_eq!(preds, naive.predict_matrix(&features));
    println!("predictions identical to the naive float engine — accuracy unchanged.");
    Ok(())
}
