//! A tour of the code generators: the same trained tree emitted as
//! standard C, FLInt C, ARMv8 assembly, X86 assembly and Rust — the
//! artifacts the paper's Listings 1–5 show.
//!
//! Run with: `cargo run --example codegen_tour`

use flint_suite::codegen::{
    emit_forest_rust, emit_tree_asm, emit_tree_c, AsmTarget, CVariant, RustVariant,
};
use flint_suite::data::synth::SynthSpec;
use flint_suite::forest::{ForestConfig, RandomForest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny tree so the listings stay readable.
    let data = SynthSpec::new(400, 4, 3)
        .cluster_std(1.2)
        .negative_fraction(0.6) // force some negative split values
        .seed(3)
        .generate();
    let forest = RandomForest::fit(&data, &ForestConfig::grid(1, 3))?;
    let tree = &forest.trees()[0];
    println!(
        "tree: {} nodes, depth {}, thresholds {:?}\n",
        tree.n_nodes(),
        tree.depth(),
        tree.thresholds().collect::<Vec<_>>()
    );

    println!("== Listing 1 style: standard if-else tree in C ==");
    println!("{}", emit_tree_c(tree, 0, CVariant::Standard));

    println!("== Listing 2/4 style: FLInt if-else tree in C ==");
    println!("{}", emit_tree_c(tree, 0, CVariant::Flint));

    println!("== Listing 5 style: FLInt ARMv8 assembly ==");
    println!("{}", emit_tree_asm(tree, 0, AsmTarget::Armv8));

    println!("== FLInt X86 assembly ==");
    println!("{}", emit_tree_asm(tree, 0, AsmTarget::X86));

    println!("== FLInt in Rust (Section IV-C: any language with bit reinterpretation) ==");
    println!("{}", emit_forest_rust(&forest, RustVariant::Flint));
    Ok(())
}
