//! Deploying a random forest on an FPU-less embedded device — the
//! scenario that motivates the paper.
//!
//! The trained model is compiled to the integer-only VM (the executable
//! analog of the paper's assembly backend), verified to contain **zero
//! float instructions**, and simulated on the embedded cost profile
//! against the software-float fallback such a device would otherwise
//! use.
//!
//! Run with: `cargo run --example embedded_no_fpu`

use flint_suite::codegen::{VmForest, VmProgram, VmVariant};
use flint_suite::data::train_test_split;
use flint_suite::data::uci::{Scale, UciDataset};
use flint_suite::forest::{ForestConfig, RandomForest};
use flint_suite::sim::{simulate_forest, Machine, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A wine-quality-shaped workload, small enough for a microcontroller.
    let data = UciDataset::Wine.generate(Scale::Small);
    let split = train_test_split(&data, 0.25, 7);
    let forest = RandomForest::fit(&split.train, &ForestConfig::grid(10, 8))?;

    // Compile to the integer-only bytecode.
    let vm = VmForest::compile(&forest, VmVariant::Flint);
    let fpu_free = vm.programs().iter().all(VmProgram::is_fpu_free);
    println!("== FLInt VM forest ==");
    println!("trees: {}", vm.programs().len());
    println!("contains float instructions: {}", !fpu_free);
    assert!(fpu_free, "FLInt programs must not need an FPU");

    // Classify the held-out set and count instructions.
    let mut correct = 0usize;
    let mut total_instr = 0u64;
    for i in 0..split.test.n_samples() {
        let (class, stats) = vm.run(split.test.sample(i))?;
        correct += usize::from(class == split.test.label(i));
        total_instr += stats.total();
    }
    println!(
        "test accuracy {:.4}, {:.1} instructions per inference",
        correct as f64 / split.test.n_samples() as f64,
        total_instr as f64 / split.test.n_samples() as f64
    );

    // Simulated cycle comparison on the embedded profile.
    let machine = Machine::EmbeddedNoFpu;
    println!("\n== {} ==", machine.name());
    println!("(naive hardware floats are impossible here — no FPU)");
    let soft = simulate_forest(
        machine,
        &forest,
        &split.train,
        &split.test,
        &SimConfig::softfloat(),
    )?;
    let flint = simulate_forest(
        machine,
        &forest,
        &split.train,
        &split.test,
        &SimConfig::flint(),
    )?;
    let asm = simulate_forest(
        machine,
        &forest,
        &split.train,
        &split.test,
        &SimConfig::flint_asm(),
    )?;
    println!(
        "softfloat fallback: {:>10.1} cycles/inference",
        soft.cycles_per_inference()
    );
    println!(
        "FLInt (C style):    {:>10.1} cycles/inference ({:.1}x faster)",
        flint.cycles_per_inference(),
        soft.cycles_per_inference() / flint.cycles_per_inference()
    );
    println!(
        "FLInt (asm style):  {:>10.1} cycles/inference ({:.1}x faster)",
        asm.cycles_per_inference(),
        soft.cycles_per_inference() / asm.cycles_per_inference()
    );
    Ok(())
}
