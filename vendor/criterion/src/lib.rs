//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access to crates.io, so this
//! in-workspace crate implements the criterion API surface the
//! workspace's benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`] — with a simple wall-clock measurement loop:
//! a short warm-up, then timed batches until a sampling budget is
//! reached, reporting the mean and minimum time per iteration.
//!
//! It is intentionally minimal: no statistics engine, no HTML reports,
//! no CLI filtering. Median-of-batches over a fixed time budget is
//! plenty to read off the paper's speedup *ratios* on the host.
#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, passed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    warm_up: Duration,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(80),
            budget: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Mirrors criterion's CLI hook; accepts no options here.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup { c: self, name }
    }

    /// Measures a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self.warm_up, self.budget, &id.to_string(), &mut f);
        self
    }
}

/// A named collection of benchmarks sharing a common prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Measures one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_one(self.c.warm_up, self.c.budget, &label, &mut f);
        self
    }

    /// Measures one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_one(self.c.warm_up, self.c.budget, &label, &mut |b| f(b, input));
        self
    }

    /// Ends the group (reports are printed eagerly; this is a no-op hook).
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A two-part id: `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        Self { text }
    }
}

/// Timing loop handle handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    budget: Duration,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    /// Fastest single batch, nanoseconds per iteration.
    best_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, first warming up, then sampling batches until
    /// the time budget is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and estimate a batch size that lasts >= ~1ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(1) || batch >= 1 << 20 {
                // Aim each sample at ~budget/10.
                let per_iter = took.as_secs_f64() / batch as f64;
                let target = self.budget.as_secs_f64() / 10.0;
                batch = ((target / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
                break;
            }
            batch *= 2;
        }
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        // Timed samples.
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut best = f64::INFINITY;
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            total += took;
            iters += batch;
            best = best.min(took.as_secs_f64() * 1e9 / batch as f64);
        }
        self.mean_ns = total.as_secs_f64() * 1e9 / iters.max(1) as f64;
        self.best_ns = best;
        self.iters = iters;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one(warm_up: Duration, budget: Duration, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        warm_up,
        budget,
        mean_ns: f64::NAN,
        best_ns: f64::NAN,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("  {label:<48} (no measurement)");
    } else {
        println!(
            "  {label:<48} mean {:>12}  best {:>12}  ({} iters)",
            format_ns(b.mean_ns),
            format_ns(b.best_ns),
            b.iters,
        );
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            budget: Duration::from_millis(10),
        };
        let mut group = c.benchmark_group("smoke");
        group.bench_function("noop", |b| b.iter(|| black_box(1u32 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
