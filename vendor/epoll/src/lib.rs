//! Offline in-workspace readiness-polling shim over raw `epoll`.
//!
//! The build environment has no network access to crates.io, so this
//! crate plays the role `mio`/`polling` would play for the event-loop
//! serving front end: a minimal safe wrapper over the three epoll
//! syscalls (`epoll_create1` / `epoll_ctl` / `epoll_wait`) plus a
//! pipe-based [`Waker`] for cross-thread wakeups, all through the libc
//! symbols `std` already links — no new dependencies.
//!
//! The API is deliberately tiny and level-triggered:
//!
//! * [`Poller::new`] creates the epoll instance;
//! * [`Poller::add`] / [`Poller::modify`] / [`Poller::delete`] manage
//!   one interest set ([`Interest`]) per file descriptor, each tagged
//!   with a caller-chosen `u64` token;
//! * [`Poller::wait`] fills an [`Events`] buffer with the descriptors
//!   that are ready right now;
//! * [`Waker::wake`] makes any thread able to force `wait` to return
//!   (the waker's read end is registered like any other descriptor).
//!
//! On non-Linux targets every constructor returns
//! [`std::io::ErrorKind::Unsupported`], so callers can fall back to a
//! blocking front end; the types still compile everywhere.
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

/// A raw file descriptor, as `std::os::fd::RawFd` spells it on Unix.
pub type RawFd = i32;

/// Which readiness classes a registration asks to be told about.
/// Hang-up and error conditions are always reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when the descriptor is readable.
    pub readable: bool,
    /// Report when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Self = Self {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Self = Self {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const READ_WRITE: Self = Self {
        readable: true,
        writable: true,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// The descriptor has bytes to read (or a pending accept).
    pub readable: bool,
    /// The descriptor can accept writes.
    pub writable: bool,
    /// The peer hung up (EPOLLHUP/EPOLLRDHUP) or the descriptor is in
    /// an error state (EPOLLERR). Treated as "read until EOF/error".
    pub closed: bool,
}

pub use sys::{Events, Poller, Waker};

#[cfg(target_os = "linux")]
mod sys {
    //! The real Linux implementation. This module is the crate's one
    //! unsafe island: every `unsafe` block is a raw libc call whose
    //! arguments are validated Rust values (no pointers outlive the
    //! call, every buffer length matches its allocation).

    use super::{Event, Interest, RawFd};
    use std::io;
    use std::sync::Arc;
    use std::time::Duration;

    use std::os::raw::{c_int, c_void};

    // The subset of <sys/epoll.h>, <unistd.h> and <fcntl.h> the shim
    // needs, declared against the libc `std` already links.
    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const O_NONBLOCK: c_int = 0o4000;
    const O_CLOEXEC: c_int = 0o2000000;

    /// The kernel's `struct epoll_event`: packed on x86-64 (the kernel
    /// ABI), naturally aligned everywhere else — matching glibc's
    /// `__EPOLL_PACKED` exactly.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn interest_mask(interest: Interest) -> u32 {
        let mut mask = EPOLLRDHUP;
        if interest.readable {
            mask |= EPOLLIN;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// A buffer [`Poller::wait`] fills with ready descriptors.
    pub struct Events {
        raw: Vec<EpollEvent>,
        len: usize,
    }

    impl std::fmt::Debug for Events {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Events")
                .field("capacity", &self.raw.len())
                .field("len", &self.len)
                .finish()
        }
    }

    impl Events {
        /// A buffer receiving at most `capacity` events per wait.
        pub fn with_capacity(capacity: usize) -> Self {
            Self {
                raw: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
                len: 0,
            }
        }

        /// The events delivered by the last [`Poller::wait`].
        pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
            self.raw[..self.len].iter().map(|raw| {
                // Copy out of the (possibly packed) struct before use.
                let events = raw.events;
                let data = raw.data;
                Event {
                    token: data,
                    readable: events & EPOLLIN != 0,
                    writable: events & EPOLLOUT != 0,
                    closed: events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                }
            })
        }

        /// Number of events delivered by the last wait.
        pub fn len(&self) -> usize {
            self.len
        }

        /// True when the last wait timed out with nothing ready.
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }
    }

    /// One epoll instance.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Creates the epoll instance (`EPOLL_CLOEXEC`).
        pub fn new() -> io::Result<Self> {
            // SAFETY: plain syscall, no pointers.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Self { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, mut event: Option<EpollEvent>) -> io::Result<()> {
            let ptr = event
                .as_mut()
                .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: `ptr` is null (DEL) or points at a live stack
            // value for the duration of the call.
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, ptr) })?;
            Ok(())
        }

        /// Registers `fd` with `token` and `interest`.
        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_ADD,
                fd,
                Some(EpollEvent {
                    events: interest_mask(interest),
                    data: token,
                }),
            )
        }

        /// Replaces the interest set of an already-registered `fd`.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_MOD,
                fd,
                Some(EpollEvent {
                    events: interest_mask(interest),
                    data: token,
                }),
            )
        }

        /// Deregisters `fd`.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        /// Blocks until at least one registered descriptor is ready or
        /// `timeout` elapses (`None` = forever). Returns the event
        /// count; `EINTR` is retried internally.
        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            let timeout_ms: c_int = match timeout {
                None => -1,
                // Round up so a sub-millisecond timeout still sleeps
                // instead of spinning at 0.
                Some(d) => c_int::try_from(d.as_millis().max(1)).unwrap_or(c_int::MAX),
            };
            events.len = 0;
            loop {
                let capacity = c_int::try_from(events.raw.len()).unwrap_or(c_int::MAX);
                // SAFETY: the buffer pointer and capacity describe the
                // same live Vec allocation; the kernel writes at most
                // `capacity` entries.
                let n =
                    unsafe { epoll_wait(self.epfd, events.raw.as_mut_ptr(), capacity, timeout_ms) };
                match cvt(n) {
                    Ok(n) => {
                        events.len = n as usize;
                        return Ok(events.len);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: closing a descriptor this struct exclusively owns.
            let _ = unsafe { close(self.epfd) };
        }
    }

    #[derive(Debug)]
    struct WakerFds {
        read_fd: RawFd,
        write_fd: RawFd,
    }

    impl Drop for WakerFds {
        fn drop(&mut self) {
            // SAFETY: closing the pipe ends this struct exclusively owns.
            unsafe {
                let _ = close(self.read_fd);
                let _ = close(self.write_fd);
            }
        }
    }

    /// A cross-thread wakeup: a nonblocking self-pipe whose read end is
    /// registered in the poller like any other descriptor. Cloneable
    /// and `Send`, so completion callbacks on worker threads can nudge
    /// the event loop.
    #[derive(Debug, Clone)]
    pub struct Waker {
        fds: Arc<WakerFds>,
    }

    impl Waker {
        /// Creates the pipe (both ends `O_NONBLOCK | O_CLOEXEC`).
        pub fn new() -> io::Result<Self> {
            let mut fds = [0 as c_int; 2];
            // SAFETY: `fds` is a live 2-element array for the call.
            cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
            Ok(Self {
                fds: Arc::new(WakerFds {
                    read_fd: fds[0],
                    write_fd: fds[1],
                }),
            })
        }

        /// The read end, for [`Poller::add`].
        pub fn read_fd(&self) -> RawFd {
            self.fds.read_fd
        }

        /// Makes the read end readable. A full pipe (`EAGAIN`) already
        /// guarantees a pending wakeup, so that error is ignored.
        pub fn wake(&self) {
            let byte = 1u8;
            // SAFETY: one-byte write from a live stack buffer to a
            // descriptor the Arc keeps open.
            let _ = unsafe { write(self.fds.write_fd, (&byte as *const u8).cast(), 1) };
        }

        /// Drains every pending wakeup byte (call after the poller
        /// reports the read end readable).
        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            loop {
                // SAFETY: reads into a live stack buffer of the stated
                // length from a descriptor the Arc keeps open.
                let n = unsafe { read(self.fds.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
                if n <= 0 {
                    break;
                }
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Stub for non-Linux targets: everything compiles, constructors
    //! report [`std::io::ErrorKind::Unsupported`] so callers fall back
    //! to a blocking front end.

    use super::{Event, Interest, RawFd};
    use std::io;
    use std::time::Duration;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll is only available on Linux",
        )
    }

    /// Event buffer stub.
    #[derive(Debug)]
    pub struct Events;

    impl Events {
        /// Stub constructor.
        pub fn with_capacity(_capacity: usize) -> Self {
            Self
        }

        /// Always empty.
        pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
            std::iter::empty()
        }

        /// Always zero.
        pub fn len(&self) -> usize {
            0
        }

        /// Always true.
        pub fn is_empty(&self) -> bool {
            true
        }
    }

    /// Poller stub; [`Poller::new`] always errors.
    #[derive(Debug)]
    pub struct Poller;

    impl Poller {
        /// Always `Unsupported`.
        pub fn new() -> io::Result<Self> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn add(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn modify(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn delete(&self, _fd: RawFd) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn wait(&self, _events: &mut Events, _timeout: Option<Duration>) -> io::Result<usize> {
            Err(unsupported())
        }
    }

    /// Waker stub; [`Waker::new`] always errors.
    #[derive(Debug, Clone)]
    pub struct Waker;

    impl Waker {
        /// Always `Unsupported`.
        pub fn new() -> io::Result<Self> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn read_fd(&self) -> RawFd {
            -1
        }

        /// No-op.
        pub fn wake(&self) {}

        /// No-op.
        pub fn drain(&self) {}
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    #[test]
    fn waker_wakes_and_drains() {
        let poller = Poller::new().expect("epoll available");
        let waker = Waker::new().expect("pipe available");
        let mut events = Events::with_capacity(4);
        poller
            .add(waker.read_fd(), 7, Interest::READ)
            .expect("registers");

        // Nothing pending: a short wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .expect("waits");
        assert_eq!(n, 0);
        assert!(events.is_empty());

        // A wake from another thread surfaces as readability with the
        // registered token.
        let remote = waker.clone();
        std::thread::spawn(move || remote.wake());
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("waits");
        assert_eq!(n, 1);
        let event = events.iter().next().expect("one event");
        assert_eq!(event.token, 7);
        assert!(event.readable);
        waker.drain();

        // Drained: the next wait is empty again.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .expect("waits");
        assert_eq!(n, 0);
    }

    #[test]
    fn socket_readiness_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let poller = Poller::new().expect("epoll available");
        let mut events = Events::with_capacity(8);
        poller
            .add(listener.as_raw_fd(), 1, Interest::READ)
            .expect("registers listener");

        let mut client = TcpStream::connect(addr).expect("connects");
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("waits");
        assert!(n >= 1, "pending accept must be readable");
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        let (server_side, _) = listener.accept().expect("accepts");
        server_side.set_nonblocking(true).expect("nonblocking");
        poller
            .add(server_side.as_raw_fd(), 2, Interest::READ)
            .expect("registers conn");

        client.write_all(b"ping").expect("writes");
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("waits");
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.token == 2 && e.readable));

        // Writable interest on an idle socket reports immediately.
        poller
            .modify(server_side.as_raw_fd(), 2, Interest::READ_WRITE)
            .expect("modifies");
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("waits");
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.token == 2 && e.writable));

        // Peer hang-up surfaces as `closed`.
        drop(client);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("waits");
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.token == 2 && e.closed));

        poller.delete(server_side.as_raw_fd()).expect("deletes");
        let mut buf = [0u8; 8];
        let mut conn = server_side;
        let got = conn.read(&mut buf).expect("reads buffered ping");
        assert_eq!(&buf[..got], b"ping");
    }
}
