//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no network access to crates.io, so this
//! in-workspace crate implements the proptest API surface the
//! workspace's tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), `any::<T>()`, integer-range and
//! tuple strategies, [`collection::vec`], `prop_map` / `prop_filter`
//! combinators, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros.
//!
//! Differences from upstream are deliberate and harmless for this
//! workspace: there is no shrinking (a failing case panics with its
//! generated inputs printed), and generation uses the workspace's
//! deterministic xoshiro RNG seeded per test name, so runs are
//! reproducible.
#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod collection;
pub mod strategy;

/// Everything the tests import.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use strategy::{any, Strategy};

use rand::{rngs::StdRng, SeedableRng};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case asked to be discarded (`prop_assume!`).
    Reject(String),
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// A discard with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }

    /// Whether this is a discard rather than a failure.
    pub fn is_reject(&self) -> bool {
        matches!(self, Self::Reject(_))
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Reject(m) => write!(f, "rejected: {m}"),
            Self::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Deterministic per-test RNG: seeded from the test's name.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Defines property tests. Supports the subset of upstream syntax used
/// in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     /// Doc comment.
///     #[test]
///     fn property(x in strategy_a(), mut ys in strategy_b()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($argpat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let __strategy = ($($strat,)+);
            let mut __passed: u32 = 0;
            let mut __attempts: u64 = 0;
            while __passed < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= u64::from(__config.cases) * 100 + 1000,
                    "proptest: too many rejected cases in {}",
                    stringify!($name),
                );
                let __value = match __strategy.try_gen(&mut __rng) {
                    Some(v) => v,
                    None => continue,
                };
                let __shown = format!("{:?}", __value);
                let ($($argpat,)+) = __value;
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __outcome {
                    Ok(()) => __passed += 1,
                    Err(e) if e.is_reject() => continue,
                    Err(e) => panic!(
                        "proptest property {} failed: {}\n  inputs: {}",
                        stringify!($name),
                        e,
                        __shown,
                    ),
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r,
            )));
        }
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
            )));
        }
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}
