//! Value-generation strategies.

use rand::{Rng, RngCore};

/// A recipe for generating values of one type.
///
/// `try_gen` returns `None` when a filter rejected the candidate; the
/// runner retries with fresh randomness.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Attempts to generate one value.
    fn try_gen<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values for which `f` returns `false`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            _whence: whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn try_gen<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<Self::Value> {
        (**self).try_gen(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn try_gen<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<O> {
        self.inner.try_gen(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    _whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn try_gen<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<S::Value> {
        self.inner.try_gen(rng).filter(&self.f)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! arb_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for the full value space of `T` (uniform over bit patterns
/// for integers).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<fn() -> T>,
}

/// The strategy generating any `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn try_gen<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// A fixed single-value strategy.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn try_gen<R: RngCore + ?Sized>(&self, _rng: &mut R) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn try_gen<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn try_gen<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                if start == end {
                    return Some(start);
                }
                Some(rng.gen_range(start..end.wrapping_add(1 as $t)))
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn try_gen<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn try_gen<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<Self::Value> {
                Some(($(self.$idx.try_gen(rng)?,)+))
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
