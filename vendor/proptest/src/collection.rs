//! Collection strategies.

use crate::strategy::Strategy;
use rand::{Rng, RngCore};

/// Acceptable length specifications for [`vec()`]: a fixed `usize` or
/// a half-open `Range<usize>`.
#[derive(Debug, Clone)]
pub enum SizeRange {
    /// Exactly this many elements.
    Fixed(usize),
    /// A uniformly drawn length in `[start, end)`.
    Range(core::ops::Range<usize>),
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self::Fixed(n)
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        Self::Range(r)
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose elements come from `element` and whose
/// length is described by `size` (a `usize` or `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn try_gen<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<Self::Value> {
        let len = match &self.size {
            SizeRange::Fixed(n) => *n,
            SizeRange::Range(r) => {
                if r.is_empty() {
                    r.start
                } else {
                    rng.gen_range(r.clone())
                }
            }
        };
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            // Retry rejected elements locally so a sparse filter does
            // not reject the entire vector.
            let mut tries = 0;
            loop {
                if let Some(v) = self.element.try_gen(rng) {
                    out.push(v);
                    break;
                }
                tries += 1;
                if tries > 1000 {
                    return None;
                }
            }
        }
        Some(out)
    }
}
