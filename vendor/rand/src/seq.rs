//! Sequence-related extensions.

use crate::{Rng, RngCore};

/// Slice shuffling (stand-in for `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rngs::StdRng, SeedableRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
