//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0f32..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }
}
