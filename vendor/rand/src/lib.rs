//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! in-workspace crate implements the (small) `rand 0.8` API surface the
//! workspace actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, high
//! quality, and fully deterministic for a given seed (which is all the
//! workspace needs: every dataset and forest is seeded explicitly).
//! Streams differ from upstream `rand`'s `StdRng` (ChaCha12), which is
//! fine: nothing in the workspace depends on upstream byte streams.
#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod rngs;
pub mod seq;

/// A low-level source of random `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from a generator's "standard" distribution.
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Half-open ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo bias is < span/2^64 — irrelevant for test data.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng);
                let v = self.start + unit * (self.end - self.start);
                // Rounding can land exactly on `end`; keep the range
                // half-open as documented.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}

float_range!(f32, f64);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as StandardSample>::sample(self) < p
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
