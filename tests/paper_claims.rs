//! The paper's headline claims, asserted end-to-end at workspace level.

use flint_suite::core::{flint_ge, FloatBits, PreparedThreshold};
use flint_suite::data::train_test_split;
use flint_suite::data::uci::{Scale, UciDataset};
use flint_suite::forest::{ForestConfig, RandomForest};
use flint_suite::sim::{normalized_time, Machine, SimConfig};

/// Claim (Section III): the FLInt operator computes the float `>=`
/// relation correctly — checked against hardware floats over structured
/// boundary values.
#[test]
fn claim_correct_comparison() {
    let values: Vec<f32> = {
        let mut v = vec![0.0f32, -0.0, 1.0, -1.0, f32::MAX, f32::MIN, 1e-40, -1e-40];
        // Exponent boundaries.
        for e in [1u32, 126, 127, 128, 254] {
            let bits = e << 23;
            v.push(f32::from_bits(bits));
            v.push(-f32::from_bits(bits));
            v.push(f32::from_bits(bits | 0x7f_ffff));
        }
        v
    };
    for &a in &values {
        for &b in &values {
            let ieee = if a == b && a == 0.0 {
                // The only divergence: FLInt refines ±0 by sign.
                !(a.is_sign_negative() && b.is_sign_positive())
            } else {
                a >= b
            };
            assert_eq!(flint_ge(a, b), ieee, "ge({a:e}, {b:e})");
        }
    }
}

/// Claim (Section IV-B): after the offline rewrite, every decision a
/// prepared threshold makes is bit-identical to the IEEE `<=` of the
/// naive implementation.
#[test]
fn claim_thresholds_equal_ieee() {
    let mut cases = Vec::new();
    for e in 0..=0xffu32 {
        cases.push(f32::from_bits(e << 23 | 0x123456));
        cases.push(f32::from_bits(0x8000_0000 | e << 23 | 0x123456));
    }
    for &split in &cases {
        if split.is_nan() {
            continue;
        }
        let t = PreparedThreshold::new(split).expect("non-NaN");
        for &x in &cases {
            if x.is_nan() {
                continue;
            }
            assert_eq!(t.le(x), x <= split, "le({x:e}) vs split {split:e}");
        }
    }
}

/// Claim (abstract): "the execution time can be reduced by up to ≈30%"
/// — on the simulated machines, the best FLInt configuration must reach
/// at least a 25 % reduction somewhere, and CAGS+FLInt ≈35 %.
#[test]
fn claim_speedup_magnitudes() {
    let data = UciDataset::Sensorless.generate(Scale::Tiny);
    let split = train_test_split(&data, 0.25, 17);
    let forest = RandomForest::fit(&split.train, &ForestConfig::grid(10, 25)).expect("trains");
    let mut best_flint: f64 = 1.0;
    let mut best_both: f64 = 1.0;
    for machine in Machine::PAPER_SET {
        let flint = normalized_time(
            machine,
            &forest,
            &split.train,
            &split.test,
            &SimConfig::flint(),
        )
        .expect("simulates");
        let both = normalized_time(
            machine,
            &forest,
            &split.train,
            &split.test,
            &SimConfig::cags_flint(),
        )
        .expect("simulates");
        best_flint = best_flint.min(flint);
        best_both = best_both.min(both);
    }
    assert!(
        best_flint < 0.85,
        "FLInt should reach >=15% reduction somewhere, best {best_flint}"
    );
    assert!(
        best_both < 0.75,
        "CAGS+FLInt should reach >=25% reduction somewhere, best {best_both}"
    );
}

/// Claim (Section I): the usage "boils down to a one-by-one replacement
/// of conditions" — i.e. the compiled integer key is exactly the bit
/// pattern the paper's example shows.
#[test]
fn claim_example_replacement() {
    // if (pX[3] <= (float)10.074347) becomes
    // if ((*(((int*)(pX))+3)) <= ((int)(0x41213087)))
    let split = f32::from_bits(0x4121_3087);
    let t = PreparedThreshold::new(split).expect("non-NaN");
    assert_eq!(t.key(), 0x4121_3087u32 as i32);
    assert!(!t.flips_sign());
    // And the runtime evaluation is the signed integer comparison.
    let x = 9.5f32;
    assert_eq!(t.le(x), x.to_signed_bits() <= 0x4121_3087u32 as i32);
}

/// Claim (Section V, Fig. 3 trend): improvements stabilize for deeper
/// trees rather than degrading.
#[test]
fn claim_deep_trees_keep_the_win() {
    let data = UciDataset::Magic.generate(Scale::Tiny);
    let split = train_test_split(&data, 0.25, 4);
    let shallow_forest =
        RandomForest::fit(&split.train, &ForestConfig::grid(5, 5)).expect("trains");
    let deep_forest = RandomForest::fit(&split.train, &ForestConfig::grid(5, 30)).expect("trains");
    let m = Machine::X86Server;
    let shallow = normalized_time(
        m,
        &shallow_forest,
        &split.train,
        &split.test,
        &SimConfig::flint(),
    )
    .expect("simulates");
    let deep = normalized_time(
        m,
        &deep_forest,
        &split.train,
        &split.test,
        &SimConfig::flint(),
    )
    .expect("simulates");
    assert!(deep < 1.0 && shallow < 1.0);
    assert!(
        deep <= shallow + 0.05,
        "deep trees should hold the improvement: shallow {shallow}, deep {deep}"
    );
}
