//! Compiles the emitted C code with the system C compiler and checks
//! that the *actual machine code* produced from Listings 1–4 style
//! source predicts identically to the Rust reference — the strongest
//! fidelity check available for the code generation stage.
//!
//! Skipped (with a note) when no C compiler is installed.

use flint_suite::codegen::{emit_forest_c, CVariant};
use flint_suite::data::synth::SynthSpec;
use flint_suite::forest::{ForestConfig, RandomForest};
use std::io::Write as _;
use std::process::Command;

fn have_cc() -> bool {
    Command::new("cc")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

/// Builds a C program embedding the generated forest plus a driver that
/// prints one prediction per test vector, compiles and runs it.
fn run_c_forest(forest: &RandomForest, variant: CVariant, inputs: &[Vec<f32>]) -> Vec<u32> {
    let dir = std::env::temp_dir().join(format!(
        "flint_c_fidelity_{}_{}",
        std::process::id(),
        variant.suffix()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let src_path = dir.join("forest.c");
    let bin_path = dir.join("forest_bin");

    let mut source = emit_forest_c(forest, variant);
    source.push_str("\n#include <stdio.h>\n");
    source.push_str(&format!(
        "static const float inputs[{}][{}] = {{\n",
        inputs.len(),
        forest.n_features()
    ));
    for row in inputs {
        let cells: Vec<String> = row
            .iter()
            // Hex float literals preserve the exact bit pattern.
            .map(|v| format!("{}", ExactFloat(*v)))
            .collect();
        source.push_str(&format!("    {{{}}},\n", cells.join(", ")));
    }
    source.push_str("};\n");
    source.push_str(&format!(
        "int main(void) {{\n    for (int i = 0; i < {}; ++i) {{\n        printf(\"%u\\n\", predict_forest_{}(inputs[i]));\n    }}\n    return 0;\n}}\n",
        inputs.len(),
        variant.suffix()
    ));
    let mut f = std::fs::File::create(&src_path).expect("write source");
    f.write_all(source.as_bytes()).expect("write source");
    drop(f);

    let compile = Command::new("cc")
        .args(["-O2", "-o"])
        .arg(&bin_path)
        .arg(&src_path)
        .output()
        .expect("invoke cc");
    assert!(
        compile.status.success(),
        "cc failed:\n{}",
        String::from_utf8_lossy(&compile.stderr)
    );
    let run = Command::new(&bin_path)
        .output()
        .expect("run generated binary");
    assert!(run.status.success());
    let _ = std::fs::remove_dir_all(&dir);
    String::from_utf8(run.stdout)
        .expect("utf8 output")
        .lines()
        .map(|l| l.trim().parse().expect("class integer"))
        .collect()
}

/// Formats an f32 as a C hexadecimal float literal (`0x1.abcp+3f`),
/// which round-trips the bit pattern exactly through the C compiler.
struct ExactFloat(f32);

impl std::fmt::Display for ExactFloat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = self.0;
        if v == 0.0 {
            return write!(f, "{}0.0f", if v.is_sign_negative() { "-" } else { "" });
        }
        let bits = v.to_bits();
        let sign = if bits >> 31 != 0 { "-" } else { "" };
        let exp = ((bits >> 23) & 0xff) as i32;
        let man = bits & 0x007f_ffff;
        if exp == 0 {
            // Subnormal: value = man * 2^-149.
            return write!(f, "{sign}0x{man:x}p-149f");
        }
        write!(f, "{sign}0x1.{:06x}p{:+}f", man << 1, exp - 127)
    }
}

/// The reference majority vote (same tie-breaking as the emitted C).
fn reference(forest: &RandomForest, features: &[f32]) -> u32 {
    let mut votes = vec![0u32; forest.n_classes()];
    for tree in forest.trees() {
        votes[tree.predict(features) as usize] += 1;
    }
    votes
        .iter()
        .enumerate()
        .max_by_key(|&(i, &v)| (v, std::cmp::Reverse(i)))
        .map(|(i, _)| i as u32)
        .expect("non-empty")
}

#[test]
fn generated_c_matches_rust_for_both_variants() {
    if !have_cc() {
        eprintln!("skipping: no C compiler on this system");
        return;
    }
    let data = SynthSpec::new(300, 5, 3)
        .cluster_std(1.0)
        .negative_fraction(0.5)
        .seed(8)
        .generate();
    let forest = RandomForest::fit(&data, &ForestConfig::grid(5, 8)).expect("trains");
    // Test vectors: the training data plus adversarial values.
    let mut inputs: Vec<Vec<f32>> = (0..data.n_samples().min(100))
        .map(|i| data.sample(i).to_vec())
        .collect();
    inputs.push(vec![0.0; 5]);
    inputs.push(vec![-0.0; 5]);
    inputs.push(vec![1e-40; 5]); // subnormal
    inputs.push(vec![-1e-40; 5]);
    inputs.push(vec![f32::MAX, f32::MIN, 0.5, -0.5, 1.0]);
    let want: Vec<u32> = inputs.iter().map(|x| reference(&forest, x)).collect();
    for variant in [CVariant::Standard, CVariant::Flint] {
        let got = run_c_forest(&forest, variant, &inputs);
        assert_eq!(
            got, want,
            "variant {variant:?} diverges from Rust reference"
        );
    }
}

/// Builds, compiles and runs the **double precision** variant of the
/// generated forest (features widened exactly from f32).
fn run_c_forest_f64(forest: &RandomForest, variant: CVariant, inputs: &[Vec<f32>]) -> Vec<u32> {
    use flint_suite::codegen::emit_forest_c_f64;
    let dir = std::env::temp_dir().join(format!(
        "flint_c_fidelity64_{}_{}",
        std::process::id(),
        variant.suffix()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let src_path = dir.join("forest64.c");
    let bin_path = dir.join("forest64_bin");
    let mut source = emit_forest_c_f64(forest, variant);
    source.push_str("\n#include <stdio.h>\n");
    source.push_str(&format!(
        "static const double inputs[{}][{}] = {{\n",
        inputs.len(),
        forest.n_features()
    ));
    for row in inputs {
        // f32 -> f64 widening is exact; Rust's Debug for f64 prints the
        // shortest round-tripping decimal, which C parses back exactly.
        let cells: Vec<String> = row.iter().map(|v| format!("{:?}", f64::from(*v))).collect();
        source.push_str(&format!("    {{{}}},\n", cells.join(", ")));
    }
    source.push_str("};\n");
    source.push_str(&format!(
        "int main(void) {{\n    for (int i = 0; i < {}; ++i) {{\n        printf(\"%u\\n\", predict_forest_{}_f64(inputs[i]));\n    }}\n    return 0;\n}}\n",
        inputs.len(),
        variant.suffix()
    ));
    std::fs::write(&src_path, source).expect("write source");
    let compile = Command::new("cc")
        .args(["-O2", "-o"])
        .arg(&bin_path)
        .arg(&src_path)
        .output()
        .expect("invoke cc");
    assert!(
        compile.status.success(),
        "cc failed:\n{}",
        String::from_utf8_lossy(&compile.stderr)
    );
    let run = Command::new(&bin_path)
        .output()
        .expect("run generated binary");
    assert!(run.status.success());
    let _ = std::fs::remove_dir_all(&dir);
    String::from_utf8(run.stdout)
        .expect("utf8 output")
        .lines()
        .map(|l| l.trim().parse().expect("class integer"))
        .collect()
}

#[test]
fn generated_f64_c_matches_rust() {
    if !have_cc() {
        eprintln!("skipping: no C compiler on this system");
        return;
    }
    let data = SynthSpec::new(200, 4, 2)
        .cluster_std(1.0)
        .negative_fraction(0.5)
        .seed(21)
        .generate();
    let forest = RandomForest::fit(&data, &ForestConfig::grid(3, 6)).expect("trains");
    let inputs: Vec<Vec<f32>> = (0..60).map(|i| data.sample(i).to_vec()).collect();
    // Widening features and thresholds to f64 is exact, so predictions
    // must match the f32 reference.
    let want: Vec<u32> = inputs.iter().map(|x| reference(&forest, x)).collect();
    for variant in [CVariant::Standard, CVariant::Flint] {
        let got = run_c_forest_f64(&forest, variant, &inputs);
        assert_eq!(got, want, "f64 variant {variant:?} diverges");
    }
}

#[test]
fn exact_float_literals_round_trip() {
    // The literal formatter itself must be exact for the test above to
    // prove anything.
    for v in [
        1.5f32,
        -2.935417,
        10.074347,
        0.1,
        -0.0,
        0.0,
        1e-40,
        f32::MAX,
    ] {
        let text = format!("{}", ExactFloat(v));
        assert!(text.ends_with('f'), "{text}");
    }
}
