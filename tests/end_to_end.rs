//! Workspace-level integration tests: the whole pipeline from data
//! generation through training, layout, compilation and execution,
//! spanning every crate.

use flint_suite::codegen::{VmForest, VmVariant};
use flint_suite::data::uci::{Scale, UciDataset};
use flint_suite::data::{csv, train_test_split};
use flint_suite::exec::{BackendKind, CompiledForest};
use flint_suite::forest::metrics::accuracy;
use flint_suite::forest::{io, ForestConfig, RandomForest};
use flint_suite::layout::{LayoutStrategy, TreeLayout, TreeProfile};
use flint_suite::sim::{simulate_forest, Machine, SimConfig};

fn trained() -> (
    flint_suite::data::Dataset,
    flint_suite::data::Dataset,
    RandomForest,
) {
    let data = UciDataset::Eye.generate(Scale::Tiny);
    let split = train_test_split(&data, 0.25, 99);
    let forest = RandomForest::fit(&split.train, &ForestConfig::grid(8, 10)).expect("trains");
    (split.train, split.test, forest)
}

#[test]
fn pipeline_train_compile_execute_simulate() {
    let (train, test, forest) = trained();
    // Execution backends agree.
    let naive = CompiledForest::compile(&forest, BackendKind::Naive, Some(&train)).expect("ok");
    let flint = CompiledForest::compile(&forest, BackendKind::CagsFlint, Some(&train)).expect("ok");
    let reference = naive.predict_dataset(&test);
    assert_eq!(flint.predict_dataset(&test), reference);
    // The VM agrees too.
    let vm = VmForest::compile(&forest, VmVariant::Flint);
    for (i, &want) in reference.iter().enumerate() {
        let (class, _) = vm.run(test.sample(i)).expect("runs");
        assert_eq!(class, want, "sample {i}");
    }
    // Simulation produces a sane FLInt win.
    let base = simulate_forest(
        Machine::X86Server,
        &forest,
        &train,
        &test,
        &SimConfig::naive(),
    )
    .expect("simulates");
    let fast = simulate_forest(
        Machine::X86Server,
        &forest,
        &train,
        &test,
        &SimConfig::flint(),
    )
    .expect("simulates");
    let ratio = fast.total_cycles() / base.total_cycles();
    assert!(ratio < 1.0 && ratio > 0.4, "normalized time {ratio}");
}

#[test]
fn model_round_trips_through_csv_and_text_format() {
    let (train, test, forest) = trained();
    // Model text format.
    let mut model_buf = Vec::new();
    io::write_forest(&forest, &mut model_buf).expect("writes");
    let reloaded = io::read_forest(&model_buf[..]).expect("reads");
    assert_eq!(reloaded, forest);
    // Data CSV round trip feeding the reloaded model.
    let mut csv_buf = Vec::new();
    csv::write_csv(&test, &mut csv_buf).expect("writes");
    let test_back = csv::read_csv(&csv_buf[..], test.n_classes()).expect("reads");
    let a: Vec<u32> = reloaded.predict_dataset(&test);
    let b: Vec<u32> = reloaded.predict_dataset(&test_back);
    assert_eq!(a, b);
    let _ = train; // silence unused in this test
}

#[test]
fn layouts_preserve_semantics_and_cags_lowers_cost() {
    let (train, test, forest) = trained();
    let tree = &forest.trees()[0];
    let profile = TreeProfile::collect(tree, &train);
    let arena = TreeLayout::compute(tree, &profile, LayoutStrategy::ArenaOrder);
    let cags = TreeLayout::compute(tree, &profile, LayoutStrategy::Cags { block_nodes: 4 });
    let cost_arena = arena.expected_block_transitions(tree, &profile, 4);
    let cost_cags = cags.expected_block_transitions(tree, &profile, 4);
    assert!(
        cost_cags <= cost_arena + 1e-9,
        "cags {cost_cags} vs arena {cost_arena}"
    );
    // Semantics unchanged under relayout.
    use flint_suite::exec::FloatTree;
    let a = FloatTree::compile(tree, &arena);
    let b = FloatTree::compile(tree, &cags);
    for i in 0..test.n_samples() {
        assert_eq!(a.predict(test.sample(i)), b.predict(test.sample(i)));
    }
}

#[test]
fn accuracy_reported_identically_for_all_backends_on_all_datasets() {
    for ds in [UciDataset::Wine, UciDataset::Magic] {
        let data = ds.generate(Scale::Tiny);
        let split = train_test_split(&data, 0.25, 5);
        let forest = RandomForest::fit(&split.train, &ForestConfig::grid(10, 12)).expect("trains");
        let mut accuracies = Vec::new();
        for kind in BackendKind::PAPER_SET {
            let backend =
                CompiledForest::compile(&forest, kind, Some(&split.train)).expect("compiles");
            let preds = backend.predict_dataset(&split.test);
            accuracies.push(accuracy(&preds, split.test.labels()));
        }
        assert!(
            accuracies.windows(2).all(|w| w[0] == w[1]),
            "{}: {accuracies:?}",
            ds.name()
        );
    }
}

#[test]
fn embedded_profile_runs_flint_but_not_naive() {
    let (train, test, forest) = trained();
    let m = Machine::EmbeddedNoFpu;
    assert!(simulate_forest(m, &forest, &train, &test, &SimConfig::naive()).is_err());
    let flint = simulate_forest(m, &forest, &train, &test, &SimConfig::flint()).expect("runs");
    let soft = simulate_forest(m, &forest, &train, &test, &SimConfig::softfloat()).expect("runs");
    assert!(flint.total_cycles() < soft.total_cycles() / 2.0);
}
