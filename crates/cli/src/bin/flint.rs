//! The `flint` binary: parse, run, report errors on stderr.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match flint_cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", flint_cli::USAGE);
            std::process::exit(2);
        }
    };
    let stdout = std::io::stdout();
    if let Err(e) = flint_cli::run(command, &mut stdout.lock()) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
