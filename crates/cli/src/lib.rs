//! # flint-cli — the FLInt random forest toolchain
//!
//! A command line front end over the workspace, playing the role
//! arch-forest's scripts play for the paper: train models from CSV,
//! predict with any backend (including QuickScorer), emit C / Rust /
//! assembly realizations in both precisions, inspect feature
//! importances, run the machine cost simulator, and serve a model over
//! TCP/stdin through the micro-batching inference server.
//!
//! ```text
//! flint train    --data iris.csv --classes 3 --trees 20 --depth 10 --out model.txt
//! flint predict  --model model.txt --data iris.csv --classes 3 --backend cags-flint --accuracy
//! flint serve    --model model.txt --engine flint-blocked --addr 127.0.0.1:7878
//! flint emit     --model model.txt --lang c --variant flint
//! flint simulate --model model.txt --data iris.csv --classes 3 --machine embedded --config flint
//! ```
//!
//! Parsing lives in [`args`], execution in [`runner`]; both are plain
//! functions so the whole tool is unit-testable without spawning
//! processes.
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod args;
pub mod runner;

pub use args::{parse, Command, ParseArgsError, USAGE};
pub use runner::{run, RunError};
