//! Command execution, separated from I/O so it can be tested without a
//! real process invocation.

use crate::args::{Command, USAGE};
use flint_bench::{batch_throughput_table, ForestShape};
use flint_codegen::{
    emit_forest_c, emit_forest_c_f64, emit_forest_rust, emit_tree_asm, AsmTarget, CVariant,
    RustVariant,
};
use flint_data::{csv, Dataset, FeatureMatrix};
use flint_exec::{BatchOptions, EngineBuilder, EngineKind, KernelCaps};
use flint_forest::metrics::accuracy;
use flint_forest::{io as model_io, ForestConfig, RandomForest};
use flint_router::RouterServer;
use flint_serve::{
    serve_lines, BatchPolicy, Batcher, EpollServer, EventLoopConfig, FrontEnd, Server,
};
use flint_sim::{simulate_forest, Machine, SimConfig};
use std::fmt::Write as FmtWrite;
use std::fs::File;
use std::io::{BufReader, Write};
use std::time::Duration;

/// Error executing a command.
#[derive(Debug)]
pub enum RunError {
    /// File system or stream failure.
    Io(std::io::Error),
    /// Bad CSV input.
    Csv(csv::ReadCsvError),
    /// Bad model file.
    Model(model_io::ReadModelError),
    /// Training failure.
    Train(flint_forest::train::TrainError),
    /// Invalid option value with a human-readable message.
    Invalid(String),
}

impl core::fmt::Display for RunError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Csv(e) => write!(f, "csv error: {e}"),
            Self::Model(e) => write!(f, "model error: {e}"),
            Self::Train(e) => write!(f, "training error: {e}"),
            Self::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<std::io::Error> for RunError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}
impl From<csv::ReadCsvError> for RunError {
    fn from(e: csv::ReadCsvError) -> Self {
        Self::Csv(e)
    }
}
impl From<model_io::ReadModelError> for RunError {
    fn from(e: model_io::ReadModelError) -> Self {
        Self::Model(e)
    }
}
impl From<flint_forest::train::TrainError> for RunError {
    fn from(e: flint_forest::train::TrainError) -> Self {
        Self::Train(e)
    }
}

/// Short git revision of the working tree, `"unknown"` outside a
/// checkout (bench provenance only — never load-bearing).
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|rev| rev.trim().to_owned())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Parses a `--trees a:b` half-open span against the model's ensemble
/// size (the span syntax `flint_forest::plan_spans` plans in).
fn parse_tree_span(text: &str, n_trees: usize) -> Result<(usize, usize), RunError> {
    let invalid = || {
        RunError::Invalid(format!(
            "--trees expects a half-open span a:b with a < b <= {n_trees}, got {text:?}"
        ))
    };
    let (a, b) = text.split_once(':').ok_or_else(invalid)?;
    let start: usize = a.trim().parse().map_err(|_| invalid())?;
    let end: usize = b.trim().parse().map_err(|_| invalid())?;
    if start >= end || end > n_trees {
        return Err(invalid());
    }
    Ok((start, end))
}

fn load_csv(path: &str, classes: usize) -> Result<Dataset, RunError> {
    Ok(csv::read_csv(BufReader::new(File::open(path)?), classes)?)
}

fn load_model(path: &str) -> Result<RandomForest, RunError> {
    Ok(model_io::read_forest(BufReader::new(File::open(path)?))?)
}

fn engine_kind(name: &str) -> Result<EngineKind, RunError> {
    // Case-insensitive registry lookup; the registry error already
    // lists every valid name.
    name.parse()
        .map_err(|e: flint_exec::ParseEngineKindError| RunError::Invalid(e.to_string()))
}

fn machine(name: &str) -> Result<Machine, RunError> {
    Ok(match name {
        "x86s" => Machine::X86Server,
        "x86d" => Machine::X86Desktop,
        "arms" => Machine::Armv8Server,
        "armd" => Machine::Armv8Desktop,
        "embedded" => Machine::EmbeddedNoFpu,
        other => {
            return Err(RunError::Invalid(format!(
                "unknown machine {other:?} (try x86s|x86d|arms|armd|embedded)"
            )))
        }
    })
}

fn sim_config(name: &str) -> Result<SimConfig, RunError> {
    Ok(match name {
        "naive" => SimConfig::naive(),
        "cags" => SimConfig::cags(),
        "flint" => SimConfig::flint(),
        "cags-flint" => SimConfig::cags_flint(),
        "flint-asm" => SimConfig::flint_asm(),
        "softfloat" => SimConfig::softfloat(),
        other => {
            return Err(RunError::Invalid(format!(
                "unknown config {other:?} (try naive|cags|flint|cags-flint|flint-asm|softfloat)"
            )))
        }
    })
}

/// Executes `command`, writing human-readable output to `out`.
///
/// # Errors
///
/// [`RunError`] on any I/O, parse, training or option failure.
pub fn run<W: Write>(command: Command, out: &mut W) -> Result<(), RunError> {
    match command {
        Command::Help => {
            write!(out, "{USAGE}")?;
        }
        Command::Train {
            data,
            classes,
            trees,
            depth,
            seed,
            out: out_path,
        } => {
            let dataset = load_csv(&data, classes)?;
            let config = ForestConfig {
                n_trees: trees,
                max_depth: depth,
                seed,
                ..ForestConfig::default()
            };
            let forest = RandomForest::fit(&dataset, &config)?;
            match out_path {
                Some(path) => {
                    model_io::write_forest(&forest, File::create(&path)?)?;
                    writeln!(
                        out,
                        "trained {} trees ({} nodes, depth {}) on {} samples -> {path}",
                        forest.n_trees(),
                        forest.n_nodes(),
                        forest.depth(),
                        dataset.n_samples()
                    )?;
                }
                None => {
                    let mut buf = Vec::new();
                    model_io::write_forest(&forest, &mut buf)?;
                    out.write_all(&buf)?;
                }
            }
        }
        Command::Predict {
            model,
            data,
            classes,
            backend,
            accuracy: report_accuracy,
            batch_size,
            threads,
        } => {
            let forest = load_model(&model)?;
            let dataset = load_csv(&data, classes)?;
            // Every backend name is an engine-registry entry; the batch
            // flags shape the options any engine honors.
            let kind = engine_kind(&backend)?;
            let opts = BatchOptions::default()
                .block_samples(batch_size.unwrap_or(64))
                .threads(threads.max(1));
            let engine = EngineBuilder::new(&forest)
                .options(opts)
                .build(kind)
                .map_err(|e| RunError::Invalid(e.to_string()))?;
            let predictions = engine.predict_dataset(&dataset);
            for p in &predictions {
                writeln!(out, "{p}")?;
            }
            if report_accuracy {
                writeln!(
                    out,
                    "accuracy: {:.4}",
                    accuracy(&predictions, dataset.labels())
                )?;
            }
        }
        Command::Bench {
            data,
            shape,
            classes,
            model,
            trees,
            depth,
            seed,
            batch_size,
            threads,
            runs,
            engines,
            list,
            output,
        } => {
            if list {
                writeln!(out, "{:<20} strategy", "engine")?;
                for kind in EngineKind::ALL {
                    writeln!(out, "{:<20} {}", kind.name(), kind.describe())?;
                }
                return Ok(());
            }
            if !matches!(output.as_str(), "table" | "csv" | "json") {
                return Err(RunError::Invalid(format!(
                    "unknown --output {output:?} (try table|csv|json)"
                )));
            }
            // The workload is either a CSV (plus an optional stored or
            // in-process-trained model) or a named shape preset that
            // generates and trains its own.
            let (dataset, forest, shape_name) = match (&shape, data) {
                (Some(_), Some(_)) => {
                    return Err(RunError::Invalid(
                        "--shape and --data are mutually exclusive".to_owned(),
                    ));
                }
                (Some(name), None) => {
                    let preset = ForestShape::parse(name).ok_or_else(|| {
                        RunError::Invalid(format!(
                            "unknown --shape {name:?} (try magic|ranking|deep)"
                        ))
                    })?;
                    if model.is_some() {
                        return Err(RunError::Invalid(
                            "--shape trains its own preset forest; drop --model".to_owned(),
                        ));
                    }
                    let dataset = preset.dataset(seed);
                    let forest = preset.train(&dataset, seed);
                    (dataset, forest, Some(preset.name()))
                }
                (None, Some(data)) => {
                    let classes = classes.ok_or_else(|| {
                        RunError::Invalid("bench needs --classes with --data".to_owned())
                    })?;
                    let dataset = load_csv(&data, classes)?;
                    let forest = match model {
                        Some(path) => load_model(&path)?,
                        None => {
                            let config = ForestConfig {
                                n_trees: trees,
                                max_depth: depth,
                                seed,
                                ..ForestConfig::default()
                            };
                            RandomForest::fit(&dataset, &config)?
                        }
                    };
                    (dataset, forest, None)
                }
                (None, None) => {
                    return Err(RunError::Invalid(
                        "bench needs --data and --classes, --shape, or --list".to_owned(),
                    ));
                }
            };
            if forest.n_features() != dataset.n_features() {
                return Err(RunError::Invalid(format!(
                    "model expects {} features but the workload has {}",
                    forest.n_features(),
                    dataset.n_features()
                )));
            }
            let kinds: Vec<EngineKind> = match engines {
                Some(names) => names
                    .split(',')
                    .map(|n| engine_kind(n.trim()))
                    .collect::<Result<_, _>>()?,
                None => EngineKind::ALL.to_vec(),
            };
            if kinds.is_empty() {
                return Err(RunError::Invalid("--engines lists no engine".to_owned()));
            }
            let opts = BatchOptions::default()
                .block_samples(batch_size.unwrap_or(64))
                .threads(threads.max(1));
            let matrix = FeatureMatrix::from_dataset(&dataset);
            let rows = batch_throughput_table(&forest, Some(&dataset), &matrix, opts, &kinds, runs)
                .map_err(|e| RunError::Invalid(e.to_string()))?;
            match output.as_str() {
                // Machine-readable forms carry only the measurements,
                // so EXPERIMENTS.md tables regenerate with no scraping.
                "csv" => {
                    writeln!(out, "engine,samples_per_sec,median_ms,speedup")?;
                    for row in rows {
                        writeln!(
                            out,
                            "{},{:.0},{:.3},{:.2}",
                            row.kind.name(),
                            row.samples_per_sec,
                            row.median_secs * 1e3,
                            row.speedup_vs_first
                        )?;
                    }
                }
                "json" => {
                    // Schema 2: an object that pins the provenance a
                    // checked-in snapshot needs — host kernel caps, git
                    // revision, shape preset and workload — with the
                    // measurements under "engines".
                    let objects: Vec<String> = rows
                        .iter()
                        .map(|row| {
                            format!(
                                "{{\"engine\":\"{}\",\"samples_per_sec\":{:.0},\
                                 \"median_ms\":{:.3},\"speedup\":{:.2}}}",
                                row.kind.name(),
                                row.samples_per_sec,
                                row.median_secs * 1e3,
                                row.speedup_vs_first
                            )
                        })
                        .collect();
                    writeln!(
                        out,
                        "{{\"schema\":\"flint-bench/2\",\"kernel_caps\":\"{}\",\
                         \"git_rev\":\"{}\",\"shape\":{},\
                         \"workload\":{{\"samples\":{},\"features\":{},\"trees\":{},\
                         \"block\":{},\"threads\":{},\"runs\":{}}},\
                         \"engines\":[{}]}}",
                        KernelCaps::get().summary(),
                        git_rev(),
                        match shape_name {
                            Some(name) => format!("\"{name}\""),
                            None => "null".to_owned(),
                        },
                        dataset.n_samples(),
                        dataset.n_features(),
                        forest.n_trees(),
                        opts.block_samples,
                        opts.threads,
                        runs.max(1),
                        objects.join(",")
                    )?;
                }
                _ => {
                    writeln!(
                        out,
                        "workload: {} samples x {} features, {} trees, block {} x {} threads, {} runs{}",
                        dataset.n_samples(),
                        dataset.n_features(),
                        forest.n_trees(),
                        opts.block_samples,
                        opts.threads,
                        runs.max(1),
                        match shape_name {
                            Some(name) => format!(", shape {name}"),
                            None => String::new(),
                        }
                    )?;
                    writeln!(out, "host kernel caps: {}", KernelCaps::get().summary())?;
                    writeln!(
                        out,
                        "{:<20} {:>12} {:>12} {:>9}",
                        "engine", "samples/s", "median ms", "speedup"
                    )?;
                    for row in rows {
                        writeln!(
                            out,
                            "{:<20} {:>12.0} {:>12.3} {:>8.2}x",
                            row.kind.name(),
                            row.samples_per_sec,
                            row.median_secs * 1e3,
                            row.speedup_vs_first
                        )?;
                    }
                    writeln!(out, "(speedup is relative to the first listed engine)")?;
                }
            }
        }
        Command::Serve {
            model,
            engine,
            max_batch,
            linger_us,
            workers,
            queue_depth,
            addr,
            front_end,
            max_conns,
            max_inflight,
            trees,
            stdin,
        } => {
            let mut forest = load_model(&model)?;
            if let Some(span) = &trees {
                let (start, end) = parse_tree_span(span, forest.n_trees())?;
                forest = forest.tree_span(start, end);
            }
            let kind = engine_kind(&engine)?;
            let front_end: FrontEnd = front_end
                .parse()
                .map_err(|e: flint_serve::ParseFrontEndError| RunError::Invalid(e.to_string()))?;
            // One worker scores one batch at a time; parallelism comes
            // from the pool, so each engine runs its batch inline.
            let opts = BatchOptions::default()
                .block_samples(max_batch.max(1))
                .threads(1);
            let engine = EngineBuilder::new(&forest)
                .options(opts)
                .build(kind)
                .map_err(|e| RunError::Invalid(e.to_string()))?;
            let policy = BatchPolicy::default()
                .max_batch(max_batch)
                .linger(Duration::from_micros(linger_us))
                .queue_depth(queue_depth)
                .workers(workers);
            if stdin {
                let batcher = Batcher::start(engine, policy);
                serve_lines(&batcher, std::io::stdin().lock(), &mut *out)?;
                writeln!(out, "{}", batcher.shutdown().to_json())?;
            } else {
                let banner = |local_addr: std::net::SocketAddr, engine_name: &str| {
                    format!(
                        "listening on {local_addr} (engine {engine_name}, front-end {front_end}, \
                         max-batch {}, linger {linger_us}us, workers {}, queue {})",
                        max_batch.max(1),
                        workers.max(1),
                        queue_depth.max(1)
                    )
                };
                let stats = match front_end {
                    FrontEnd::Epoll => {
                        let config = EventLoopConfig::default()
                            .max_conns(max_conns)
                            .max_inflight(max_inflight);
                        let server = EpollServer::bind_with_config(&addr, engine, policy, config)?;
                        writeln!(out, "{}", banner(server.local_addr(), server.engine_name()))?;
                        // The startup line must reach pipes before the
                        // event loop starts (smoke tests wait for it).
                        out.flush()?;
                        server.run()?
                    }
                    FrontEnd::Threads => {
                        let server = Server::bind(&addr, engine, policy)?;
                        writeln!(out, "{}", banner(server.local_addr(), server.engine_name()))?;
                        // The startup line must reach pipes before the
                        // accept loop blocks (smoke tests wait for it).
                        out.flush()?;
                        server.run()?
                    }
                };
                writeln!(out, "{}", stats.to_json())?;
            }
        }
        Command::Route {
            shards,
            addr,
            max_conns,
            max_inflight,
        } => {
            let shard_addrs: Vec<std::net::SocketAddr> = shards
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.parse().map_err(|_| {
                        RunError::Invalid(format!("--shards: invalid shard address {s:?}"))
                    })
                })
                .collect::<Result<_, _>>()?;
            if shard_addrs.is_empty() {
                return Err(RunError::Invalid(
                    "--shards lists no shard address".to_owned(),
                ));
            }
            let config = EventLoopConfig::default()
                .max_conns(max_conns)
                .max_inflight(max_inflight);
            let router = RouterServer::bind_with_config(&addr, shard_addrs.clone(), config)?;
            writeln!(
                out,
                "routing on {} ({} shards: {}, max-conns {max_conns}, max-inflight {max_inflight})",
                router.local_addr(),
                shard_addrs.len(),
                shards.trim()
            )?;
            // The startup line must reach pipes before the event loop
            // starts (smoke tests wait for it).
            out.flush()?;
            let stats = router.run()?;
            writeln!(out, "{}", stats.to_json())?;
        }
        Command::Emit {
            model,
            lang,
            variant,
        } => {
            let forest = load_model(&model)?;
            let text = match (lang.as_str(), variant.as_str()) {
                ("c", "std") => emit_forest_c(&forest, CVariant::Standard),
                ("c", "flint") => emit_forest_c(&forest, CVariant::Flint),
                ("c64", "std") => emit_forest_c_f64(&forest, CVariant::Standard),
                ("c64", "flint") => emit_forest_c_f64(&forest, CVariant::Flint),
                ("rust", "std") => emit_forest_rust(&forest, RustVariant::Standard),
                ("rust", "flint") => emit_forest_rust(&forest, RustVariant::Flint),
                ("asm-arm", "flint") | ("asm-x86", "flint") => {
                    let target = if lang == "asm-arm" {
                        AsmTarget::Armv8
                    } else {
                        AsmTarget::X86
                    };
                    let mut text = String::new();
                    for (i, tree) in forest.trees().iter().enumerate() {
                        let _ = writeln!(text, "// tree {i}");
                        text.push_str(&emit_tree_asm(tree, i, target));
                    }
                    text
                }
                ("asm-arm" | "asm-x86", other) => {
                    return Err(RunError::Invalid(format!(
                        "assembly emission supports only --variant flint, got {other:?}"
                    )))
                }
                (l, v) => {
                    return Err(RunError::Invalid(format!(
                        "unsupported --lang {l:?} / --variant {v:?}"
                    )))
                }
            };
            write!(out, "{text}")?;
        }
        Command::Importance { model } => {
            let forest = load_model(&model)?;
            for (i, v) in forest.feature_importances().iter().enumerate() {
                writeln!(out, "feature {i}: {v:.6}")?;
            }
        }
        Command::Simulate {
            model,
            data,
            classes,
            machine: machine_name,
            config: config_name,
        } => {
            let forest = load_model(&model)?;
            let dataset = load_csv(&data, classes)?;
            let m = machine(&machine_name)?;
            let config = sim_config(&config_name)?;
            let report = simulate_forest(m, &forest, &dataset, &dataset, &config)
                .map_err(|e| RunError::Invalid(e.to_string()))?;
            writeln!(out, "machine: {}", m.name())?;
            writeln!(out, "config: {}", config.name())?;
            writeln!(
                out,
                "cycles/inference: {:.1}",
                report.cycles_per_inference()
            )?;
            writeln!(
                out,
                "breakdown: instr {:.0} + cache {:.0} + layout {:.0} + calls {:.0}",
                report.instruction_cycles,
                report.cache_cycles,
                report.layout_overhead,
                report.call_overhead
            )?;
            // Normalized against naive when the machine can run it.
            if let Ok(naive) = simulate_forest(m, &forest, &dataset, &dataset, &SimConfig::naive())
            {
                writeln!(
                    out,
                    "normalized vs naive: {:.3}x",
                    report.total_cycles() / naive.total_cycles()
                )?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use flint_data::synth::SynthSpec;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("flint_cli_{}_{name}", std::process::id()))
    }

    fn write_dataset_csv(name: &str, seed: u64) -> (std::path::PathBuf, Dataset) {
        let ds = SynthSpec::new(120, 4, 2)
            .cluster_std(0.6)
            .seed(seed)
            .generate();
        let path = temp_path(name);
        let mut buf = Vec::new();
        csv::write_csv(&ds, &mut buf).expect("write");
        std::fs::write(&path, buf).expect("write file");
        (path, ds)
    }

    fn run_argv(text: &str) -> Result<String, RunError> {
        let argv: Vec<String> = text.split_whitespace().map(str::to_owned).collect();
        let cmd = parse(&argv).expect("parses");
        let mut out = Vec::new();
        run(cmd, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8"))
    }

    #[test]
    fn train_predict_pipeline() {
        let (data_path, ds) = write_dataset_csv("tp.csv", 1);
        let model_path = temp_path("tp_model.txt");
        let trained = run_argv(&format!(
            "train --data {} --classes 2 --trees 5 --depth 8 --out {}",
            data_path.display(),
            model_path.display()
        ))
        .expect("trains");
        assert!(trained.contains("trained 5 trees"), "{trained}");
        for backend in [
            "naive",
            "flint",
            "cags",
            "cags-flint",
            "quickscorer",
            "flint-blocked",
            "vm-flint",
        ] {
            let output = run_argv(&format!(
                "predict --model {} --data {} --classes 2 --backend {backend} --accuracy",
                model_path.display(),
                data_path.display()
            ))
            .expect("predicts");
            let lines: Vec<&str> = output.lines().collect();
            assert_eq!(lines.len(), ds.n_samples() + 1, "{backend}");
            assert!(lines.last().expect("non-empty").starts_with("accuracy:"));
        }
        let _ = std::fs::remove_file(data_path);
        let _ = std::fs::remove_file(model_path);
    }

    #[test]
    fn all_backends_print_identical_predictions() {
        let (data_path, _) = write_dataset_csv("same.csv", 2);
        let model_path = temp_path("same_model.txt");
        run_argv(&format!(
            "train --data {} --classes 2 --trees 4 --depth 6 --out {}",
            data_path.display(),
            model_path.display()
        ))
        .expect("trains");
        let outputs: Vec<String> = [
            "naive",
            "flint",
            "cags-flint",
            "quickscorer",
            "quickscorer-float",
            "naive-blocked",
            "cags-flint-blocked",
            "vm-flint",
            "vm-softfloat",
        ]
        .iter()
        .map(|b| {
            run_argv(&format!(
                "predict --model {} --data {} --classes 2 --backend {b}",
                model_path.display(),
                data_path.display()
            ))
            .expect("predicts")
        })
        .collect();
        assert!(outputs.windows(2).all(|w| w[0] == w[1]));
        let _ = std::fs::remove_file(data_path);
        let _ = std::fs::remove_file(model_path);
    }

    #[test]
    fn batched_predict_flags_change_nothing_but_the_engine() {
        let (data_path, _) = write_dataset_csv("batched.csv", 6);
        let model_path = temp_path("batched_model.txt");
        run_argv(&format!(
            "train --data {} --classes 2 --trees 5 --depth 7 --out {}",
            data_path.display(),
            model_path.display()
        ))
        .expect("trains");
        let scalar = run_argv(&format!(
            "predict --model {} --data {} --classes 2 --backend flint --accuracy",
            model_path.display(),
            data_path.display()
        ))
        .expect("predicts");
        for flags in [
            "--batch-size 16",
            "--threads 4",
            "--batch-size 1 --threads 2",
        ] {
            let batched = run_argv(&format!(
                "predict --model {} --data {} --classes 2 --backend flint --accuracy {flags}",
                model_path.display(),
                data_path.display()
            ))
            .expect("predicts");
            assert_eq!(batched, scalar, "{flags}");
        }
        let _ = std::fs::remove_file(data_path);
        let _ = std::fs::remove_file(model_path);
    }

    #[test]
    fn bench_list_prints_the_registry() {
        let text = run_argv("bench --list").expect("lists");
        for kind in EngineKind::ALL {
            assert!(text.contains(kind.name()), "missing {}", kind.name());
        }
        assert_eq!(text.lines().count(), EngineKind::ALL.len() + 1, "{text}");
    }

    #[test]
    fn bench_measures_selected_engines() {
        let (data_path, _) = write_dataset_csv("bench.csv", 9);
        let output = run_argv(&format!(
            "bench --data {} --classes 2 --trees 3 --depth 6 --runs 1 \
             --batch-size 32 --threads 2 --engines flint,flint-blocked,quickscorer",
            data_path.display()
        ))
        .expect("benches");
        assert!(output.contains("block 32 x 2 threads"), "{output}");
        for engine in ["flint", "flint-blocked", "quickscorer"] {
            assert!(
                output.lines().any(|l| l.starts_with(engine)),
                "{engine} missing from {output}"
            );
        }
        let _ = std::fs::remove_file(data_path);
    }

    #[test]
    fn backend_names_are_case_insensitive() {
        let (data_path, _) = write_dataset_csv("caseless.csv", 15);
        let model_path = temp_path("caseless_model.txt");
        run_argv(&format!(
            "train --data {} --classes 2 --trees 3 --depth 5 --out {}",
            data_path.display(),
            model_path.display()
        ))
        .expect("trains");
        let lower = run_argv(&format!(
            "predict --model {} --data {} --classes 2 --backend flint-blocked",
            model_path.display(),
            data_path.display()
        ))
        .expect("predicts");
        let upper = run_argv(&format!(
            "predict --model {} --data {} --classes 2 --backend FLINT-Blocked",
            model_path.display(),
            data_path.display()
        ))
        .expect("predicts");
        assert_eq!(lower, upper);
        let _ = std::fs::remove_file(data_path);
        let _ = std::fs::remove_file(model_path);
    }

    #[test]
    fn bench_output_csv_and_json_are_machine_readable() {
        let (data_path, _) = write_dataset_csv("benchfmt.csv", 14);
        let base = format!(
            "bench --data {} --classes 2 --trees 3 --depth 5 --runs 1 \
             --engines flint,flint-blocked",
            data_path.display()
        );
        let csv = run_argv(&format!("{base} --output csv")).expect("benches");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "engine,samples_per_sec,median_ms,speedup");
        assert_eq!(lines.len(), 3, "{csv}");
        assert!(lines[1].starts_with("flint,"), "{csv}");
        assert!(lines[2].starts_with("flint-blocked,"), "{csv}");
        let json = run_argv(&format!("{base} --output json")).expect("benches");
        assert_eq!(json.lines().count(), 1, "{json}");
        assert!(json.starts_with("{\"schema\":\"flint-bench/2\""), "{json}");
        assert!(json.contains("\"kernel_caps\":\""), "{json}");
        assert!(json.contains("\"git_rev\":\""), "{json}");
        assert!(json.contains("\"shape\":null"), "{json}");
        assert!(json.contains("\"workload\":{\"samples\":120,"), "{json}");
        assert!(json.contains("\"engines\":[{"), "{json}");
        assert!(json.contains("\"engine\":\"flint\""), "{json}");
        assert!(json.contains("\"median_ms\":"), "{json}");
        assert!(json.trim_end().ends_with("}]}"), "{json}");
        let err = run_argv(&format!("{base} --output yaml")).unwrap_err();
        assert!(err.to_string().contains("table|csv|json"), "{err}");
        let _ = std::fs::remove_file(data_path);
    }

    #[test]
    fn bench_shape_preset_generates_its_own_workload() {
        let json = run_argv(
            "bench --shape magic --runs 1 --batch-size 64 --engines flint,simd-f16 --output json",
        )
        .expect("benches");
        assert!(json.contains("\"shape\":\"magic\""), "{json}");
        assert!(
            json.contains("\"workload\":{\"samples\":4096,\"features\":10,\"trees\":24,"),
            "{json}"
        );
        assert!(json.contains("\"engine\":\"simd-f16\""), "{json}");

        let err = run_argv("bench --shape bonsai").unwrap_err();
        assert!(err.to_string().contains("unknown --shape"), "{err}");
        let err = run_argv("bench --shape magic --data d.csv --classes 2").unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
        let err = run_argv("bench --shape magic --model m.txt").unwrap_err();
        assert!(err.to_string().contains("preset forest"), "{err}");
    }

    #[test]
    fn serve_rejects_unknown_engine_before_binding() {
        let (data_path, _) = write_dataset_csv("servebad.csv", 16);
        let model_path = temp_path("servebad_model.txt");
        run_argv(&format!(
            "train --data {} --classes 2 --trees 2 --depth 4 --out {}",
            data_path.display(),
            model_path.display()
        ))
        .expect("trains");
        let err = run_argv(&format!(
            "serve --model {} --engine warp",
            model_path.display()
        ))
        .unwrap_err();
        assert!(err.to_string().contains("unknown engine"), "{err}");
        let _ = std::fs::remove_file(data_path);
        let _ = std::fs::remove_file(model_path);
    }

    #[test]
    fn serve_answers_over_tcp_until_shutdown() {
        use std::io::{BufRead, BufReader as IoBufReader, Write as IoWrite};
        use std::net::TcpStream;

        let (data_path, ds) = write_dataset_csv("servetcp.csv", 17);
        let model_path = temp_path("servetcp_model.txt");
        run_argv(&format!(
            "train --data {} --classes 2 --trees 4 --depth 6 --out {}",
            data_path.display(),
            model_path.display()
        ))
        .expect("trains");
        let expected = run_argv(&format!(
            "predict --model {} --data {} --classes 2 --backend flint-blocked",
            model_path.display(),
            data_path.display()
        ))
        .expect("predicts");

        // Race-free ephemeral port: serve on 127.0.0.1:0 and read the
        // OS-chosen address back out of the startup line, which the
        // runner flushes before blocking in the accept loop.
        #[derive(Clone, Default)]
        struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl IoWrite for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("buffer lock").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf::default();
        let server = {
            let mut out = buf.clone();
            let argv: Vec<String> = format!(
                "serve --model {} --addr 127.0.0.1:0 --engine flint-blocked \
                 --max-batch 8 --linger-us 100 --workers 2",
                model_path.display()
            )
            .split_whitespace()
            .map(str::to_owned)
            .collect();
            std::thread::spawn(move || {
                run(parse(&argv).expect("parses"), &mut out).expect("serves");
            })
        };
        let addr = {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            loop {
                let text =
                    String::from_utf8(buf.0.lock().expect("buffer lock").clone()).expect("utf8");
                if let Some(rest) = text.split_once("listening on ").map(|(_, r)| r) {
                    break rest.split_whitespace().next().expect("address").to_owned();
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "server never announced its address: {text:?}"
                );
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        };
        let stream = TcpStream::connect(&addr).expect("connects");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = IoBufReader::new(stream.try_clone().expect("clones"));
        let mut writer = stream;
        let mut line = String::new();
        for (i, want) in expected.lines().take(10).enumerate() {
            let row: Vec<String> = ds.sample(i).iter().map(f32::to_string).collect();
            writer
                .write_all((row.join(",") + "\n").as_bytes())
                .expect("writes");
            line.clear();
            reader.read_line(&mut line).expect("reads");
            assert!(
                line.starts_with(&format!("{{\"class\":{want},")),
                "sample {i}: {line}"
            );
        }
        writer.write_all(b"stats\n").expect("writes");
        line.clear();
        reader.read_line(&mut line).expect("reads");
        assert!(line.contains("\"requests\":10"), "{line}");
        writer.write_all(b"shutdown\n").expect("writes");
        line.clear();
        reader.read_line(&mut line).expect("reads");
        server.join().expect("server thread");
        let output = String::from_utf8(buf.0.lock().expect("buffer lock").clone()).expect("utf8");
        assert!(output.contains(&format!("listening on {addr}")), "{output}");
        assert!(output.contains("\"requests\":10"), "{output}");
        let _ = std::fs::remove_file(data_path);
        let _ = std::fs::remove_file(model_path);
    }

    #[test]
    fn tree_span_flag_validates_its_bounds() {
        let (data_path, _) = write_dataset_csv("span.csv", 21);
        let model_path = temp_path("span_model.txt");
        run_argv(&format!(
            "train --data {} --classes 2 --trees 4 --depth 4 --out {}",
            data_path.display(),
            model_path.display()
        ))
        .expect("trains");
        for bad in ["2", "3:2", "0:9", "x:2", "2:"] {
            let err = run_argv(&format!(
                "serve --model {} --trees {bad} --stdin",
                model_path.display()
            ))
            .unwrap_err();
            assert!(err.to_string().contains("--trees"), "{bad}: {err}");
        }
        let _ = std::fs::remove_file(data_path);
        let _ = std::fs::remove_file(model_path);
    }

    #[test]
    fn route_rejects_bad_shard_lists_before_binding() {
        let err = run_argv("route --shards not-an-addr").unwrap_err();
        assert!(err.to_string().contains("invalid shard address"), "{err}");
        let err = run_argv("route --shards ,").unwrap_err();
        assert!(err.to_string().contains("lists no shard"), "{err}");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn route_fronts_tree_span_shards_with_identical_answers() {
        use std::io::{BufRead, BufReader as IoBufReader, Read as IoRead, Write as IoWrite};
        use std::net::TcpStream;

        let (data_path, ds) = write_dataset_csv("routecli.csv", 23);
        let model_path = temp_path("routecli_model.txt");
        run_argv(&format!(
            "train --data {} --classes 2 --trees 5 --depth 6 --out {}",
            data_path.display(),
            model_path.display()
        ))
        .expect("trains");
        let expected = run_argv(&format!(
            "predict --model {} --data {} --classes 2 --backend flint-blocked",
            model_path.display(),
            data_path.display()
        ))
        .expect("predicts");

        #[derive(Clone, Default)]
        struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl IoWrite for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("buffer lock").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let spawn = |argv_text: String, buf: SharedBuf| {
            std::thread::spawn(move || {
                let argv: Vec<String> = argv_text.split_whitespace().map(str::to_owned).collect();
                let mut out = buf;
                run(parse(&argv).expect("parses"), &mut out).expect("runs");
            })
        };
        let await_addr = |buf: &SharedBuf, marker: &str| {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            loop {
                let text =
                    String::from_utf8(buf.0.lock().expect("buffer lock").clone()).expect("utf8");
                if let Some(rest) = text.split_once(marker).map(|(_, r)| r) {
                    break rest.split_whitespace().next().expect("address").to_owned();
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "never announced {marker:?}: {text:?}"
                );
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        };

        // Two shards over the ragged 5-tree split 3/2, then the router.
        let mut shard_addrs = Vec::new();
        let mut handles = Vec::new();
        for span in ["0:3", "3:5"] {
            let buf = SharedBuf::default();
            handles.push(spawn(
                format!(
                    "serve --model {} --addr 127.0.0.1:0 --trees {span} --max-batch 1 --workers 1",
                    model_path.display()
                ),
                buf.clone(),
            ));
            shard_addrs.push(await_addr(&buf, "listening on "));
        }
        let router_buf = SharedBuf::default();
        let router = spawn(
            format!(
                "route --shards {} --addr 127.0.0.1:0",
                shard_addrs.join(",")
            ),
            router_buf.clone(),
        );
        let addr = await_addr(&router_buf, "routing on ");

        let stream = TcpStream::connect(&addr).expect("connects");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = IoBufReader::new(stream.try_clone().expect("clones"));
        let mut writer = stream;
        let mut line = String::new();
        for (i, want) in expected.lines().take(8).enumerate() {
            let row: Vec<String> = ds.sample(i).iter().map(f32::to_string).collect();
            writeln!(writer, "{}", row.join(",")).expect("writes");
            line.clear();
            reader.read_line(&mut line).expect("reads");
            assert!(
                line.starts_with(&format!("{{\"class\":{want},\"engine\":\"router\"")),
                "sample {i}: {line}"
            );
        }
        writeln!(writer, "health").expect("writes");
        line.clear();
        reader.read_line(&mut line).expect("reads");
        assert!(line.contains("\"ok\":true"), "{line}");
        assert!(line.contains("\"shards_up\":2"), "{line}");
        writeln!(writer, "shutdown").expect("writes");
        line.clear();
        reader.read_line(&mut line).expect("reads");
        router.join().expect("router thread");
        for (addr, handle) in shard_addrs.iter().zip(handles) {
            let mut s = TcpStream::connect(addr).expect("connects shard");
            s.write_all(b"shutdown\n").expect("writes");
            let _ = s.read(&mut [0u8; 256]);
            handle.join().expect("shard thread");
        }
        let _ = std::fs::remove_file(data_path);
        let _ = std::fs::remove_file(model_path);
    }

    #[test]
    fn bench_on_full_registry_with_stored_model() {
        let (data_path, _) = write_dataset_csv("benchall.csv", 10);
        let model_path = temp_path("benchall_model.txt");
        run_argv(&format!(
            "train --data {} --classes 2 --trees 3 --depth 5 --out {}",
            data_path.display(),
            model_path.display()
        ))
        .expect("trains");
        let output = run_argv(&format!(
            "bench --data {} --classes 2 --model {} --runs 1",
            data_path.display(),
            model_path.display()
        ))
        .expect("benches");
        // One row per registered engine plus the workload and caps
        // lines, the header, and the trailing note.
        assert_eq!(
            output.lines().count(),
            EngineKind::ALL.len() + 4,
            "{output}"
        );
        assert!(output.contains("host kernel caps:"), "{output}");
        let _ = std::fs::remove_file(data_path);
        let _ = std::fs::remove_file(model_path);
    }

    #[test]
    fn bench_without_data_or_list_errors() {
        let err = run_argv("bench").unwrap_err();
        assert!(err.to_string().contains("--data"), "{err}");
        let (data_path, _) = write_dataset_csv("benchbad.csv", 11);
        let err = run_argv(&format!(
            "bench --data {} --classes 2 --engines warp",
            data_path.display()
        ))
        .unwrap_err();
        assert!(err.to_string().contains("unknown engine"), "{err}");
        // A stored model whose width differs from the workload must
        // error cleanly, not panic inside the reference loop.
        let model_path = temp_path("benchbad_model.txt");
        run_argv(&format!(
            "train --data {} --classes 2 --trees 2 --depth 4 --out {}",
            data_path.display(),
            model_path.display()
        ))
        .expect("trains");
        let narrow_path = temp_path("benchbad_narrow.csv");
        std::fs::write(&narrow_path, "0.5,1.5,0\n-0.5,2.0,1\n").expect("write file");
        let err = run_argv(&format!(
            "bench --data {} --classes 2 --model {}",
            narrow_path.display(),
            model_path.display()
        ))
        .unwrap_err();
        assert!(
            err.to_string().contains("model expects 4 features"),
            "{err}"
        );
        let _ = std::fs::remove_file(narrow_path);
        let _ = std::fs::remove_file(model_path);
        let _ = std::fs::remove_file(data_path);
    }

    #[test]
    fn emit_and_importance_and_simulate() {
        let (data_path, _) = write_dataset_csv("emit.csv", 3);
        let model_path = temp_path("emit_model.txt");
        run_argv(&format!(
            "train --data {} --classes 2 --trees 2 --depth 4 --out {}",
            data_path.display(),
            model_path.display()
        ))
        .expect("trains");
        let c = run_argv(&format!(
            "emit --model {} --lang c --variant flint",
            model_path.display()
        ))
        .expect("emits");
        assert!(c.contains("predict_forest_flint"));
        let c64 =
            run_argv(&format!("emit --model {} --lang c64", model_path.display())).expect("emits");
        assert!(c64.contains("_f64"));
        let asm = run_argv(&format!(
            "emit --model {} --lang asm-arm --variant flint",
            model_path.display()
        ))
        .expect("emits");
        assert!(asm.contains("movz"));
        let imp =
            run_argv(&format!("importance --model {}", model_path.display())).expect("importances");
        assert_eq!(imp.lines().count(), 4);
        let sim = run_argv(&format!(
            "simulate --model {} --data {} --classes 2 --machine embedded --config flint",
            model_path.display(),
            data_path.display()
        ))
        .expect("simulates");
        assert!(sim.contains("cycles/inference"), "{sim}");
        let _ = std::fs::remove_file(data_path);
        let _ = std::fs::remove_file(model_path);
    }

    #[test]
    fn invalid_options_error_cleanly() {
        let (data_path, _) = write_dataset_csv("bad.csv", 4);
        let model_path = temp_path("bad_model.txt");
        run_argv(&format!(
            "train --data {} --classes 2 --trees 1 --out {}",
            data_path.display(),
            model_path.display()
        ))
        .expect("trains");
        let err = run_argv(&format!(
            "predict --model {} --data {} --classes 2 --backend warp",
            model_path.display(),
            data_path.display()
        ))
        .unwrap_err();
        // The registry error names the typo and lists every engine.
        assert!(err.to_string().contains("unknown engine"), "{err}");
        assert!(err.to_string().contains("cags-flint-blocked"), "{err}");
        let err = run_argv(&format!(
            "simulate --model {} --data {} --classes 2 --machine vax",
            model_path.display(),
            data_path.display()
        ))
        .unwrap_err();
        assert!(err.to_string().contains("unknown machine"));
        let err =
            run_argv("predict --model /nonexistent --data also-nope --classes 2").unwrap_err();
        assert!(matches!(err, RunError::Io(_)));
        let _ = std::fs::remove_file(data_path);
        let _ = std::fs::remove_file(model_path);
    }

    #[test]
    fn help_prints_usage() {
        let text = run_argv("help").expect("help");
        assert!(text.contains("USAGE"));
        assert!(text.contains("flint train"));
    }
}
