//! Command line parsing (hand-rolled: no argument-parsing crate is in
//! the sanctioned offline dependency set).

use std::collections::BTreeMap;

/// A parsed subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Train a forest from a CSV file and write the model.
    Train {
        /// Input CSV (features…, label).
        data: String,
        /// Number of classes in the label column.
        classes: usize,
        /// Ensemble size.
        trees: usize,
        /// Depth cap (`None` = unbounded).
        depth: Option<usize>,
        /// RNG seed.
        seed: u64,
        /// Output model path (stdout if `None`).
        out: Option<String>,
    },
    /// Predict a CSV with a stored model.
    Predict {
        /// Model file.
        model: String,
        /// Input CSV.
        data: String,
        /// Number of classes in the CSV's label column.
        classes: usize,
        /// Backend name (`naive`, `flint`, `cags`, `cags-flint`,
        /// `quickscorer`).
        backend: String,
        /// Also print accuracy against the CSV labels.
        accuracy: bool,
        /// Sample block size for the batch engine (`None` = scalar
        /// one-sample-at-a-time loop, unless `threads > 1`).
        batch_size: Option<usize>,
        /// Worker threads for the batch engine.
        threads: usize,
    },
    /// Measure every registered engine's throughput over a CSV
    /// workload (the `batch_throughput` table without cargo/criterion),
    /// or list the engine registry.
    Bench {
        /// Input CSV used as the workload (required unless `list` or
        /// `shape`).
        data: Option<String>,
        /// Forest-shape preset (`magic`, `ranking`, `deep`) generating
        /// a synthetic workload + forest instead of `--data`.
        shape: Option<String>,
        /// Number of classes in the CSV's label column (required
        /// unless `list`).
        classes: Option<usize>,
        /// Stored model to serve (`None` = train on the workload).
        model: Option<String>,
        /// Ensemble size when training in-process.
        trees: usize,
        /// Depth cap when training in-process.
        depth: Option<usize>,
        /// RNG seed when training in-process.
        seed: u64,
        /// Sample block size for the engines' batch options.
        batch_size: Option<usize>,
        /// Worker threads for the engines' batch options.
        threads: usize,
        /// Timed scoring passes per engine (median reported).
        runs: usize,
        /// Comma-separated engine names (`None` = the full registry).
        engines: Option<String>,
        /// Print the engine registry (names and strategies) and exit.
        list: bool,
        /// Result format: `table`, `csv` or `json`.
        output: String,
    },
    /// Serve a stored model over TCP (or stdin) through the
    /// micro-batching inference server.
    Serve {
        /// Model file.
        model: String,
        /// Engine registry name answering requests.
        engine: String,
        /// Batch-size cap of the micro-batcher.
        max_batch: usize,
        /// Linger deadline in microseconds (how long a partial batch
        /// waits for more rows).
        linger_us: u64,
        /// Scoring worker threads.
        workers: usize,
        /// Bounded request-queue depth (backpressure threshold).
        queue_depth: usize,
        /// TCP listen address.
        addr: String,
        /// TCP front end (`epoll` event loop or `threads`
        /// thread-per-connection); parsed by [`flint_serve::FrontEnd`].
        front_end: String,
        /// Connection cap of the event-loop front end (further accepts
        /// are answered `busy` and closed).
        max_conns: usize,
        /// In-flight prediction cap of the event-loop front end.
        max_inflight: usize,
        /// Serve only the contiguous tree span `a:b` (half-open, as
        /// planned by `flint_forest::plan_spans`) — one shard of a
        /// router fan-out instead of the whole ensemble.
        trees: Option<String>,
        /// Serve stdin/stdout instead of TCP.
        stdin: bool,
    },
    /// Front N `flint serve` shards with the fan-out/merge router:
    /// same wire protocol, answers bit-identical to a single server
    /// over the whole forest.
    Route {
        /// Comma-separated shard addresses (`host:port,host:port`).
        shards: String,
        /// TCP listen address.
        addr: String,
        /// Connection cap (further accepts are answered `busy`).
        max_conns: usize,
        /// Fanned-out-and-unanswered request cap across all clients.
        max_inflight: usize,
    },
    /// Emit source code for a stored model.
    Emit {
        /// Model file.
        model: String,
        /// Target language (`c`, `c64`, `rust`, `asm-arm`, `asm-x86`).
        lang: String,
        /// Comparison idiom (`std`, `flint`).
        variant: String,
    },
    /// Print Gini feature importances of a stored model.
    Importance {
        /// Model file.
        model: String,
    },
    /// Simulate a stored model on a machine cost profile.
    Simulate {
        /// Model file.
        model: String,
        /// Input CSV used as the workload.
        data: String,
        /// Number of classes in the CSV.
        classes: usize,
        /// Machine name (`x86s`, `x86d`, `arms`, `armd`, `embedded`).
        machine: String,
        /// Configuration (`naive`, `cags`, `flint`, `cags-flint`,
        /// `flint-asm`, `softfloat`).
        config: String,
    },
    /// Print usage.
    Help,
}

/// Error parsing the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl core::fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseArgsError {}

fn flags(args: &[String]) -> Result<BTreeMap<String, String>, ParseArgsError> {
    let mut map = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| ParseArgsError(format!("expected --flag, got {:?}", args[i])))?;
        if key == "accuracy" || key == "list" || key == "stdin" {
            map.insert(key.to_owned(), "true".to_owned());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| ParseArgsError(format!("--{key} needs a value")))?;
        map.insert(key.to_owned(), value.clone());
        i += 2;
    }
    Ok(map)
}

fn required(map: &BTreeMap<String, String>, key: &str) -> Result<String, ParseArgsError> {
    map.get(key)
        .cloned()
        .ok_or_else(|| ParseArgsError(format!("missing required --{key}")))
}

fn parse_number<T: std::str::FromStr>(text: &str, key: &str) -> Result<T, ParseArgsError> {
    text.parse()
        .map_err(|_| ParseArgsError(format!("--{key}: cannot parse {text:?}")))
}

/// Parses `args` (without the program name) into a [`Command`].
///
/// # Errors
///
/// [`ParseArgsError`] with a human-readable message on any malformed
/// input.
pub fn parse(args: &[String]) -> Result<Command, ParseArgsError> {
    let Some((sub, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    let map = flags(rest)?;
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "train" => Ok(Command::Train {
            data: required(&map, "data")?,
            classes: parse_number(&required(&map, "classes")?, "classes")?,
            trees: map
                .get("trees")
                .map(|v| parse_number(v, "trees"))
                .transpose()?
                .unwrap_or(10),
            depth: map
                .get("depth")
                .map(|v| parse_number(v, "depth"))
                .transpose()?,
            seed: map
                .get("seed")
                .map(|v| parse_number(v, "seed"))
                .transpose()?
                .unwrap_or(0),
            out: map.get("out").cloned(),
        }),
        "predict" => Ok(Command::Predict {
            model: required(&map, "model")?,
            data: required(&map, "data")?,
            classes: parse_number(&required(&map, "classes")?, "classes")?,
            backend: map
                .get("backend")
                .cloned()
                .unwrap_or_else(|| "flint".to_owned()),
            accuracy: map.contains_key("accuracy"),
            batch_size: map
                .get("batch-size")
                .map(|v| parse_number(v, "batch-size"))
                .transpose()?,
            threads: map
                .get("threads")
                .map(|v| parse_number(v, "threads"))
                .transpose()?
                .unwrap_or(1),
        }),
        "bench" => Ok(Command::Bench {
            data: map.get("data").cloned(),
            shape: map.get("shape").cloned(),
            classes: map
                .get("classes")
                .map(|v| parse_number(v, "classes"))
                .transpose()?,
            model: map.get("model").cloned(),
            trees: map
                .get("trees")
                .map(|v| parse_number(v, "trees"))
                .transpose()?
                .unwrap_or(24),
            depth: map
                .get("depth")
                .map(|v| parse_number(v, "depth"))
                .transpose()?
                .or(Some(16)),
            seed: map
                .get("seed")
                .map(|v| parse_number(v, "seed"))
                .transpose()?
                .unwrap_or(0),
            batch_size: map
                .get("batch-size")
                .map(|v| parse_number(v, "batch-size"))
                .transpose()?,
            threads: map
                .get("threads")
                .map(|v| parse_number(v, "threads"))
                .transpose()?
                .unwrap_or(1),
            runs: map
                .get("runs")
                .map(|v| parse_number(v, "runs"))
                .transpose()?
                .unwrap_or(5),
            engines: map.get("engines").cloned(),
            list: map.contains_key("list"),
            output: map
                .get("output")
                .cloned()
                .unwrap_or_else(|| "table".to_owned()),
        }),
        "serve" => Ok(Command::Serve {
            model: required(&map, "model")?,
            engine: map
                .get("engine")
                .cloned()
                .unwrap_or_else(|| "flint-blocked".to_owned()),
            max_batch: map
                .get("max-batch")
                .map(|v| parse_number(v, "max-batch"))
                .transpose()?
                .unwrap_or(64),
            linger_us: map
                .get("linger-us")
                .map(|v| parse_number(v, "linger-us"))
                .transpose()?
                .unwrap_or(200),
            workers: map
                .get("workers")
                .map(|v| parse_number(v, "workers"))
                .transpose()?
                .unwrap_or(2),
            queue_depth: map
                .get("queue-depth")
                .map(|v| parse_number(v, "queue-depth"))
                .transpose()?
                .unwrap_or(1024),
            addr: map
                .get("addr")
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:7878".to_owned()),
            front_end: map
                .get("front-end")
                .cloned()
                .unwrap_or_else(|| "epoll".to_owned()),
            max_conns: map
                .get("max-conns")
                .map(|v| parse_number(v, "max-conns"))
                .transpose()?
                .unwrap_or(16384),
            max_inflight: map
                .get("max-inflight")
                .map(|v| parse_number(v, "max-inflight"))
                .transpose()?
                .unwrap_or(1024),
            trees: map.get("trees").cloned(),
            stdin: map.contains_key("stdin"),
        }),
        "route" => Ok(Command::Route {
            shards: required(&map, "shards")?,
            addr: map
                .get("addr")
                .cloned()
                .unwrap_or_else(|| flint_router::DEFAULT_ROUTER_ADDR.to_owned()),
            max_conns: map
                .get("max-conns")
                .map(|v| parse_number(v, "max-conns"))
                .transpose()?
                .unwrap_or(16384),
            max_inflight: map
                .get("max-inflight")
                .map(|v| parse_number(v, "max-inflight"))
                .transpose()?
                .unwrap_or(1024),
        }),
        "emit" => Ok(Command::Emit {
            model: required(&map, "model")?,
            lang: map.get("lang").cloned().unwrap_or_else(|| "c".to_owned()),
            variant: map
                .get("variant")
                .cloned()
                .unwrap_or_else(|| "flint".to_owned()),
        }),
        "importance" => Ok(Command::Importance {
            model: required(&map, "model")?,
        }),
        "simulate" => Ok(Command::Simulate {
            model: required(&map, "model")?,
            data: required(&map, "data")?,
            classes: parse_number(&required(&map, "classes")?, "classes")?,
            machine: map
                .get("machine")
                .cloned()
                .unwrap_or_else(|| "x86s".to_owned()),
            config: map
                .get("config")
                .cloned()
                .unwrap_or_else(|| "flint".to_owned()),
        }),
        other => Err(ParseArgsError(format!(
            "unknown subcommand {other:?}; try `flint help`"
        ))),
    }
}

/// The usage text printed by `flint help`.
pub const USAGE: &str = "\
flint — FLInt random forest toolchain

USAGE:
  flint train      --data d.csv --classes K [--trees N] [--depth D] [--seed S] [--out model.txt]
  flint predict    --model model.txt --data d.csv --classes K [--backend ENGINE] [--accuracy] [--batch-size B] [--threads T]
  flint bench      --data d.csv --classes K [--model model.txt] [--trees N] [--depth D] [--seed S]
                   [--batch-size B] [--threads T] [--runs R] [--engines a,b,c] [--output table|csv|json]
  flint bench      --shape magic|ranking|deep [--seed S] [--batch-size B] [--threads T]
                   [--runs R] [--engines a,b,c] [--output table|csv|json]
  flint bench      --list
  flint serve      --model model.txt [--engine ENGINE] [--max-batch B] [--linger-us U]
                   [--workers W] [--queue-depth Q] [--addr HOST:PORT]
                   [--front-end epoll|threads] [--max-conns C] [--max-inflight I]
                   [--trees A:B] [--stdin]
  flint route      --shards HOST:PORT,HOST:PORT [--addr HOST:PORT] [--max-conns C] [--max-inflight I]
  flint emit       --model model.txt [--lang c|c64|rust|asm-arm|asm-x86] [--variant std|flint]
  flint importance --model model.txt
  flint simulate   --model model.txt --data d.csv --classes K [--machine x86s|x86d|arms|armd|embedded] [--config naive|cags|flint|cags-flint|flint-asm|softfloat]
  flint help

ENGINE is any name from the engine registry (`flint bench --list`,
case-insensitive): the five if-else configurations
(naive|cags|flint|cags-flint|softfloat), their blocked batch
counterparts (*-blocked), quickscorer[-float], the instruction-level
VM variants (vm-flint|vm-float|vm-softfloat), the 8-wide SIMD lane
engines (simd|simd-float; build with --features simd-avx2 for the
AVX2 kernels), and their half-precision node-slab counterparts
(simd-f16|simd-f16-float). Set FLINT_KERNEL=portable|avx2|neon to
override the auto-dispatched kernel path.

`flint bench --shape` generates a named synthetic workload instead of
reading a CSV: magic (24 trees x depth 10), ranking (600 x 6,
bandwidth-bound), deep (12 x 18).

`flint serve` speaks one request per line (CSV feature row or
{\"features\":[...]}; `stats` and `shutdown` commands) and answers one
JSON object per line. The default `epoll` front end is a readiness
event loop (one thread, thousands of idle connections, explicit `busy`
shedding past --max-conns / --max-inflight); `--front-end threads` is
the thread-per-connection baseline, and the one that works off Linux.
`--trees A:B` serves only that contiguous tree span — one shard of a
sharded deployment.

`flint route` fronts N shards started with `flint serve --trees`: it
speaks the same protocol, fans each request to every shard as a
`votes:` partial, merges the histograms and applies the canonical
majority vote, so answers are bit-identical to one server over the
whole forest. Control verbs on the same connection: health, shardmap,
shardmap set a,b, drain, undrain, stats, shutdown. Any shard down or
shedding fails that request with a visible busy — never a partial
merge.

CSV format: one row per sample, float features followed by an integer
class label, no header.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(text: &str) -> Vec<String> {
        text.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parse_train_with_defaults() {
        let cmd = parse(&argv("train --data d.csv --classes 3")).expect("parses");
        assert_eq!(
            cmd,
            Command::Train {
                data: "d.csv".into(),
                classes: 3,
                trees: 10,
                depth: None,
                seed: 0,
                out: None,
            }
        );
    }

    #[test]
    fn parse_train_full() {
        let cmd = parse(&argv(
            "train --data d.csv --classes 2 --trees 50 --depth 12 --seed 9 --out m.txt",
        ))
        .expect("parses");
        assert_eq!(
            cmd,
            Command::Train {
                data: "d.csv".into(),
                classes: 2,
                trees: 50,
                depth: Some(12),
                seed: 9,
                out: Some("m.txt".into()),
            }
        );
    }

    #[test]
    fn parse_predict_accuracy_flag() {
        let cmd = parse(&argv(
            "predict --model m.txt --data d.csv --classes 2 --backend cags-flint --accuracy",
        ))
        .expect("parses");
        match cmd {
            Command::Predict {
                backend,
                accuracy,
                batch_size,
                threads,
                ..
            } => {
                assert_eq!(backend, "cags-flint");
                assert!(accuracy);
                assert_eq!(batch_size, None);
                assert_eq!(threads, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_predict_batch_flags() {
        let cmd = parse(&argv(
            "predict --model m.txt --data d.csv --classes 2 --batch-size 128 --threads 4",
        ))
        .expect("parses");
        match cmd {
            Command::Predict {
                batch_size,
                threads,
                ..
            } => {
                assert_eq!(batch_size, Some(128));
                assert_eq!(threads, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
        let err = parse(&argv(
            "predict --model m.txt --data d.csv --classes 2 --batch-size many",
        ))
        .unwrap_err();
        assert!(err.0.contains("batch-size"), "{err}");
    }

    #[test]
    fn parse_bench_defaults_and_flags() {
        let cmd = parse(&argv("bench --data d.csv --classes 2")).expect("parses");
        assert_eq!(
            cmd,
            Command::Bench {
                data: Some("d.csv".into()),
                shape: None,
                classes: Some(2),
                model: None,
                trees: 24,
                depth: Some(16),
                seed: 0,
                batch_size: None,
                threads: 1,
                runs: 5,
                engines: None,
                list: false,
                output: "table".into(),
            }
        );
        let cmd = parse(&argv(
            "bench --data d.csv --classes 3 --model m.txt --batch-size 128 --threads 4 \
             --runs 9 --engines flint,flint-blocked --output json",
        ))
        .expect("parses");
        match cmd {
            Command::Bench {
                model,
                batch_size,
                threads,
                runs,
                engines,
                output,
                ..
            } => {
                assert_eq!(model.as_deref(), Some("m.txt"));
                assert_eq!(batch_size, Some(128));
                assert_eq!(threads, 4);
                assert_eq!(runs, 9);
                assert_eq!(engines.as_deref(), Some("flint,flint-blocked"));
                assert_eq!(output, "json");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_serve_defaults_and_flags() {
        let cmd = parse(&argv("serve --model m.txt")).expect("parses");
        assert_eq!(
            cmd,
            Command::Serve {
                model: "m.txt".into(),
                engine: "flint-blocked".into(),
                max_batch: 64,
                linger_us: 200,
                workers: 2,
                queue_depth: 1024,
                addr: "127.0.0.1:7878".into(),
                front_end: "epoll".into(),
                max_conns: 16384,
                max_inflight: 1024,
                trees: None,
                stdin: false,
            }
        );
        let cmd = parse(&argv(
            "serve --model m.txt --engine quickscorer --max-batch 16 --linger-us 500 \
             --workers 4 --queue-depth 64 --addr 0.0.0.0:9000 --front-end threads \
             --max-conns 100 --max-inflight 32 --trees 0:12 --stdin",
        ))
        .expect("parses");
        assert_eq!(
            cmd,
            Command::Serve {
                model: "m.txt".into(),
                engine: "quickscorer".into(),
                max_batch: 16,
                linger_us: 500,
                workers: 4,
                queue_depth: 64,
                addr: "0.0.0.0:9000".into(),
                front_end: "threads".into(),
                max_conns: 100,
                max_inflight: 32,
                trees: Some("0:12".into()),
                stdin: true,
            }
        );
        let err = parse(&argv("serve")).unwrap_err();
        assert!(err.0.contains("--model"), "{err}");
        let err = parse(&argv("serve --model m.txt --max-batch soon")).unwrap_err();
        assert!(err.0.contains("max-batch"), "{err}");
        let err = parse(&argv("serve --model m.txt --max-conns lots")).unwrap_err();
        assert!(err.0.contains("max-conns"), "{err}");
    }

    #[test]
    fn parse_route_defaults_and_flags() {
        let cmd = parse(&argv("route --shards 127.0.0.1:7878,127.0.0.1:7879")).expect("parses");
        assert_eq!(
            cmd,
            Command::Route {
                shards: "127.0.0.1:7878,127.0.0.1:7879".into(),
                addr: flint_router::DEFAULT_ROUTER_ADDR.into(),
                max_conns: 16384,
                max_inflight: 1024,
            }
        );
        let cmd = parse(&argv(
            "route --shards 10.0.0.1:1 --addr 0.0.0.0:9100 --max-conns 64 --max-inflight 8",
        ))
        .expect("parses");
        assert_eq!(
            cmd,
            Command::Route {
                shards: "10.0.0.1:1".into(),
                addr: "0.0.0.0:9100".into(),
                max_conns: 64,
                max_inflight: 8,
            }
        );
        let err = parse(&argv("route")).unwrap_err();
        assert!(err.0.contains("--shards"), "{err}");
        let err = parse(&argv("route --shards a:1 --max-inflight soon")).unwrap_err();
        assert!(err.0.contains("max-inflight"), "{err}");
    }

    #[test]
    fn parse_bench_shape_preset() {
        let cmd = parse(&argv("bench --shape ranking --runs 3")).expect("parses");
        match cmd {
            Command::Bench {
                shape,
                data,
                classes,
                runs,
                ..
            } => {
                assert_eq!(shape.as_deref(), Some("ranking"));
                assert_eq!(data, None);
                assert_eq!(classes, None);
                assert_eq!(runs, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_bench_list() {
        let cmd = parse(&argv("bench --list")).expect("parses");
        match cmd {
            Command::Bench { list, data, .. } => {
                assert!(list);
                assert_eq!(data, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_descriptive() {
        let err = parse(&argv("train --classes 2")).unwrap_err();
        assert!(err.0.contains("--data"), "{err}");
        let err = parse(&argv("train --data d.csv --classes two")).unwrap_err();
        assert!(err.0.contains("classes"), "{err}");
        let err = parse(&argv("frobnicate")).unwrap_err();
        assert!(err.0.contains("unknown subcommand"), "{err}");
        let err = parse(&argv("train --data")).unwrap_err();
        assert!(err.0.contains("needs a value"), "{err}");
        let err = parse(&argv("train data")).unwrap_err();
        assert!(err.0.contains("expected --flag"), "{err}");
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).expect("parses"), Command::Help);
        assert_eq!(parse(&argv("help")).expect("parses"), Command::Help);
        assert_eq!(parse(&argv("--help")).expect("parses"), Command::Help);
    }
}
