//! Software floating point addition, subtraction and multiplication
//! with round-to-nearest-even, using integer operations only.
//!
//! The algorithms are the textbook ones: unpack, align/multiply
//! significands with three extra guard bits (guard, round, sticky),
//! normalize, round to nearest even, repack with overflow to infinity
//! and gradual underflow to subnormals. Internal arithmetic uses `u128`
//! so the 53×53-bit product of `f64` multiplication is exact.

use crate::format::SoftFloatFormat;

/// Number of guard bits kept below the significand during rounding.
const GUARD: u32 = 3;

/// Packs sign/exponent/significand into a final bit pattern, applying
/// round-to-nearest-even and handling overflow and gradual underflow.
///
/// `sig` is the significand aligned so bit `MAN_BITS + GUARD` is the
/// implicit-one position; `exp` is the biased exponent for that
/// position. `sig == 0` must be handled by the caller.
fn round_pack<F: SoftFloatFormat>(sign: bool, mut exp: i32, mut sig: u128) -> u64 {
    debug_assert!(sig != 0);
    // `top` is the implicit-one bit index.
    let top = F::MAN_BITS + GUARD;
    // Normalize left (result of subtraction may be small).
    while sig < (1u128 << top) && exp > 0 {
        sig <<= 1;
        exp -= 1;
    }
    // Normalize right (carry out of addition / multiplication).
    while sig >= (1u128 << (top + 1)) {
        sig = (sig >> 1) | (sig & 1); // keep sticky
        exp += 1;
    }
    // Gradual underflow: shift right until exp is the subnormal marker.
    if exp <= 0 {
        let shift = (1 - exp) as u32;
        if shift > top + 1 {
            sig = 1; // pure sticky: rounds to zero (or smallest subnormal)
        } else {
            let lost = sig & ((1u128 << shift) - 1);
            sig = (sig >> shift) | u128::from(lost != 0);
        }
        exp = 0;
    }
    // Round to nearest even on the GUARD low bits.
    let lsb = (sig >> GUARD) & 1;
    let guard_bit = (sig >> (GUARD - 1)) & 1;
    let sticky = sig & ((1 << (GUARD - 1)) - 1);
    let mut frac = (sig >> GUARD) as u64;
    if guard_bit != 0 && (sticky != 0 || lsb != 0) {
        frac += 1;
        // Carry into the exponent: frac == 2^(MAN_BITS+1) (from normal)
        // or 2^MAN_BITS (subnormal became normal — exp 0 -> 1 is
        // exactly what storing the implicit bit encodes).
        if frac >= (1u64 << (F::MAN_BITS + 1)) {
            frac >>= 1;
            exp += 1;
        }
    }
    // If a subnormal rounded/normalized into the normal range the
    // implicit bit is set in frac and exp must be at least 1.
    if exp == 0 && frac >= F::IMPLICIT_BIT {
        exp = 1;
    }
    // Overflow to infinity.
    if exp >= F::EXP_MAX as i32 {
        return pack_inf::<F>(sign);
    }
    let sign_bit = u64::from(sign) << F::SIGN_SHIFT;
    if exp == 0 {
        // Subnormal (or zero, but sig != 0 was required): no implicit bit.
        sign_bit | (frac & F::MAN_MASK)
    } else {
        sign_bit | ((exp as u64) << F::MAN_BITS) | (frac & F::MAN_MASK)
    }
}

fn pack_inf<F: SoftFloatFormat>(sign: bool) -> u64 {
    (u64::from(sign) << F::SIGN_SHIFT) | ((F::EXP_MAX as u64) << F::MAN_BITS)
}

fn pack_zero<F: SoftFloatFormat>(sign: bool) -> u64 {
    u64::from(sign) << F::SIGN_SHIFT
}

/// Splits a pattern into (sign, biased exponent field, fraction field).
fn fields<F: SoftFloatFormat>(bits: u64) -> (bool, u32, u64) {
    (
        (bits >> F::SIGN_SHIFT) & 1 != 0,
        ((bits >> F::MAN_BITS) as u32) & F::EXP_MAX,
        bits & F::MAN_MASK,
    )
}

fn is_nan_bits<F: SoftFloatFormat>(bits: u64) -> bool {
    let (_, e, f) = fields::<F>(bits);
    e == F::EXP_MAX && f != 0
}

fn is_inf_bits<F: SoftFloatFormat>(bits: u64) -> bool {
    let (_, e, f) = fields::<F>(bits);
    e == F::EXP_MAX && f == 0
}

/// Software `a + b` with round-to-nearest-even.
///
/// Matches hardware IEEE-754 addition bit-for-bit for all finite and
/// infinite inputs; NaN inputs produce the canonical quiet NaN.
///
/// # Examples
///
/// ```
/// use flint_softfloat::soft_add;
///
/// assert_eq!(soft_add(0.1f32, 0.2f32), 0.1f32 + 0.2f32);
/// assert_eq!(soft_add(f64::MAX, f64::MAX), f64::INFINITY);
/// ```
pub fn soft_add<F: SoftFloatFormat>(a: F, b: F) -> F {
    let (ab, bb) = (a.bits64(), b.bits64());
    if is_nan_bits::<F>(ab) || is_nan_bits::<F>(bb) {
        return F::from_bits64(F::quiet_nan_bits());
    }
    let (asign, aexp, afrac) = fields::<F>(ab);
    let (bsign, bexp, bfrac) = fields::<F>(bb);
    // Infinities.
    match (is_inf_bits::<F>(ab), is_inf_bits::<F>(bb)) {
        (true, true) => {
            return if asign == bsign {
                F::from_bits64(pack_inf::<F>(asign))
            } else {
                F::from_bits64(F::quiet_nan_bits()) // inf - inf
            };
        }
        (true, false) => return F::from_bits64(pack_inf::<F>(asign)),
        (false, true) => return F::from_bits64(pack_inf::<F>(bsign)),
        _ => {}
    }
    // Zeros.
    let a_zero = aexp == 0 && afrac == 0;
    let b_zero = bexp == 0 && bfrac == 0;
    if a_zero && b_zero {
        // (+0) + (-0) = +0 under RNE; (-0) + (-0) = -0.
        return F::from_bits64(pack_zero::<F>(asign && bsign));
    }
    if a_zero {
        return F::from_bits64(bb);
    }
    if b_zero {
        return F::from_bits64(ab);
    }
    // Effective exponent/significand (subnormals: exp field 0 ≡ exp 1
    // without implicit bit).
    let norm = |exp: u32, frac: u64| -> (i32, u128) {
        if exp == 0 {
            (1, u128::from(frac) << GUARD)
        } else {
            (exp as i32, u128::from(frac | F::IMPLICIT_BIT) << GUARD)
        }
    };
    let (mut aexp_i, mut asig) = norm(aexp, afrac);
    let (mut bexp_i, mut bsig) = norm(bexp, bfrac);
    // Order so |a| >= |b|.
    let mut rsign = asign;
    if (bexp_i > aexp_i) || (bexp_i == aexp_i && bsig > asig) {
        core::mem::swap(&mut aexp_i, &mut bexp_i);
        core::mem::swap(&mut asig, &mut bsig);
        rsign = bsign;
    }
    // Align b to a's exponent, collecting sticky.
    let shift = (aexp_i - bexp_i) as u32;
    bsig = if shift >= F::MAN_BITS + GUARD + 2 {
        u128::from(bsig != 0)
    } else {
        let lost = bsig & ((1u128 << shift) - 1);
        (bsig >> shift) | u128::from(lost != 0)
    };
    let sum = if asign == bsign {
        asig + bsig
    } else {
        asig - bsig
    };
    if sum == 0 {
        // Exact cancellation: +0 under round-to-nearest.
        return F::from_bits64(pack_zero::<F>(false));
    }
    F::from_bits64(round_pack::<F>(rsign, aexp_i, sum))
}

/// Software `a - b`: negate then [`soft_add`].
///
/// # Examples
///
/// ```
/// assert_eq!(flint_softfloat::soft_sub(1.0f32, 0.75f32), 0.25f32);
/// ```
pub fn soft_sub<F: SoftFloatFormat>(a: F, b: F) -> F {
    soft_add(a, soft_neg(b))
}

/// Software negation: one XOR on the sign bit.
///
/// # Examples
///
/// ```
/// assert_eq!(flint_softfloat::soft_neg(1.5f32), -1.5f32);
/// assert!(flint_softfloat::soft_neg(0.0f64).is_sign_negative());
/// ```
pub fn soft_neg<F: SoftFloatFormat>(a: F) -> F {
    F::from_bits64(a.bits64() ^ (1u64 << F::SIGN_SHIFT))
}

/// Software `a * b` with round-to-nearest-even.
///
/// Matches hardware IEEE-754 multiplication bit-for-bit for all finite
/// and infinite inputs; NaN inputs (and `0 * inf`) produce the canonical
/// quiet NaN.
///
/// # Examples
///
/// ```
/// use flint_softfloat::soft_mul;
///
/// assert_eq!(soft_mul(1.5f32, -2.0f32), -3.0f32);
/// assert_eq!(soft_mul(1e300f64, 1e300f64), f64::INFINITY);
/// ```
pub fn soft_mul<F: SoftFloatFormat>(a: F, b: F) -> F {
    let (ab, bb) = (a.bits64(), b.bits64());
    if is_nan_bits::<F>(ab) || is_nan_bits::<F>(bb) {
        return F::from_bits64(F::quiet_nan_bits());
    }
    let (asign, aexp, afrac) = fields::<F>(ab);
    let (bsign, bexp, bfrac) = fields::<F>(bb);
    let rsign = asign ^ bsign;
    let a_zero = aexp == 0 && afrac == 0;
    let b_zero = bexp == 0 && bfrac == 0;
    let a_inf = is_inf_bits::<F>(ab);
    let b_inf = is_inf_bits::<F>(bb);
    if a_inf || b_inf {
        return if a_zero || b_zero {
            F::from_bits64(F::quiet_nan_bits()) // 0 * inf
        } else {
            F::from_bits64(pack_inf::<F>(rsign))
        };
    }
    if a_zero || b_zero {
        return F::from_bits64(pack_zero::<F>(rsign));
    }
    // Normalize subnormals into (exponent, full significand) form.
    let norm = |exp: u32, frac: u64| -> (i32, u64) {
        if exp == 0 {
            // Shift the fraction up until the implicit-bit position is
            // occupied, decrementing the exponent accordingly.
            let lead = F::MAN_BITS - (63 - frac.leading_zeros());
            (1 - lead as i32, frac << lead)
        } else {
            (exp as i32, frac | F::IMPLICIT_BIT)
        }
    };
    let (aexp_i, asig) = norm(aexp, afrac);
    let (bexp_i, bsig) = norm(bexp, bfrac);
    // Product of two (MAN_BITS+1)-bit significands: 2*(MAN_BITS+1) bits.
    let prod = u128::from(asig) * u128::from(bsig);
    // The implicit-one position of the product sits at bit 2*MAN_BITS
    // (or 2*MAN_BITS+1 on carry; round_pack renormalizes). Align it to
    // MAN_BITS + GUARD, collecting sticky.
    let drop = F::MAN_BITS - GUARD; // bits to discard
    let lost = prod & ((1u128 << drop) - 1);
    let sig = (prod >> drop) | u128::from(lost != 0);
    // Biased result exponent for the bit-2*MAN_BITS position.
    let rexp = aexp_i + bexp_i - F::BIAS;
    F::from_bits64(round_pack_allow_neg::<F>(rsign, rexp, sig))
}

/// Software `a / b` with round-to-nearest-even.
///
/// Matches hardware IEEE-754 division bit-for-bit for all finite and
/// infinite inputs; NaN inputs (and `0/0`, `inf/inf`) produce the
/// canonical quiet NaN; `x/0` produces a correctly signed infinity.
///
/// # Examples
///
/// ```
/// use flint_softfloat::soft_div;
///
/// assert_eq!(soft_div(1.0f32, 3.0f32), 1.0f32 / 3.0f32);
/// assert_eq!(soft_div(-1.0f64, 0.0f64), f64::NEG_INFINITY);
/// assert!(soft_div(0.0f32, 0.0f32).is_nan());
/// ```
pub fn soft_div<F: SoftFloatFormat>(a: F, b: F) -> F {
    let (ab, bb) = (a.bits64(), b.bits64());
    if is_nan_bits::<F>(ab) || is_nan_bits::<F>(bb) {
        return F::from_bits64(F::quiet_nan_bits());
    }
    let (asign, aexp, afrac) = fields::<F>(ab);
    let (bsign, bexp, bfrac) = fields::<F>(bb);
    let rsign = asign ^ bsign;
    let a_zero = aexp == 0 && afrac == 0;
    let b_zero = bexp == 0 && bfrac == 0;
    let a_inf = is_inf_bits::<F>(ab);
    let b_inf = is_inf_bits::<F>(bb);
    match (a_inf, b_inf) {
        (true, true) => return F::from_bits64(F::quiet_nan_bits()),
        (true, false) => return F::from_bits64(pack_inf::<F>(rsign)),
        (false, true) => return F::from_bits64(pack_zero::<F>(rsign)),
        _ => {}
    }
    if a_zero {
        return if b_zero {
            F::from_bits64(F::quiet_nan_bits()) // 0/0
        } else {
            F::from_bits64(pack_zero::<F>(rsign))
        };
    }
    if b_zero {
        return F::from_bits64(pack_inf::<F>(rsign)); // x/0 -> inf
    }
    // Normalize subnormal operands.
    let norm = |exp: u32, frac: u64| -> (i32, u64) {
        if exp == 0 {
            let lead = F::MAN_BITS - (63 - frac.leading_zeros());
            (1 - lead as i32, frac << lead)
        } else {
            (exp as i32, frac | F::IMPLICIT_BIT)
        }
    };
    let (aexp_i, asig) = norm(aexp, afrac);
    let (bexp_i, bsig) = norm(bexp, bfrac);
    // Long division with MAN_BITS + GUARD + 1 extra quotient bits so
    // round_pack sees a full significand plus guard bits; the remainder
    // folds into sticky.
    let shift = F::MAN_BITS + GUARD + 1;
    let num = u128::from(asig) << shift;
    let den = u128::from(bsig);
    let q = num / den;
    let r = num % den;
    let sig = q | u128::from(r != 0);
    // Quotient of two [1,2) significands lies in (0.5, 2): its leading
    // bit sits at `shift` or `shift - 1`; round_pack renormalizes. The
    // biased exponent for the bit-`shift` position:
    let rexp = aexp_i - bexp_i + F::BIAS;
    // Align: round_pack expects the implicit-one at MAN_BITS + GUARD,
    // one below `shift`; shift right once with sticky and bump exp.
    let sig = (sig >> 1) | (sig & 1);
    F::from_bits64(round_pack_allow_neg::<F>(rsign, rexp, sig))
}

/// Like [`round_pack`] but tolerates exponents that went negative
/// (deep underflow in multiplication) by pre-shifting.
fn round_pack_allow_neg<F: SoftFloatFormat>(sign: bool, exp: i32, sig: u128) -> u64 {
    if exp < -(F::MAN_BITS as i32 + 8) {
        // Far below subnormal range: rounds to (signed) zero — keep one
        // sticky bit so round_pack returns the smallest subnormal only
        // if it should; at this magnitude it never should.
        return pack_zero::<F>(sign);
    }
    round_pack::<F>(sign, exp, sig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_simple_values() {
        assert_eq!(soft_add(1.0f32, 2.0f32), 3.0);
        assert_eq!(soft_add(0.1f32, 0.2f32), 0.1f32 + 0.2f32);
        assert_eq!(soft_add(1.0f64, 1e-16f64), 1.0f64 + 1e-16f64);
        assert_eq!(soft_add(-1.5f32, 1.5f32).to_bits(), 0); // exact cancel -> +0
    }

    #[test]
    fn add_rounding_to_even() {
        // 2^24 + 1 is not representable in f32: ties to even.
        let big = 16_777_216f32; // 2^24
        assert_eq!(soft_add(big, 1.0f32), big + 1.0f32);
        assert_eq!(soft_add(big, 2.0f32), big + 2.0f32);
        assert_eq!(soft_add(big, 3.0f32), big + 3.0f32);
    }

    #[test]
    fn add_specials() {
        assert_eq!(soft_add(f32::INFINITY, 1.0), f32::INFINITY);
        assert_eq!(soft_add(f32::NEG_INFINITY, -1.0), f32::NEG_INFINITY);
        assert!(soft_add(f32::INFINITY, f32::NEG_INFINITY).is_nan());
        assert!(soft_add(f32::NAN, 1.0).is_nan());
        assert_eq!(soft_add(f32::MAX, f32::MAX), f32::INFINITY);
        // Signed zero rules.
        assert_eq!(soft_add(0.0f32, -0.0f32).to_bits(), 0);
        assert_eq!(soft_add(-0.0f32, -0.0f32).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn add_subnormals() {
        let tiny = f32::from_bits(1);
        assert_eq!(soft_add(tiny, tiny), tiny + tiny);
        let almost = f32::MIN_POSITIVE - f32::from_bits(1); // largest subnormal
        assert_eq!(soft_add(almost, tiny), almost + tiny);
        // Subnormal + subnormal crossing into normal range.
        let half_min = f32::MIN_POSITIVE / 2.0;
        assert_eq!(soft_add(half_min, half_min), f32::MIN_POSITIVE);
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(soft_sub(3.0f32, 1.0f32), 2.0);
        assert_eq!(soft_sub(1.0f32, 3.0f32), -2.0);
        assert_eq!(soft_neg(0.0f32).to_bits(), (-0.0f32).to_bits());
        assert_eq!(soft_neg(f64::INFINITY), f64::NEG_INFINITY);
        // Catastrophic cancellation is exact.
        let a = 1.000_000_1f32;
        assert_eq!(soft_sub(a, 1.0f32), a - 1.0f32);
    }

    #[test]
    fn mul_simple_values() {
        assert_eq!(soft_mul(1.5f32, 2.0f32), 3.0);
        assert_eq!(soft_mul(-1.5f32, 2.0f32), -3.0);
        assert_eq!(soft_mul(0.1f32, 0.2f32), 0.1f32 * 0.2f32);
        assert_eq!(soft_mul(0.1f64, 0.2f64), 0.1f64 * 0.2f64);
    }

    #[test]
    fn mul_specials() {
        assert!(soft_mul(0.0f32, f32::INFINITY).is_nan());
        assert_eq!(soft_mul(f32::INFINITY, -2.0), f32::NEG_INFINITY);
        assert_eq!(soft_mul(f32::MAX, 2.0), f32::INFINITY);
        assert_eq!(soft_mul(0.0f32, -1.0).to_bits(), (-0.0f32).to_bits());
        assert!(soft_mul(f64::NAN, 0.0).is_nan());
    }

    #[test]
    fn mul_subnormals() {
        let tiny = f32::from_bits(1);
        assert_eq!(soft_mul(tiny, 0.5), tiny * 0.5); // rounds to zero (even)
        assert_eq!(soft_mul(tiny, 4.0), tiny * 4.0);
        assert_eq!(soft_mul(f32::MIN_POSITIVE, 0.5), f32::MIN_POSITIVE * 0.5);
        // Deep underflow.
        assert_eq!(soft_mul(f32::from_bits(1), f32::from_bits(1)).to_bits(), 0);
        // Subnormal times large: normal result.
        assert_eq!(
            soft_mul(f32::from_bits(1), 1e38f32),
            f32::from_bits(1) * 1e38f32
        );
    }

    #[test]
    fn div_simple_values() {
        assert_eq!(soft_div(3.0f32, 2.0f32), 1.5);
        assert_eq!(soft_div(1.0f32, 3.0f32), 1.0f32 / 3.0f32);
        assert_eq!(soft_div(-7.5f64, 2.5f64), -3.0);
        assert_eq!(soft_div(0.1f64, 0.3f64), 0.1f64 / 0.3f64);
    }

    #[test]
    fn div_specials() {
        assert!(soft_div(0.0f32, 0.0f32).is_nan());
        assert!(soft_div(f32::INFINITY, f32::INFINITY).is_nan());
        assert_eq!(soft_div(1.0f32, 0.0f32), f32::INFINITY);
        assert_eq!(soft_div(-1.0f32, 0.0f32), f32::NEG_INFINITY);
        assert_eq!(soft_div(1.0f32, -0.0f32), f32::NEG_INFINITY);
        assert_eq!(soft_div(5.0f32, f32::INFINITY).to_bits(), 0);
        assert_eq!(soft_div(f32::INFINITY, -2.0), f32::NEG_INFINITY);
        assert!(soft_div(f64::NAN, 1.0).is_nan());
    }

    #[test]
    fn div_overflow_and_underflow() {
        assert_eq!(soft_div(f32::MAX, 0.5), f32::INFINITY);
        assert_eq!(soft_div(f32::MIN_POSITIVE, 2.0), f32::MIN_POSITIVE / 2.0);
        assert_eq!(
            soft_div(f32::from_bits(1), 2.0),
            f32::from_bits(1) / 2.0 // rounds to zero (even)
        );
        assert_eq!(soft_div(f32::from_bits(1), 1e38), f32::from_bits(1) / 1e38);
        // Subnormal numerator and denominator.
        let (a, b) = (f32::from_bits(123), f32::from_bits(45));
        assert_eq!(soft_div(a, b), a / b);
    }

    #[test]
    fn mul_f64_precision() {
        let a = core::f64::consts::PI;
        let b = core::f64::consts::E;
        assert_eq!(soft_mul(a, b), a * b);
        assert_eq!(soft_mul(a, a), a * a);
    }
}
