//! Unpacking a bit pattern into sign / exponent / significand, and
//! classification — the first step of every softfloat routine.

use crate::format::SoftFloatFormat;

/// The IEEE-754 value classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpClass {
    /// Not a number (exponent all ones, mantissa non-zero).
    Nan,
    /// Positive or negative infinity.
    Infinite,
    /// Positive or negative zero.
    Zero,
    /// Subnormal (denormalized) number.
    Subnormal,
    /// Normal number.
    Normal,
}

/// A float decomposed into its fields, with the significand carrying the
/// implicit bit for normals.
///
/// `exponent` is the *unbiased* exponent of the significand interpreted
/// as a fixed point number with [`SoftFloatFormat::MAN_BITS`] fraction
/// bits (i.e. `value = (-1)^sign * significand * 2^(exponent - MAN_BITS)`
/// for finite non-zero values).
///
/// # Examples
///
/// ```
/// use flint_softfloat::Unpacked;
///
/// let u = Unpacked::from_float(1.5f32);
/// assert!(!u.sign);
/// assert_eq!(u.exponent, 0);
/// assert_eq!(u.significand, (1 << 23) | (1 << 22)); // 1.1 binary
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unpacked {
    /// Sign bit (`true` = negative).
    pub sign: bool,
    /// Unbiased exponent of the implicit-bit position.
    pub exponent: i32,
    /// Significand including the implicit bit for normals; raw fraction
    /// for subnormals; 0 for zeros; fraction field for NaN payload.
    pub significand: u64,
    /// Value class.
    pub class: FpClass,
}

impl Unpacked {
    /// Decomposes `value` into fields using integer operations only.
    pub fn from_float<F: SoftFloatFormat>(value: F) -> Self {
        let bits = value.bits64();
        let sign = (bits >> F::SIGN_SHIFT) & 1 != 0;
        let exp_field = ((bits >> F::MAN_BITS) as u32) & F::EXP_MAX;
        let frac = bits & F::MAN_MASK;
        if exp_field == F::EXP_MAX {
            return if frac == 0 {
                Self {
                    sign,
                    exponent: 0,
                    significand: 0,
                    class: FpClass::Infinite,
                }
            } else {
                Self {
                    sign,
                    exponent: 0,
                    significand: frac,
                    class: FpClass::Nan,
                }
            };
        }
        if exp_field == 0 {
            return if frac == 0 {
                Self {
                    sign,
                    exponent: 0,
                    significand: 0,
                    class: FpClass::Zero,
                }
            } else {
                Self {
                    sign,
                    exponent: 1 - F::BIAS,
                    significand: frac,
                    class: FpClass::Subnormal,
                }
            };
        }
        Self {
            sign,
            exponent: exp_field as i32 - F::BIAS,
            significand: frac | F::IMPLICIT_BIT,
            class: FpClass::Normal,
        }
    }

    /// `true` for NaN.
    #[inline]
    pub fn is_nan(&self) -> bool {
        self.class == FpClass::Nan
    }

    /// `true` for either zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.class == FpClass::Zero
    }
}

/// Classifies a float without any float instruction.
///
/// # Examples
///
/// ```
/// use flint_softfloat::{classify, FpClass};
///
/// assert_eq!(classify(f32::NAN), FpClass::Nan);
/// assert_eq!(classify(f64::INFINITY), FpClass::Infinite);
/// assert_eq!(classify(-0.0f32), FpClass::Zero);
/// assert_eq!(classify(1e-40f32), FpClass::Subnormal);
/// assert_eq!(classify(1.0f64), FpClass::Normal);
/// ```
pub fn classify<F: SoftFloatFormat>(value: F) -> FpClass {
    Unpacked::from_float(value).class
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_matches_std_f32() {
        use std::num::FpCategory;
        let probes = [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            f32::from_bits(1),
            f32::MIN_POSITIVE,
            f32::MAX,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
        ];
        for v in probes {
            let want = match v.classify() {
                FpCategory::Nan => FpClass::Nan,
                FpCategory::Infinite => FpClass::Infinite,
                FpCategory::Zero => FpClass::Zero,
                FpCategory::Subnormal => FpClass::Subnormal,
                FpCategory::Normal => FpClass::Normal,
            };
            assert_eq!(classify(v), want, "{v}");
        }
    }

    #[test]
    fn classify_matches_std_f64() {
        use std::num::FpCategory;
        for v in [
            0.0f64,
            -0.0,
            1.0,
            f64::from_bits(1),
            f64::MAX,
            f64::NAN,
            f64::INFINITY,
        ] {
            let want = match v.classify() {
                FpCategory::Nan => FpClass::Nan,
                FpCategory::Infinite => FpClass::Infinite,
                FpCategory::Zero => FpClass::Zero,
                FpCategory::Subnormal => FpClass::Subnormal,
                FpCategory::Normal => FpClass::Normal,
            };
            assert_eq!(classify(v), want, "{v}");
        }
    }

    #[test]
    fn unpack_normal() {
        let u = Unpacked::from_float(2.0f32);
        assert_eq!(u.exponent, 1);
        assert_eq!(u.significand, 1 << 23);
        assert_eq!(u.class, FpClass::Normal);
        let u = Unpacked::from_float(-0.5f64);
        assert!(u.sign);
        assert_eq!(u.exponent, -1);
        assert_eq!(u.significand, 1 << 52);
    }

    #[test]
    fn unpack_subnormal() {
        let u = Unpacked::from_float(f32::from_bits(1));
        assert_eq!(u.class, FpClass::Subnormal);
        assert_eq!(u.exponent, -126);
        assert_eq!(u.significand, 1);
    }

    #[test]
    fn unpack_specials() {
        assert!(Unpacked::from_float(f32::NAN).is_nan());
        assert!(Unpacked::from_float(0.0f32).is_zero());
        assert!(Unpacked::from_float(-0.0f64).is_zero());
        let inf = Unpacked::from_float(f32::NEG_INFINITY);
        assert_eq!(inf.class, FpClass::Infinite);
        assert!(inf.sign);
    }
}
