//! Software floating point comparison — the routine FLInt replaces.
//!
//! Written the way portable softfloat libraries (and compiler runtime
//! support like `__lesf2`) write it: unpack both operands, handle NaN,
//! handle the `-0.0 == +0.0` identification, then branch on sign and
//! compare magnitudes. Counting the work here against the one or two
//! instructions of a prepared FLInt threshold is exactly the contrast
//! the paper's motivation draws.

use crate::format::SoftFloatFormat;
use core::cmp::Ordering;

/// IEEE-754 comparison: `None` when either operand is NaN (unordered),
/// `-0.0 == +0.0`.
///
/// # Examples
///
/// ```
/// use flint_softfloat::soft_cmp;
/// use core::cmp::Ordering;
///
/// assert_eq!(soft_cmp(1.0f32, 2.0f32), Some(Ordering::Less));
/// assert_eq!(soft_cmp(-0.0f64, 0.0f64), Some(Ordering::Equal));
/// assert_eq!(soft_cmp(f32::NAN, f32::NAN), None);
/// ```
pub fn soft_cmp<F: SoftFloatFormat>(a: F, b: F) -> Option<Ordering> {
    let (ab, bb) = (a.bits64(), b.bits64());
    let exp_all = (F::EXP_MAX as u64) << F::MAN_BITS;
    let abs_mask = (1u64 << F::SIGN_SHIFT) - 1;
    let (aa, ba) = (ab & abs_mask, bb & abs_mask);
    // NaN: exponent all ones and non-zero fraction.
    if (aa & exp_all) == exp_all && (aa & F::MAN_MASK) != 0 {
        return None;
    }
    if (ba & exp_all) == exp_all && (ba & F::MAN_MASK) != 0 {
        return None;
    }
    // ±0 are equal.
    if aa == 0 && ba == 0 {
        return Some(Ordering::Equal);
    }
    let a_neg = ab >> F::SIGN_SHIFT != 0;
    let b_neg = bb >> F::SIGN_SHIFT != 0;
    Some(match (a_neg, b_neg) {
        (false, true) => Ordering::Greater,
        (true, false) => Ordering::Less,
        // Same sign: magnitude order is the unsigned order of the
        // sign-cleared pattern (exponent field dominates the fraction),
        // inverted for negatives.
        (false, false) => aa.cmp(&ba),
        (true, true) => ba.cmp(&aa),
    })
}

/// IEEE total order (like [`f32::total_cmp`]): NaN sorts above
/// infinities, `-NaN` below `-inf`, `-0.0 < +0.0`.
///
/// # Examples
///
/// ```
/// use flint_softfloat::soft_total_cmp;
/// use core::cmp::Ordering;
///
/// assert_eq!(soft_total_cmp(-0.0f32, 0.0f32), Ordering::Less);
/// assert_eq!(soft_total_cmp(f32::NAN, f32::INFINITY), Ordering::Greater);
/// ```
pub fn soft_total_cmp<F: SoftFloatFormat>(a: F, b: F) -> Ordering {
    // The classic transform: interpret as sign-magnitude, reflect the
    // negative half.
    let key = |bits: u64| -> i64 {
        let sign_mask = 1u64 << F::SIGN_SHIFT;
        // Sign-extend the pattern to i64 first for f32 (low 32 bits).
        let v = if F::SIGN_SHIFT == 31 {
            i64::from(bits as u32 as i32)
        } else {
            bits as i64
        };
        if v < 0 {
            !(v) ^ (if F::SIGN_SHIFT == 31 {
                i64::from((sign_mask as u32) as i32)
            } else {
                sign_mask as i64
            })
        } else {
            v
        }
    };
    key(a.bits64()).cmp(&key(b.bits64()))
}

/// IEEE `==` (false for NaN operands; `-0.0 == +0.0`).
///
/// ```
/// assert!(flint_softfloat::soft_eq(-0.0f32, 0.0f32));
/// assert!(!flint_softfloat::soft_eq(f64::NAN, f64::NAN));
/// ```
#[inline]
pub fn soft_eq<F: SoftFloatFormat>(a: F, b: F) -> bool {
    soft_cmp(a, b) == Some(Ordering::Equal)
}

/// IEEE `<` (false if unordered).
///
/// ```
/// assert!(flint_softfloat::soft_lt(1.0f32, 2.0f32));
/// assert!(!flint_softfloat::soft_lt(f32::NAN, 2.0f32));
/// ```
#[inline]
pub fn soft_lt<F: SoftFloatFormat>(a: F, b: F) -> bool {
    soft_cmp(a, b) == Some(Ordering::Less)
}

/// IEEE `<=` (false if unordered).
///
/// ```
/// assert!(flint_softfloat::soft_le(2.0f32, 2.0f32));
/// ```
#[inline]
pub fn soft_le<F: SoftFloatFormat>(a: F, b: F) -> bool {
    matches!(soft_cmp(a, b), Some(Ordering::Less | Ordering::Equal))
}

/// IEEE `>` (false if unordered).
///
/// ```
/// assert!(flint_softfloat::soft_gt(3.0f64, 2.0f64));
/// ```
#[inline]
pub fn soft_gt<F: SoftFloatFormat>(a: F, b: F) -> bool {
    soft_cmp(a, b) == Some(Ordering::Greater)
}

/// IEEE `>=` (false if unordered).
///
/// ```
/// assert!(flint_softfloat::soft_ge(2.0f32, 2.0f32));
/// ```
#[inline]
pub fn soft_ge<F: SoftFloatFormat>(a: F, b: F) -> bool {
    matches!(soft_cmp(a, b), Some(Ordering::Greater | Ordering::Equal))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probes_f32() -> Vec<f32> {
        vec![
            0.0,
            -0.0,
            f32::from_bits(1),
            -f32::from_bits(1),
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            1.0,
            -1.0,
            1.5,
            -2.935417,
            10.074347,
            f32::MAX,
            f32::MIN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            -f32::NAN,
        ]
    }

    #[test]
    fn cmp_matches_hardware_f32() {
        for &a in &probes_f32() {
            for &b in &probes_f32() {
                assert_eq!(soft_cmp(a, b), a.partial_cmp(&b), "cmp({a}, {b})");
                assert_eq!(soft_eq(a, b), a == b, "eq({a}, {b})");
                assert_eq!(soft_lt(a, b), a < b, "lt({a}, {b})");
                assert_eq!(soft_le(a, b), a <= b, "le({a}, {b})");
                assert_eq!(soft_gt(a, b), a > b, "gt({a}, {b})");
                assert_eq!(soft_ge(a, b), a >= b, "ge({a}, {b})");
            }
        }
    }

    #[test]
    fn cmp_matches_hardware_f64() {
        let probes = [
            0.0f64,
            -0.0,
            1.0,
            -1.0,
            f64::from_bits(1),
            f64::MAX,
            f64::MIN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ];
        for &a in &probes {
            for &b in &probes {
                assert_eq!(soft_cmp(a, b), a.partial_cmp(&b), "cmp({a}, {b})");
            }
        }
    }

    #[test]
    fn total_cmp_matches_std() {
        for &a in &probes_f32() {
            for &b in &probes_f32() {
                assert_eq!(
                    soft_total_cmp(a, b),
                    a.total_cmp(&b),
                    "total_cmp({a}[{:#x}], {b}[{:#x}])",
                    a.to_bits(),
                    b.to_bits()
                );
            }
        }
    }

    #[test]
    fn total_cmp_matches_std_f64() {
        let probes = [
            0.0f64,
            -0.0,
            1.0,
            -1.0,
            f64::NAN,
            -f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        for &a in &probes {
            for &b in &probes {
                assert_eq!(soft_total_cmp(a, b), a.total_cmp(&b), "({a}, {b})");
            }
        }
    }
}
