//! Width-generic access to IEEE-754 binary formats.
//!
//! Both supported widths are funnelled through `u64` bit carriers so the
//! arithmetic core ([`crate::arith`]) is written once. The widening is
//! free on 64-bit hosts and keeps the implementation honest: nothing in
//! this crate ever calls a float instruction.

/// An IEEE-754 binary interchange format with its bit pattern exposed
/// as a `u64` (the `f32` pattern occupies the low 32 bits).
///
/// # Examples
///
/// ```
/// use flint_softfloat::SoftFloatFormat;
///
/// assert_eq!(<f32 as SoftFloatFormat>::EXP_BITS, 8);
/// assert_eq!(<f64 as SoftFloatFormat>::MAN_BITS, 52);
/// assert_eq!(1.0f32.bits64(), 0x3f80_0000);
/// assert_eq!(<f64 as SoftFloatFormat>::from_bits64(0x3ff0_0000_0000_0000), 1.0);
/// ```
pub trait SoftFloatFormat: Copy + PartialEq + core::fmt::Debug {
    /// Exponent field width (8 / 11).
    const EXP_BITS: u32;
    /// Mantissa (fraction) field width (23 / 52).
    const MAN_BITS: u32;

    /// Exponent bias `2^(EXP_BITS-1) - 1`.
    const BIAS: i32 = (1 << (Self::EXP_BITS - 1)) - 1;
    /// All-ones exponent field (infinity / NaN marker).
    const EXP_MAX: u32 = (1 << Self::EXP_BITS) - 1;
    /// Bit position of the sign bit.
    const SIGN_SHIFT: u32 = Self::EXP_BITS + Self::MAN_BITS;
    /// Mask of the mantissa field.
    const MAN_MASK: u64 = (1u64 << Self::MAN_BITS) - 1;
    /// The implicit leading-one bit of normal numbers.
    const IMPLICIT_BIT: u64 = 1u64 << Self::MAN_BITS;

    /// The raw bit pattern, widened to `u64`.
    fn bits64(self) -> u64;
    /// Rebuilds the value from a (low-bits) pattern.
    fn from_bits64(bits: u64) -> Self;

    /// The format's canonical quiet NaN pattern.
    fn quiet_nan_bits() -> u64 {
        ((Self::EXP_MAX as u64) << Self::MAN_BITS) | (1u64 << (Self::MAN_BITS - 1))
    }
}

impl SoftFloatFormat for f32 {
    const EXP_BITS: u32 = 8;
    const MAN_BITS: u32 = 23;

    #[inline]
    fn bits64(self) -> u64 {
        u64::from(self.to_bits())
    }
    #[inline]
    fn from_bits64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

impl SoftFloatFormat for f64 {
    const EXP_BITS: u32 = 11;
    const MAN_BITS: u32 = 52;

    #[inline]
    fn bits64(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_constants() {
        assert_eq!(<f32 as SoftFloatFormat>::BIAS, 127);
        assert_eq!(<f64 as SoftFloatFormat>::BIAS, 1023);
        assert_eq!(<f32 as SoftFloatFormat>::EXP_MAX, 255);
        assert_eq!(<f64 as SoftFloatFormat>::EXP_MAX, 2047);
        assert_eq!(<f32 as SoftFloatFormat>::SIGN_SHIFT, 31);
        assert_eq!(<f64 as SoftFloatFormat>::SIGN_SHIFT, 63);
        assert_eq!(<f32 as SoftFloatFormat>::IMPLICIT_BIT, 1 << 23);
    }

    #[test]
    fn quiet_nan_is_nan() {
        assert!(f32::from_bits(f32::quiet_nan_bits() as u32).is_nan());
        assert!(f64::from_bits(f64::quiet_nan_bits()).is_nan());
    }

    #[test]
    fn bits_round_trip() {
        for v in [0.0f32, -0.0, 1.0, -1.0, f32::MAX, f32::MIN_POSITIVE] {
            assert_eq!(f32::from_bits64(v.bits64()).to_bits(), v.to_bits());
        }
        for v in [0.0f64, -0.0, 1.0, -1.0, f64::MAX] {
            assert_eq!(f64::from_bits64(v.bits64()).to_bits(), v.to_bits());
        }
    }
}
