//! # flint-softfloat — software IEEE-754 arithmetic
//!
//! A from-scratch software floating point implementation using **integer
//! operations only**: comparison, classification, negation, addition,
//! subtraction and multiplication for `f32` and `f64`, with
//! round-to-nearest-even.
//!
//! ## Role in the FLInt reproduction
//!
//! The FLInt paper motivates its operator with devices that lack a
//! hardware floating point unit: such systems fall back to *software
//! floats*, whose comparison routine unpacks both operands and walks a
//! chain of sign/exponent/mantissa branches. This crate is that
//! baseline, built so the evaluation can charge realistic instruction
//! counts to the "software float" configuration (see `flint-sim`) and so
//! the repository is self-contained on FPU-less targets.
//!
//! [`soft_cmp`] is deliberately written the way portable softfloat
//! libraries write it — unpack, classify, branch — rather than via the
//! FLInt trick, because it is the *contrast* to FLInt: FLInt replaces
//! this entire routine with one or two integer instructions.
//!
//! ## IEEE semantics
//!
//! Unlike `flint-core`, this crate follows IEEE-754 exactly:
//! `-0.0 == +0.0`, and NaN is unordered (comparisons return
//! `false`/`None`).
//!
//! ## Quickstart
//!
//! ```
//! use flint_softfloat::{soft_add, soft_mul, soft_le, soft_cmp};
//! use core::cmp::Ordering;
//!
//! assert_eq!(soft_add(1.5f32, 2.25f32), 3.75f32);
//! assert_eq!(soft_mul(3.0f64, -0.5f64), -1.5f64);
//! assert!(soft_le(-2.935417f32, 10.074347f32));
//! assert_eq!(soft_cmp(1.0f32, 2.0f32), Some(Ordering::Less));
//! assert_eq!(soft_cmp(f32::NAN, 1.0f32), None); // unordered
//! ```
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod arith;
pub mod cmp;
pub mod format;
pub mod unpack;

pub use arith::{soft_add, soft_div, soft_mul, soft_neg, soft_sub};
pub use cmp::{soft_cmp, soft_eq, soft_ge, soft_gt, soft_le, soft_lt, soft_total_cmp};
pub use format::SoftFloatFormat;
pub use unpack::{classify, FpClass, Unpacked};
