//! Property tests: the software implementation must agree with the
//! host's IEEE-754 hardware bit-for-bit on uniformly random bit
//! patterns (which hit denormals, zeros, infinities and NaNs).

use flint_softfloat::{
    soft_add, soft_cmp, soft_div, soft_eq, soft_ge, soft_gt, soft_le, soft_lt, soft_mul, soft_neg,
    soft_sub, soft_total_cmp,
};
use proptest::prelude::*;

fn any_f32() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(f32::from_bits)
}

fn any_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

/// Bitwise equality, treating every NaN as equal (we canonicalize NaN).
fn bits_eq_f32(a: f32, b: f32) -> bool {
    (a.is_nan() && b.is_nan()) || a.to_bits() == b.to_bits()
}

fn bits_eq_f64(a: f64, b: f64) -> bool {
    (a.is_nan() && b.is_nan()) || a.to_bits() == b.to_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8192))]

    #[test]
    fn add_matches_hardware_f32(a in any_f32(), b in any_f32()) {
        prop_assert!(bits_eq_f32(soft_add(a, b), a + b),
            "{a:?}+{b:?}: soft={:?} hw={:?}", soft_add(a, b), a + b);
    }

    #[test]
    fn add_matches_hardware_f64(a in any_f64(), b in any_f64()) {
        prop_assert!(bits_eq_f64(soft_add(a, b), a + b));
    }

    #[test]
    fn sub_matches_hardware_f32(a in any_f32(), b in any_f32()) {
        prop_assert!(bits_eq_f32(soft_sub(a, b), a - b));
    }

    #[test]
    fn mul_matches_hardware_f32(a in any_f32(), b in any_f32()) {
        prop_assert!(bits_eq_f32(soft_mul(a, b), a * b),
            "{a:?}*{b:?}: soft={:?} hw={:?}", soft_mul(a, b), a * b);
    }

    #[test]
    fn mul_matches_hardware_f64(a in any_f64(), b in any_f64()) {
        prop_assert!(bits_eq_f64(soft_mul(a, b), a * b));
    }

    #[test]
    fn div_matches_hardware_f32(a in any_f32(), b in any_f32()) {
        prop_assert!(bits_eq_f32(soft_div(a, b), a / b),
            "{a:?}/{b:?}: soft={:?} hw={:?}", soft_div(a, b), a / b);
    }

    #[test]
    fn div_matches_hardware_f64(a in any_f64(), b in any_f64()) {
        prop_assert!(bits_eq_f64(soft_div(a, b), a / b));
    }

    #[test]
    fn neg_matches_hardware(a in any_f32()) {
        prop_assert_eq!(soft_neg(a).to_bits(), (-a).to_bits());
    }

    #[test]
    fn cmp_matches_hardware_f32(a in any_f32(), b in any_f32()) {
        prop_assert_eq!(soft_cmp(a, b), a.partial_cmp(&b));
        prop_assert_eq!(soft_eq(a, b), a == b);
        prop_assert_eq!(soft_lt(a, b), a < b);
        prop_assert_eq!(soft_le(a, b), a <= b);
        prop_assert_eq!(soft_gt(a, b), a > b);
        prop_assert_eq!(soft_ge(a, b), a >= b);
    }

    #[test]
    fn cmp_matches_hardware_f64(a in any_f64(), b in any_f64()) {
        prop_assert_eq!(soft_cmp(a, b), a.partial_cmp(&b));
        prop_assert_eq!(soft_le(a, b), a <= b);
    }

    #[test]
    fn total_cmp_matches_std(a in any_f32(), b in any_f32()) {
        prop_assert_eq!(soft_total_cmp(a, b), a.total_cmp(&b));
    }

    #[test]
    fn total_cmp_matches_std_f64(a in any_f64(), b in any_f64()) {
        prop_assert_eq!(soft_total_cmp(a, b), a.total_cmp(&b));
    }

    /// Addition is commutative (including signed-zero results).
    #[test]
    fn add_commutes(a in any_f32(), b in any_f32()) {
        prop_assert!(bits_eq_f32(soft_add(a, b), soft_add(b, a)));
    }

    #[test]
    fn mul_commutes(a in any_f32(), b in any_f32()) {
        prop_assert!(bits_eq_f32(soft_mul(a, b), soft_mul(b, a)));
    }
}
