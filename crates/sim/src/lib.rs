//! # flint-sim — machine cost models and cycle simulation
//!
//! The paper measures on four physical machines (Table I). This crate
//! substitutes documented cost models for them: per-instruction cycle
//! costs fed by the exact instruction counts of the `flint-codegen` VM,
//! plus cache-block, CAGS-overhead and implementation-style terms. The
//! *shape* claims of the evaluation — FLInt beats naive everywhere,
//! composes with CAGS, CAGS alone backfires on Apple M1, assembly
//! crosses over C at depth — are reproduced and regression-tested here.
//!
//! ```
//! use flint_data::synth::SynthSpec;
//! use flint_forest::{ForestConfig, RandomForest};
//! use flint_sim::{simulate_forest, Machine, SimConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = SynthSpec::new(100, 4, 2).generate();
//! let forest = RandomForest::fit(&data, &ForestConfig::grid(3, 6))?;
//! let naive = simulate_forest(Machine::X86Server, &forest, &data, &data, &SimConfig::naive())?;
//! let flint = simulate_forest(Machine::X86Server, &forest, &data, &data, &SimConfig::flint())?;
//! assert!(flint.total_cycles() < naive.total_cycles());
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod machine;
pub mod simulate;

pub use machine::{CostModel, Machine};
pub use simulate::{
    normalized_time, simulate_forest, ImplStyle, SimConfig, SimReport, SimulateError,
};
