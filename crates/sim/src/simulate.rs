//! Cycle simulation of forest inference under a machine cost model.
//!
//! The simulated cost of one configuration decomposes as
//!
//! ```text
//! total = instruction_cycles   (VM instruction counts × per-kind cost,
//!                               scaled by the assembly factor for the
//!                               direct-assembly style)
//!       + cache_cycles         (expected cache-block transitions along
//!                               the traversal under the chosen layout,
//!                               × the machine's miss penalty)
//!       + layout_overhead      (CAGS's inserted jumps, per node visit)
//!       + call_overhead        (per-tree per-inference C or assembly
//!                               entry cost)
//! ```
//!
//! Every term is observable in the [`SimReport`] so experiments can
//! attribute wins and losses — which is how the harness reproduces the
//! *shapes* of Fig. 3 (FLInt vs CAGS vs both across four machines) and
//! Fig. 4 (C vs assembly crossover with depth).

use crate::machine::Machine;
use flint_codegen::{ExecStats, VmForest, VmVariant};
use flint_data::Dataset;
use flint_forest::RandomForest;
use flint_layout::{LayoutStrategy, TreeLayout, TreeProfile};

/// Implementation style of the generated trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImplStyle {
    /// C source compiled by an optimizing compiler.
    C,
    /// Direct assembly emission (Listing 5) — lower per-node cost, no
    /// compiler help around the call site.
    Asm,
}

/// One simulated configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Comparison idiom.
    pub variant: VmVariant,
    /// Memory layout of the tree nodes.
    pub layout: LayoutStrategy,
    /// C or direct assembly.
    pub style: ImplStyle,
}

impl SimConfig {
    /// The paper's "Naive" configuration.
    pub fn naive() -> Self {
        Self {
            variant: VmVariant::NativeFloat,
            layout: LayoutStrategy::ArenaOrder,
            style: ImplStyle::C,
        }
    }

    /// The paper's "CAGS" configuration.
    pub fn cags() -> Self {
        Self {
            variant: VmVariant::NativeFloat,
            layout: LayoutStrategy::Cags { block_nodes: 4 },
            style: ImplStyle::C,
        }
    }

    /// The paper's "FLInt" configuration (C implementation).
    pub fn flint() -> Self {
        Self {
            variant: VmVariant::Flint,
            layout: LayoutStrategy::ArenaOrder,
            style: ImplStyle::C,
        }
    }

    /// The paper's "CAGS (FLInt)" configuration.
    pub fn cags_flint() -> Self {
        Self {
            variant: VmVariant::Flint,
            layout: LayoutStrategy::Cags { block_nodes: 4 },
            style: ImplStyle::C,
        }
    }

    /// The paper's "FLInt ASM" configuration (Fig. 4 / Table III).
    pub fn flint_asm() -> Self {
        Self {
            variant: VmVariant::Flint,
            layout: LayoutStrategy::ArenaOrder,
            style: ImplStyle::Asm,
        }
    }

    /// Software float baseline (naive trees on an FPU-less target).
    pub fn softfloat() -> Self {
        Self {
            variant: VmVariant::SoftFloat,
            layout: LayoutStrategy::ArenaOrder,
            style: ImplStyle::C,
        }
    }

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match (self.variant, &self.layout, self.style) {
            (VmVariant::NativeFloat, LayoutStrategy::ArenaOrder, ImplStyle::C) => "Naive",
            (VmVariant::NativeFloat, LayoutStrategy::Cags { .. }, ImplStyle::C) => "CAGS",
            (VmVariant::Flint, LayoutStrategy::ArenaOrder, ImplStyle::C) => "FLInt",
            (VmVariant::Flint, LayoutStrategy::Cags { .. }, ImplStyle::C) => "CAGS (FLInt)",
            (VmVariant::Flint, LayoutStrategy::ArenaOrder, ImplStyle::Asm) => "FLInt ASM",
            (VmVariant::SoftFloat, _, _) => "SoftFloat",
            _ => "custom",
        }
    }
}

/// Simulated cost breakdown of running a forest over a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimReport {
    /// Instruction-stream cycles (after the style factor).
    pub instruction_cycles: f64,
    /// Cache-block transition cycles.
    pub cache_cycles: f64,
    /// CAGS jump-insertion overhead cycles.
    pub layout_overhead: f64,
    /// Per-tree-call entry overhead cycles.
    pub call_overhead: f64,
    /// Accumulated instruction counts across all inferences.
    pub stats: ExecStats,
    /// Number of inferences simulated.
    pub n_inferences: u64,
}

impl SimReport {
    /// Total simulated cycles.
    pub fn total_cycles(&self) -> f64 {
        self.instruction_cycles + self.cache_cycles + self.layout_overhead + self.call_overhead
    }

    /// Average cycles per inference.
    pub fn cycles_per_inference(&self) -> f64 {
        if self.n_inferences == 0 {
            0.0
        } else {
            self.total_cycles() / self.n_inferences as f64
        }
    }
}

/// Error simulating a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimulateError {
    /// The configuration needs an FPU the machine does not have.
    FpuRequired,
    /// A VM program failed (malformed tree or feature mismatch).
    Vm(flint_codegen::VmError),
}

impl core::fmt::Display for SimulateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::FpuRequired => {
                write!(
                    f,
                    "configuration uses float instructions on an FPU-less machine"
                )
            }
            Self::Vm(e) => write!(f, "vm failure during simulation: {e}"),
        }
    }
}

impl std::error::Error for SimulateError {}

impl From<flint_codegen::VmError> for SimulateError {
    fn from(e: flint_codegen::VmError) -> Self {
        Self::Vm(e)
    }
}

/// Simulates running `forest` over every sample of `test_data` on
/// `machine` under `config`. Branch probabilities for the layout terms
/// are profiled on `profile_data` (the paper profiles on the training
/// set).
///
/// # Errors
///
/// [`SimulateError::FpuRequired`] when a float configuration is
/// simulated on [`Machine::EmbeddedNoFpu`]; [`SimulateError::Vm`] on
/// malformed inputs (feature count mismatch).
pub fn simulate_forest(
    machine: Machine,
    forest: &RandomForest,
    profile_data: &Dataset,
    test_data: &Dataset,
    config: &SimConfig,
) -> Result<SimReport, SimulateError> {
    let cm = machine.cost_model();
    if config.variant == VmVariant::NativeFloat && !machine.has_fpu() {
        return Err(SimulateError::FpuRequired);
    }
    // Instruction counts from the VM (exact per the listing sequences).
    let vm = VmForest::compile(forest, config.variant);
    let mut stats = ExecStats::default();
    for i in 0..test_data.n_samples() {
        let (_, s) = vm.run(test_data.sample(i))?;
        stats.add(&s);
    }
    let style_factor = match config.style {
        ImplStyle::C => 1.0,
        ImplStyle::Asm => cm.asm_per_node_factor,
    };
    let instruction_cycles = cm.cycles_for(&stats) * style_factor;

    // Memory-layout terms: expected block transitions per inference,
    // per tree, under the configured layout.
    let mut transitions_per_inference = 0.0;
    for tree in forest.trees() {
        let profile = TreeProfile::collect(tree, profile_data);
        let layout = TreeLayout::compute(tree, &profile, config.layout);
        transitions_per_inference +=
            layout.expected_block_transitions(tree, &profile, cm.block_nodes);
    }
    let n_inferences = test_data.n_samples() as u64;
    // The direct-assembly trees keep everything (code and immediates)
    // in one dense instruction stream, so their block footprint shrinks
    // by the same per-node factor as their cycle count.
    let cache_cycles =
        transitions_per_inference * cm.block_miss * n_inferences as f64 * style_factor;

    // CAGS pays for its grouping with inserted jumps at block seams.
    let node_visits = stats.cmp_int + stats.cmp_float + stats.soft_cmp + stats.rets;
    let layout_overhead = match config.layout {
        LayoutStrategy::Cags { .. } => node_visits as f64 * cm.cags_node_overhead,
        _ => 0.0,
    };

    // Per-tree-call entry cost.
    let per_call = match config.style {
        ImplStyle::C => cm.c_call_overhead,
        ImplStyle::Asm => cm.asm_call_overhead,
    };
    let call_overhead = per_call * forest.n_trees() as f64 * n_inferences as f64;

    Ok(SimReport {
        instruction_cycles,
        cache_cycles,
        layout_overhead,
        call_overhead,
        stats,
        n_inferences,
    })
}

/// Convenience: the normalized execution time of `config` against the
/// naive baseline on the same machine/forest/data (the quantity the
/// paper's Fig. 3 plots).
///
/// # Errors
///
/// Propagates [`SimulateError`] from either simulation.
pub fn normalized_time(
    machine: Machine,
    forest: &RandomForest,
    profile_data: &Dataset,
    test_data: &Dataset,
    config: &SimConfig,
) -> Result<f64, SimulateError> {
    let naive = simulate_forest(
        machine,
        forest,
        profile_data,
        test_data,
        &SimConfig::naive(),
    )?;
    let it = simulate_forest(machine, forest, profile_data, test_data, config)?;
    Ok(it.total_cycles() / naive.total_cycles())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_data::synth::SynthSpec;
    use flint_forest::ForestConfig;

    fn setup(depth: usize) -> (Dataset, RandomForest) {
        setup_sized(depth, 250)
    }

    fn setup_sized(depth: usize, n: usize) -> (Dataset, RandomForest) {
        let data = SynthSpec::new(n, 8, 3)
            .cluster_std(1.5)
            .clusters_per_class(2)
            .negative_fraction(0.5)
            .seed(12)
            .generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(5, depth)).expect("trainable");
        (data, forest)
    }

    #[test]
    fn flint_beats_naive_on_every_paper_machine() {
        let (data, forest) = setup(12);
        for machine in Machine::PAPER_SET {
            let r = normalized_time(machine, &forest, &data, &data, &SimConfig::flint())
                .expect("simulates");
            assert!(
                r < 1.0,
                "{}: FLInt normalized time {r} should be < 1",
                machine.name()
            );
            assert!(r > 0.4, "{}: {r} suspiciously low", machine.name());
        }
    }

    #[test]
    fn cags_flint_beats_flint_alone_on_servers() {
        let (data, forest) = setup(12);
        for machine in [Machine::X86Server, Machine::Armv8Server] {
            let flint = normalized_time(machine, &forest, &data, &data, &SimConfig::flint())
                .expect("simulates");
            let both = normalized_time(machine, &forest, &data, &data, &SimConfig::cags_flint())
                .expect("simulates");
            assert!(
                both < flint,
                "{}: CAGS(FLInt) {both} should beat FLInt {flint}",
                machine.name()
            );
        }
    }

    #[test]
    fn cags_alone_is_slower_than_naive_on_m1() {
        // The paper's ARMv8-desktop anomaly (Table II: CAGS 1.14x).
        let (data, forest) = setup(12);
        let r = normalized_time(
            Machine::Armv8Desktop,
            &forest,
            &data,
            &data,
            &SimConfig::cags(),
        )
        .expect("simulates");
        assert!(r > 1.0, "M1 CAGS normalized time {r} should exceed 1");
    }

    #[test]
    fn cags_alone_helps_on_servers() {
        let (data, forest) = setup(12);
        let r = normalized_time(
            Machine::X86Server,
            &forest,
            &data,
            &data,
            &SimConfig::cags(),
        )
        .expect("simulates");
        assert!(r < 1.0, "X86 server CAGS normalized time {r}");
    }

    #[test]
    fn asm_crossover_with_depth() {
        // Fig. 4: assembly worse for shallow trees (entry overhead),
        // better for deep trees (per-node factor).
        let (data_s, forest_s) = setup(1);
        let (data_d, forest_d) = setup_sized(30, 1200);
        let m = Machine::X86Server;
        let shallow_c =
            simulate_forest(m, &forest_s, &data_s, &data_s, &SimConfig::flint()).expect("sim");
        let shallow_asm =
            simulate_forest(m, &forest_s, &data_s, &data_s, &SimConfig::flint_asm()).expect("sim");
        assert!(
            shallow_asm.total_cycles() > shallow_c.total_cycles(),
            "shallow: asm {} should exceed C {}",
            shallow_asm.total_cycles(),
            shallow_c.total_cycles()
        );
        let deep_c =
            simulate_forest(m, &forest_d, &data_d, &data_d, &SimConfig::flint()).expect("sim");
        let deep_asm =
            simulate_forest(m, &forest_d, &data_d, &data_d, &SimConfig::flint_asm()).expect("sim");
        assert!(
            deep_asm.total_cycles() < deep_c.total_cycles(),
            "deep: asm {} should beat C {}",
            deep_asm.total_cycles(),
            deep_c.total_cycles()
        );
    }

    #[test]
    fn softfloat_is_far_slower_and_flint_fixes_it_on_embedded() {
        let (data, forest) = setup(8);
        let m = Machine::EmbeddedNoFpu;
        // Naive float cannot run at all.
        assert_eq!(
            simulate_forest(m, &forest, &data, &data, &SimConfig::naive()).unwrap_err(),
            SimulateError::FpuRequired
        );
        let soft = simulate_forest(m, &forest, &data, &data, &SimConfig::softfloat()).expect("sim");
        let flint = simulate_forest(m, &forest, &data, &data, &SimConfig::flint()).expect("sim");
        let ratio = flint.total_cycles() / soft.total_cycles();
        assert!(
            ratio < 0.5,
            "FLInt should cost well under half of softfloat, got {ratio}"
        );
    }

    #[test]
    fn report_terms_decompose() {
        let (data, forest) = setup(6);
        let r = simulate_forest(
            Machine::X86Server,
            &forest,
            &data,
            &data,
            &SimConfig::cags_flint(),
        )
        .expect("sim");
        assert!(r.instruction_cycles > 0.0);
        assert!(r.call_overhead > 0.0);
        assert!(r.layout_overhead > 0.0);
        let sum = r.instruction_cycles + r.cache_cycles + r.layout_overhead + r.call_overhead;
        assert!((r.total_cycles() - sum).abs() < 1e-9);
        assert!(r.cycles_per_inference() > 0.0);
        assert_eq!(r.n_inferences, data.n_samples() as u64);
    }

    #[test]
    fn config_names_match_paper_legends() {
        assert_eq!(SimConfig::naive().name(), "Naive");
        assert_eq!(SimConfig::cags().name(), "CAGS");
        assert_eq!(SimConfig::flint().name(), "FLInt");
        assert_eq!(SimConfig::cags_flint().name(), "CAGS (FLInt)");
        assert_eq!(SimConfig::flint_asm().name(), "FLInt ASM");
        assert_eq!(SimConfig::softfloat().name(), "SoftFloat");
    }
}
