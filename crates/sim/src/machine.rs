//! Machine profiles and instruction cost models.
//!
//! The paper evaluates on four physical machines (Table I). We cannot
//! ship those machines, so each is represented by a documented cost
//! model: cycles per instruction kind, a cache-block miss penalty for
//! the CAGS axis, and implementation-style overheads for the
//! C-vs-assembly axis (Fig. 4). The *absolute* values are calibrated
//! estimates from public microarchitecture data (Agner Fog tables,
//! ARM optimization guides); what the reproduction relies on is the
//! *relations* the paper's argument needs:
//!
//! * float compare + FP-register traffic costs more than integer
//!   compare + immediate materialization (FLInt wins),
//! * float constants load from data memory while FLInt immediates ride
//!   in the instruction stream (FLInt composes with CAGS),
//! * softfloat comparison costs an order of magnitude more (the no-FPU
//!   motivation),
//! * Apple M1's huge caches make block misses cheap, so CAGS's extra
//!   jumps are not amortized there (the paper's ARMv8-desktop anomaly
//!   where CAGS is 1.14× *slower* than naive).

use flint_codegen::ExecStats;

/// One of the evaluation machines (Table I) plus an embedded profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Machine {
    /// Gigabyte R182-Z92-00, 2× AMD EPYC 7742 (X86 Server).
    X86Server,
    /// Dell OptiPlex 5090, Intel Core i7-10700 (X86 Desktop).
    X86Desktop,
    /// Gigabyte R181-T9, 2× Cavium ThunderX2 99xx (ARMv8 Server).
    Armv8Server,
    /// Apple Mac Mini, Apple Silicon M1 (ARMv8 Desktop).
    Armv8Desktop,
    /// A Cortex-M-class microcontroller without an FPU — the deployment
    /// target motivating the paper (not in its measured set).
    EmbeddedNoFpu,
}

impl Machine {
    /// The paper's four machines, in Table I order.
    pub const PAPER_SET: [Machine; 4] = [
        Machine::X86Server,
        Machine::X86Desktop,
        Machine::Armv8Server,
        Machine::Armv8Desktop,
    ];

    /// Short display name matching the paper's column heads.
    pub fn name(self) -> &'static str {
        match self {
            Machine::X86Server => "X86 S",
            Machine::X86Desktop => "X86 D",
            Machine::Armv8Server => "ARMv8 S",
            Machine::Armv8Desktop => "ARMv8 D",
            Machine::EmbeddedNoFpu => "Embedded (no FPU)",
        }
    }

    /// The Table I row: (system, cpu, ram, linux kernel).
    pub fn table1_row(self) -> (&'static str, &'static str, &'static str, &'static str) {
        match self {
            Machine::X86Server => (
                "Gigabyte R182-Z92-00",
                "2x AMD EPYC 7742",
                "256GB DDR4",
                "5.10.0 x86_64",
            ),
            Machine::X86Desktop => (
                "Dell OptiPlex 5090",
                "Intel Core i7-10700",
                "64GB DDR4",
                "5.10.106 x86_64",
            ),
            Machine::Armv8Server => (
                "Gigabyte R181-T9",
                "2x Cavium ThunderX2 99xx",
                "256GB DDR4",
                "5.4.0 aarch64",
            ),
            Machine::Armv8Desktop => (
                "Apple Mac Mini",
                "Apple Silicon M1",
                "16GB DDR4",
                "5.17.0 aarch64",
            ),
            Machine::EmbeddedNoFpu => (
                "(simulated)",
                "Cortex-M0-class, no FPU",
                "64KB SRAM",
                "bare metal",
            ),
        }
    }

    /// `true` if the machine has hardware floating point.
    pub fn has_fpu(self) -> bool {
        !matches!(self, Machine::EmbeddedNoFpu)
    }

    /// The machine's instruction cost model.
    pub fn cost_model(self) -> CostModel {
        match self {
            Machine::X86Server => CostModel {
                load_word: 1.0,
                load_float: 2.0,
                load_float_const: 3.4,
                mov_imm: 0.4,
                eor: 0.4,
                cmp_int: 0.9,
                cmp_float: 2.6,
                soft_cmp: 38.0,
                branch: 1.2,
                ret: 1.5,
                block_nodes: 4,
                block_miss: 22.0,
                cags_node_overhead: 0.35,
                c_call_overhead: 22.0,
                asm_call_overhead: 45.0,
                asm_per_node_factor: 0.62,
            },
            Machine::X86Desktop => CostModel {
                load_word: 1.0,
                load_float: 1.8,
                load_float_const: 3.0,
                mov_imm: 0.4,
                eor: 0.4,
                cmp_int: 0.9,
                cmp_float: 2.4,
                soft_cmp: 34.0,
                branch: 1.1,
                ret: 1.4,
                block_nodes: 4,
                block_miss: 15.0,
                cags_node_overhead: 0.35,
                c_call_overhead: 18.0,
                asm_call_overhead: 48.0,
                asm_per_node_factor: 0.72,
            },
            Machine::Armv8Server => CostModel {
                load_word: 1.2,
                load_float: 2.4,
                load_float_const: 4.0,
                mov_imm: 0.5,
                eor: 0.5,
                cmp_int: 1.0,
                cmp_float: 2.6,
                soft_cmp: 42.0,
                branch: 1.4,
                ret: 1.8,
                block_nodes: 4,
                block_miss: 40.0,
                cags_node_overhead: 0.4,
                c_call_overhead: 26.0,
                asm_call_overhead: 55.0,
                asm_per_node_factor: 0.55,
            },
            Machine::Armv8Desktop => CostModel {
                // M1: extremely wide core, big caches -> misses cheap,
                // float compare relatively expensive against its fast
                // integer side; CAGS's extra jumps don't pay off.
                load_word: 0.7,
                load_float: 1.4,
                load_float_const: 1.9,
                mov_imm: 0.25,
                eor: 0.25,
                cmp_int: 0.6,
                cmp_float: 1.7,
                soft_cmp: 30.0,
                branch: 0.9,
                ret: 1.0,
                block_nodes: 8,
                block_miss: 3.0,
                cags_node_overhead: 0.9,
                c_call_overhead: 12.0,
                asm_call_overhead: 30.0,
                asm_per_node_factor: 0.68,
            },
            Machine::EmbeddedNoFpu => CostModel {
                load_word: 2.0,
                load_float: f64::INFINITY, // no FPU
                load_float_const: f64::INFINITY,
                mov_imm: 1.0,
                eor: 1.0,
                cmp_int: 1.0,
                cmp_float: f64::INFINITY,
                soft_cmp: 60.0,
                branch: 2.0,
                ret: 3.0,
                block_nodes: 2,
                block_miss: 8.0,
                cags_node_overhead: 1.0,
                c_call_overhead: 30.0,
                asm_call_overhead: 38.0,
                asm_per_node_factor: 0.85,
            },
        }
    }
}

/// Cycles charged per instruction kind, plus memory-hierarchy and
/// implementation-style parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Integer feature load (`ldrsw`).
    pub load_word: f64,
    /// Float feature load into an FP register.
    pub load_float: f64,
    /// Float constant load from data memory (literal pool).
    pub load_float_const: f64,
    /// `movz`/`movk` each.
    pub mov_imm: f64,
    /// Sign-flip XOR.
    pub eor: f64,
    /// Integer compare.
    pub cmp_int: f64,
    /// Float compare including FP-flag transfer overhead.
    pub cmp_float: f64,
    /// Software float comparison routine (call + body).
    pub soft_cmp: f64,
    /// Conditional or unconditional branch.
    pub branch: f64,
    /// Leaf return.
    pub ret: f64,
    /// Nodes per cache block for the CAGS penalty term.
    pub block_nodes: usize,
    /// Cycles per expected block transition (miss penalty amortized by
    /// hit rate).
    pub block_miss: f64,
    /// Extra cycles per visited node that CAGS's inserted jumps cost.
    pub cags_node_overhead: f64,
    /// Per-inference overhead of the C implementation (call frame,
    /// reinterpretation through memory).
    pub c_call_overhead: f64,
    /// Per-inference overhead of the direct assembly implementation
    /// (inline-asm barrier, no compiler optimization around it).
    pub asm_call_overhead: f64,
    /// Per-node cycle factor of the assembly implementation relative to
    /// C (explicit load/immediate control beats compiled code on deep
    /// trees).
    pub asm_per_node_factor: f64,
}

impl CostModel {
    /// Cycles for one program run's instruction counts (no memory or
    /// style terms — just the instruction stream).
    ///
    /// Zero counts contribute zero even for infinite-cost instructions
    /// (an FPU-less profile charges `inf` for float instructions, but a
    /// program that never executes one must not turn NaN).
    pub fn cycles_for(&self, stats: &ExecStats) -> f64 {
        fn term(count: u64, cost: f64) -> f64 {
            if count == 0 {
                0.0
            } else {
                count as f64 * cost
            }
        }
        term(stats.load_word, self.load_word)
            // 64-bit integer loads cost the same as 32-bit on all
            // modeled cores.
            + term(stats.load_dword, self.load_word)
            + term(stats.load_float, self.load_float)
            + term(stats.load_float_const, self.load_float_const)
            + term(stats.movz + stats.movk, self.mov_imm)
            + term(stats.eor, self.eor)
            + term(stats.cmp_int, self.cmp_int)
            + term(stats.cmp_float, self.cmp_float)
            + term(stats.soft_cmp, self.soft_cmp)
            + term(stats.branches + stats.jumps, self.branch)
            + term(stats.rets, self.ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_matches_table1() {
        assert_eq!(Machine::PAPER_SET.len(), 4);
        let (sys, cpu, ram, kernel) = Machine::X86Server.table1_row();
        assert_eq!(sys, "Gigabyte R182-Z92-00");
        assert!(cpu.contains("EPYC 7742"));
        assert!(ram.contains("256GB"));
        assert!(kernel.contains("x86_64"));
    }

    #[test]
    fn float_compare_path_always_costs_more() {
        // The core premise: per split node, the float sequence
        // (load_float + load_float_const + cmp_float) must cost more
        // than the FLInt sequence (load_word + 2*mov_imm + cmp_int +
        // occasionally eor) on every FPU machine.
        for m in Machine::PAPER_SET {
            let c = m.cost_model();
            let float_node = c.load_float + c.load_float_const + c.cmp_float;
            let flint_node = c.load_word + 2.0 * c.mov_imm + c.cmp_int + c.eor;
            assert!(
                float_node > flint_node,
                "{}: float {float_node} <= flint {flint_node}",
                m.name()
            );
        }
    }

    #[test]
    fn softfloat_dwarfs_both() {
        for m in [Machine::X86Server, Machine::EmbeddedNoFpu] {
            let c = m.cost_model();
            assert!(c.soft_cmp > 5.0 * c.cmp_int);
        }
    }

    #[test]
    fn embedded_profile_has_no_fpu() {
        assert!(!Machine::EmbeddedNoFpu.has_fpu());
        assert!(Machine::X86Server.has_fpu());
        let c = Machine::EmbeddedNoFpu.cost_model();
        assert!(c.cmp_float.is_infinite());
    }

    #[test]
    fn cycles_for_counts_everything() {
        let c = Machine::X86Server.cost_model();
        let stats = ExecStats {
            load_word: 1,
            movz: 1,
            movk: 1,
            cmp_int: 1,
            branches: 1,
            rets: 1,
            ..ExecStats::default()
        };
        let want = c.load_word + 2.0 * c.mov_imm + c.cmp_int + c.branch + c.ret;
        assert!((c.cycles_for(&stats) - want).abs() < 1e-12);
        assert_eq!(c.cycles_for(&ExecStats::default()), 0.0);
    }

    #[test]
    fn m1_has_cheap_misses() {
        // The anomaly driver: M1 miss penalty far below the servers'.
        let m1 = Machine::Armv8Desktop.cost_model();
        let xs = Machine::X86Server.cost_model();
        assert!(m1.block_miss < xs.block_miss / 3.0);
    }
}
