//! Property tests of the cost-model simulator: structural sanity that
//! must hold for any trained forest on any machine profile.

use flint_data::synth::SynthSpec;
use flint_data::Dataset;
use flint_forest::{ForestConfig, RandomForest};
use flint_sim::{simulate_forest, Machine, SimConfig};
use proptest::prelude::*;

fn setup(seed: u64, n_trees: usize, depth: usize) -> (Dataset, RandomForest) {
    let data = SynthSpec::new(120, 5, 3)
        .cluster_std(1.2)
        .negative_fraction(0.5)
        .seed(seed)
        .generate();
    let forest = RandomForest::fit(&data, &ForestConfig::grid(n_trees, depth)).expect("trains");
    (data, forest)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FLInt strictly beats naive on every paper machine for every
    /// trained forest — the paper's "almost all cases" strengthened to
    /// the cases our grid covers.
    #[test]
    fn flint_beats_naive_everywhere(seed in 0u64..200, depth in 2usize..10) {
        let (data, forest) = setup(seed, 4, depth);
        for machine in Machine::PAPER_SET {
            let naive = simulate_forest(machine, &forest, &data, &data, &SimConfig::naive())
                .expect("simulates");
            let flint = simulate_forest(machine, &forest, &data, &data, &SimConfig::flint())
                .expect("simulates");
            prop_assert!(flint.total_cycles() < naive.total_cycles(), "{}", machine.name());
            prop_assert!(flint.total_cycles().is_finite() && flint.total_cycles() > 0.0);
        }
    }

    /// Cycle counts scale with ensemble size: a forest with strictly
    /// more trees costs strictly more.
    #[test]
    fn cycles_grow_with_ensemble_size(seed in 0u64..200) {
        let (data, small) = setup(seed, 2, 6);
        let (_, large) = setup(seed, 8, 6);
        let m = Machine::X86Server;
        let a = simulate_forest(m, &small, &data, &data, &SimConfig::flint()).expect("simulates");
        let b = simulate_forest(m, &large, &data, &data, &SimConfig::flint()).expect("simulates");
        prop_assert!(b.total_cycles() > a.total_cycles());
        prop_assert!(b.stats.total() > a.stats.total());
    }

    /// Per-inference cost is invariant under duplicating the test set.
    #[test]
    fn per_inference_cost_is_size_invariant(seed in 0u64..200) {
        let (data, forest) = setup(seed, 3, 6);
        let doubled_indices: Vec<usize> =
            (0..data.n_samples()).chain(0..data.n_samples()).collect();
        let doubled = data.subset(&doubled_indices);
        let m = Machine::Armv8Server;
        let once = simulate_forest(m, &forest, &data, &data, &SimConfig::flint()).expect("simulates");
        let twice =
            simulate_forest(m, &forest, &data, &doubled, &SimConfig::flint()).expect("simulates");
        let (a, b) = (once.cycles_per_inference(), twice.cycles_per_inference());
        prop_assert!((a - b).abs() < 1e-6 * a.max(1.0), "{a} vs {b}");
    }

    /// The embedded profile rejects float configs and ranks
    /// softfloat > flint_c > nothing (both finite).
    #[test]
    fn embedded_ordering(seed in 0u64..200) {
        let (data, forest) = setup(seed, 3, 6);
        let m = Machine::EmbeddedNoFpu;
        prop_assert!(simulate_forest(m, &forest, &data, &data, &SimConfig::naive()).is_err());
        let soft = simulate_forest(m, &forest, &data, &data, &SimConfig::softfloat())
            .expect("simulates");
        let flint = simulate_forest(m, &forest, &data, &data, &SimConfig::flint())
            .expect("simulates");
        prop_assert!(soft.total_cycles() > flint.total_cycles());
        prop_assert!(flint.total_cycles().is_finite());
        prop_assert_eq!(soft.stats.cmp_float, 0);
        prop_assert_eq!(flint.stats.cmp_float, 0);
        prop_assert_eq!(flint.stats.soft_cmp, 0);
    }

    /// FLInt programs execute zero float instructions, naive programs
    /// zero integer compares — the instruction mixes are disjoint.
    #[test]
    fn instruction_mixes_are_disjoint(seed in 0u64..200) {
        let (data, forest) = setup(seed, 3, 5);
        let m = Machine::X86Desktop;
        let naive = simulate_forest(m, &forest, &data, &data, &SimConfig::naive()).expect("ok");
        let flint = simulate_forest(m, &forest, &data, &data, &SimConfig::flint()).expect("ok");
        prop_assert_eq!(naive.stats.cmp_int, 0);
        prop_assert_eq!(naive.stats.load_word, 0);
        prop_assert_eq!(flint.stats.cmp_float, 0);
        prop_assert_eq!(flint.stats.load_float, 0);
        prop_assert_eq!(flint.stats.load_float_const, 0);
        // Same number of node decisions either way.
        prop_assert_eq!(naive.stats.cmp_float, flint.stats.cmp_int);
    }
}
