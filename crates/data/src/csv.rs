//! Minimal CSV persistence for datasets (features followed by a label
//! column). Hand-rolled because no CSV crate is in the sanctioned
//! dependency set; the format is the plain comma-separated layout the
//! UCI repository distributes.

use crate::dataset::Dataset;
use std::io::{BufRead, BufWriter, Write};

/// Error reading a dataset from CSV.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReadCsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A field failed to parse as a number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending field text.
        field: String,
    },
    /// A row has a different number of columns than the first row.
    Ragged {
        /// 1-based line number.
        line: usize,
    },
    /// The file contains no data rows.
    Empty,
}

impl core::fmt::Display for ReadCsvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error reading csv: {e}"),
            Self::Parse { line, field } => {
                write!(f, "line {line}: cannot parse field {field:?} as a number")
            }
            Self::Ragged { line } => write!(f, "line {line}: inconsistent column count"),
            Self::Empty => write!(f, "csv contains no data rows"),
        }
    }
}

impl std::error::Error for ReadCsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ReadCsvError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Writes `dataset` as CSV: one row per sample, features then the
/// integer label, no header. Float features are written with enough
/// digits to round-trip exactly.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use flint_data::{csv, synth::SynthSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ds = SynthSpec::new(10, 3, 2).generate();
/// let mut buf = Vec::new();
/// csv::write_csv(&ds, &mut buf)?;
/// let back = csv::read_csv(&buf[..], 2)?;
/// assert_eq!(back.n_samples(), 10);
/// # Ok(())
/// # }
/// ```
pub fn write_csv<W: Write>(dataset: &Dataset, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for (row, label) in dataset.iter() {
        for v in row {
            // {:?} prints the shortest representation that round-trips.
            write!(w, "{v:?},")?;
        }
        writeln!(w, "{label}")?;
    }
    w.flush()
}

/// Reads a dataset from CSV produced by [`write_csv`] (or any
/// headerless numeric CSV whose last column is the class label).
///
/// `n_classes` declares the label universe (labels must be
/// `< n_classes`); pass the true class count of the data.
///
/// # Errors
///
/// [`ReadCsvError`] on I/O failure, unparsable fields, ragged rows, an
/// empty file, or out-of-range labels (reported as
/// [`ReadCsvError::Parse`] on the label field).
pub fn read_csv<R: BufRead>(reader: R, n_classes: usize) -> Result<Dataset, ReadCsvError> {
    let mut rows: Vec<(Vec<f32>, u32)> = Vec::new();
    let mut n_features = None;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        let nf = fields.len() - 1;
        match n_features {
            None => n_features = Some(nf),
            Some(want) if want != nf => return Err(ReadCsvError::Ragged { line: i + 1 }),
            _ => {}
        }
        let mut feats = Vec::with_capacity(nf);
        for field in &fields[..nf] {
            let v: f32 = field.trim().parse().map_err(|_| ReadCsvError::Parse {
                line: i + 1,
                field: (*field).to_owned(),
            })?;
            feats.push(v);
        }
        let label_text = fields[nf].trim();
        let label: u32 = label_text.parse().map_err(|_| ReadCsvError::Parse {
            line: i + 1,
            field: label_text.to_owned(),
        })?;
        if label as usize >= n_classes {
            return Err(ReadCsvError::Parse {
                line: i + 1,
                field: label_text.to_owned(),
            });
        }
        rows.push((feats, label));
    }
    let n_features = n_features.ok_or(ReadCsvError::Empty)?;
    Dataset::from_rows(n_features, n_classes, rows).map_err(|_| ReadCsvError::Empty)
    // unreachable: validated above
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthSpec;

    #[test]
    fn round_trip_exact_bits() {
        let ds = SynthSpec::new(50, 4, 3).seed(9).generate();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).expect("in-memory write");
        let back = read_csv(&buf[..], 3).expect("read back");
        assert_eq!(back.n_samples(), ds.n_samples());
        assert_eq!(back.n_features(), ds.n_features());
        for i in 0..ds.n_samples() {
            assert_eq!(back.label(i), ds.label(i));
            for (a, b) in back.sample(i).iter().zip(ds.sample(i)) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
            }
        }
    }

    #[test]
    fn parse_error_reports_line() {
        let text = "1.0,2.0,0\n1.0,oops,1\n";
        let err = read_csv(text.as_bytes(), 2).unwrap_err();
        match err {
            ReadCsvError::Parse { line, field } => {
                assert_eq!(line, 2);
                assert_eq!(field, "oops");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn ragged_rows_detected() {
        let text = "1.0,2.0,0\n1.0,1\n";
        assert!(matches!(
            read_csv(text.as_bytes(), 2).unwrap_err(),
            ReadCsvError::Ragged { line: 2 }
        ));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            read_csv("".as_bytes(), 2).unwrap_err(),
            ReadCsvError::Empty
        ));
        assert!(matches!(
            read_csv("\n\n".as_bytes(), 2).unwrap_err(),
            ReadCsvError::Empty
        ));
    }

    #[test]
    fn out_of_range_label_rejected() {
        let text = "1.0,5\n";
        assert!(matches!(
            read_csv(text.as_bytes(), 2).unwrap_err(),
            ReadCsvError::Parse { line: 1, .. }
        ));
    }

    #[test]
    fn whitespace_and_blank_lines_tolerated() {
        let text = " 1.5 , 2.5 , 1 \n\n -0.5 , 0.25 , 0 \n";
        let ds = read_csv(text.as_bytes(), 2).expect("parse");
        assert_eq!(ds.n_samples(), 2);
        assert_eq!(ds.sample(1), &[-0.5, 0.25]);
    }
}
