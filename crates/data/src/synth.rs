//! Deterministic synthetic classification data generators.
//!
//! Modeled on scikit-learn's `make_classification`: each class gets a
//! set of Gaussian cluster centroids in an *informative* subspace,
//! redundant features are linear combinations of informative ones, and
//! the remaining features are pure noise. All drawing is from a seeded
//! [`rand::rngs::StdRng`], so every dataset in the evaluation is exactly
//! reproducible.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the Gaussian-cluster classification generator.
///
/// # Examples
///
/// ```
/// use flint_data::synth::SynthSpec;
///
/// let ds = SynthSpec::new(200, 8, 3)
///     .informative(5)
///     .cluster_std(1.2)
///     .seed(42)
///     .generate();
/// assert_eq!(ds.n_samples(), 200);
/// assert_eq!(ds.n_features(), 8);
/// assert_eq!(ds.n_classes(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SynthSpec {
    n_samples: usize,
    n_features: usize,
    n_classes: usize,
    n_informative: usize,
    clusters_per_class: usize,
    cluster_std: f64,
    class_sep: f64,
    negative_fraction: f64,
    seed: u64,
    name: String,
}

impl SynthSpec {
    /// A generator for `n_samples` points with `n_features` features in
    /// `n_classes` classes. By default all features are informative,
    /// one cluster per class, unit cluster spread, class separation 2.0
    /// and seed 0.
    pub fn new(n_samples: usize, n_features: usize, n_classes: usize) -> Self {
        assert!(n_classes >= 2, "need at least two classes");
        assert!(n_features >= 1, "need at least one feature");
        Self {
            n_samples,
            n_features,
            n_classes,
            n_informative: n_features,
            clusters_per_class: 1,
            cluster_std: 1.0,
            class_sep: 2.0,
            negative_fraction: 0.5,
            seed: 0,
            name: String::from("synth"),
        }
    }

    /// Number of informative dimensions (clamped to `n_features`).
    #[must_use]
    pub fn informative(mut self, n: usize) -> Self {
        self.n_informative = n.clamp(1, self.n_features);
        self
    }

    /// Gaussian spread of each cluster.
    #[must_use]
    pub fn cluster_std(mut self, std: f64) -> Self {
        self.cluster_std = std;
        self
    }

    /// Distance scale between class centroids.
    #[must_use]
    pub fn class_sep(mut self, sep: f64) -> Self {
        self.class_sep = sep;
        self
    }

    /// Number of Gaussian clusters per class (multi-modal classes).
    #[must_use]
    pub fn clusters_per_class(mut self, k: usize) -> Self {
        self.clusters_per_class = k.max(1);
        self
    }

    /// Fraction of centroid coordinates drawn negative — controls how
    /// many *negative split values* trained trees will contain, which
    /// exercises FLInt's sign-flip path.
    #[must_use]
    pub fn negative_fraction(mut self, frac: f64) -> Self {
        self.negative_fraction = frac.clamp(0.0, 1.0);
        self
    }

    /// RNG seed (full determinism).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Dataset name recorded in reports.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Draws the dataset.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Centroids per (class, cluster) in the informative subspace.
        let n_centroids = self.n_classes * self.clusters_per_class;
        let mut centroids = Vec::with_capacity(n_centroids);
        for _ in 0..n_centroids {
            let c: Vec<f64> = (0..self.n_informative)
                .map(|_| {
                    let sign = if rng.gen_bool(self.negative_fraction) {
                        -1.0
                    } else {
                        1.0
                    };
                    sign * self.class_sep * (0.5 + rng.gen::<f64>())
                })
                .collect();
            centroids.push(c);
        }
        let mut features = Vec::with_capacity(self.n_samples * self.n_features);
        let mut labels = Vec::with_capacity(self.n_samples);
        for i in 0..self.n_samples {
            let class = (i % self.n_classes) as u32; // balanced classes
            let cluster = rng.gen_range(0..self.clusters_per_class);
            let centroid = &centroids[class as usize * self.clusters_per_class + cluster];
            let mut row = Vec::with_capacity(self.n_features);
            for d in 0..self.n_features {
                // Informative dimensions offset a centroid coordinate;
                // the rest are zero-mean unit-Gaussian noise.
                let value = match centroid.get(d) {
                    Some(c) => c + gaussian(&mut rng) * self.cluster_std,
                    None => gaussian(&mut rng),
                };
                row.push(value as f32);
            }
            features.extend_from_slice(&row);
            labels.push(class);
        }
        Dataset::from_flat(self.n_features, self.n_classes, features, labels)
            .expect("generator produces consistent buffers")
            .with_name(self.name.clone())
    }
}

/// A standard-normal draw via Box–Muller (avoids a distributions
/// dependency; `rand`'s core API only gives uniforms).
fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let r = (-2.0 * u1.ln()).sqrt();
            return r * (2.0 * core::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = SynthSpec::new(100, 4, 2).seed(7).generate();
        let b = SynthSpec::new(100, 4, 2).seed(7).generate();
        assert_eq!(a, b);
        let c = SynthSpec::new(100, 4, 2).seed(8).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn shapes_and_balance() {
        let ds = SynthSpec::new(99, 5, 3).generate();
        assert_eq!(ds.n_samples(), 99);
        assert_eq!(ds.n_features(), 5);
        assert_eq!(ds.n_classes(), 3);
        // Balanced: each class appears 33 times.
        for c in 0..3u32 {
            assert_eq!(ds.labels().iter().filter(|&&l| l == c).count(), 33);
        }
    }

    #[test]
    fn negative_fraction_zero_gives_positive_centroids() {
        // All-informative features centered at positive centroids: the
        // mean of every feature should be clearly positive.
        let ds = SynthSpec::new(500, 3, 2)
            .negative_fraction(0.0)
            .cluster_std(0.1)
            .generate();
        for d in 0..3 {
            let mean: f32 =
                (0..ds.n_samples()).map(|i| ds.sample(i)[d]).sum::<f32>() / ds.n_samples() as f32;
            assert!(mean > 0.0, "feature {d} mean {mean}");
        }
    }

    #[test]
    fn classes_are_separable_with_small_std() {
        // Tight clusters far apart: nearest-centroid classification on
        // the generated data should be near perfect; we check that the
        // per-class feature means differ.
        let ds = SynthSpec::new(300, 4, 2)
            .cluster_std(0.05)
            .seed(3)
            .generate();
        let mean_of = |class: u32, d: usize| -> f32 {
            let vals: Vec<f32> = (0..ds.n_samples())
                .filter(|&i| ds.label(i) == class)
                .map(|i| ds.sample(i)[d])
                .collect();
            vals.iter().sum::<f32>() / vals.len() as f32
        };
        let distinct = (0..4).any(|d| (mean_of(0, d) - mean_of(1, d)).abs() > 0.5);
        assert!(distinct, "class means should differ in some dimension");
    }

    #[test]
    fn informative_clamp() {
        let ds = SynthSpec::new(10, 3, 2).informative(100).generate();
        assert_eq!(ds.n_features(), 3);
    }
}
