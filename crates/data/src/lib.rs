//! # flint-data — dataset substrate for the FLInt reproduction
//!
//! The paper evaluates on five UCI datasets (EEG Eye State, Gas Sensor
//! Array Drift, MAGIC Gamma Telescope, Sensorless Drive Diagnosis, Wine
//! Quality). Those files cannot be redistributed, so this crate provides
//! deterministic synthetic stand-ins with the same feature/class shape
//! ([`uci`]), a general Gaussian-cluster generator ([`synth`]), the
//! paper's 75/25 train/test split ([`split`]) and CSV persistence
//! ([`csv`]) for users who do have the real files.
//!
//! For batch inference the crate additionally provides
//! [`matrix::FeatureMatrix`], a structure-of-arrays (column-major)
//! transpose of a [`Dataset`] with row-view conversions back
//! ([`matrix::FeatureMatrix::gather_row`] /
//! [`matrix::FeatureMatrix::gather_block`]) — the storage the
//! `flint-exec` batch engine blocks over.
//!
//! ```
//! use flint_data::{uci::{Scale, UciDataset}, split::train_test_split};
//!
//! let ds = UciDataset::Wine.generate(Scale::Tiny);
//! let split = train_test_split(&ds, 0.25, 0);
//! assert!(split.train.n_samples() > split.test.n_samples());
//! ```
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod csv;
pub mod dataset;
pub mod matrix;
pub mod split;
pub mod synth;
pub mod uci;

pub use dataset::{BuildDatasetError, Dataset};
pub use matrix::{FeatureMatrix, LANES};
pub use split::{train_test_split, TrainTestSplit};
