//! Synthetic stand-ins for the five UCI datasets of the paper's
//! evaluation (Section V-A).
//!
//! The paper trains on the EEG Eye State, Gas Sensor Array Drift, MAGIC
//! Gamma Telescope, Sensorless Drive Diagnosis and Wine Quality
//! datasets. Those files are not redistributable here, so each
//! generator below reproduces the *shape* that matters for FLInt's
//! claims: the real feature count, the real class count, float-valued
//! features with a mix of positive and negative values (so trained
//! trees contain both positive and negative split values and exercise
//! both FLInt code paths), and enough class structure that CART reaches
//! the same depth regimes the paper sweeps.
//!
//! Sample counts default to the real dataset sizes scaled by
//! [`Scale`]; tests use [`Scale::Tiny`], the benchmark harness
//! [`Scale::Full`].

use crate::dataset::Dataset;
use crate::synth::SynthSpec;

/// Dataset size multiplier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ~2 % of the real size — unit tests.
    Tiny,
    /// ~20 % of the real size — integration tests and quick sweeps.
    Small,
    /// The real dataset's sample count — benchmark runs.
    Full,
}

impl Scale {
    fn apply(self, full: usize) -> usize {
        match self {
            Scale::Tiny => (full / 50).max(60),
            Scale::Small => (full / 5).max(200),
            Scale::Full => full,
        }
    }
}

/// Identifier of one of the five evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UciDataset {
    /// EEG Eye State: 14 continuous EEG channels, 2 classes, 14 980 rows.
    Eye,
    /// Gas Sensor Array Drift: 128 sensor features, 6 gases, 13 910 rows.
    Gas,
    /// MAGIC Gamma Telescope: 10 image parameters, 2 classes, 19 020 rows.
    Magic,
    /// Sensorless Drive Diagnosis: 48 current-signal features, 11
    /// classes, 58 509 rows.
    Sensorless,
    /// Wine Quality (red+white): 11 physicochemical features, 7 quality
    /// levels, 6 497 rows.
    Wine,
}

impl UciDataset {
    /// All five datasets in the paper's order.
    pub const ALL: [UciDataset; 5] = [
        UciDataset::Eye,
        UciDataset::Gas,
        UciDataset::Magic,
        UciDataset::Sensorless,
        UciDataset::Wine,
    ];

    /// The short name used in the paper ("eye", "gas", …).
    pub fn name(self) -> &'static str {
        match self {
            UciDataset::Eye => "eye",
            UciDataset::Gas => "gas",
            UciDataset::Magic => "magic",
            UciDataset::Sensorless => "sensorless",
            UciDataset::Wine => "wine",
        }
    }

    /// `(n_features, n_classes, full_n_samples)` of the real dataset.
    pub fn shape(self) -> (usize, usize, usize) {
        match self {
            UciDataset::Eye => (14, 2, 14_980),
            UciDataset::Gas => (128, 6, 13_910),
            UciDataset::Magic => (10, 2, 19_020),
            UciDataset::Sensorless => (48, 11, 58_509),
            UciDataset::Wine => (11, 7, 6_497),
        }
    }

    /// Generates the synthetic stand-in at the given scale.
    ///
    /// Per-dataset generator parameters are tuned so that (a) trees
    /// trained on the data keep growing past depth 20 before running
    /// out of impurity (matching the paper's observation that deep
    /// sweeps saturate), and (b) a substantial fraction of split values
    /// comes out negative.
    ///
    /// # Examples
    ///
    /// ```
    /// use flint_data::uci::{Scale, UciDataset};
    ///
    /// let ds = UciDataset::Magic.generate(Scale::Tiny);
    /// assert_eq!(ds.n_features(), 10);
    /// assert_eq!(ds.n_classes(), 2);
    /// assert_eq!(ds.name(), "magic");
    /// ```
    pub fn generate(self, scale: Scale) -> Dataset {
        let (nf, nc, full) = self.shape();
        let n = scale.apply(full);
        let spec = match self {
            // EEG: highly overlapping temporal channels -> hard, deep trees.
            UciDataset::Eye => SynthSpec::new(n, nf, nc)
                .informative(nf)
                .clusters_per_class(4)
                .cluster_std(2.2)
                .class_sep(1.2)
                .negative_fraction(0.45)
                .seed(101),
            // Gas sensors: many correlated channels, moderate drift.
            UciDataset::Gas => SynthSpec::new(n, nf, nc)
                .informative(nf / 2)
                .clusters_per_class(2)
                .cluster_std(1.6)
                .class_sep(2.0)
                .negative_fraction(0.5)
                .seed(102),
            // MAGIC: 10 shower-image parameters, two overlapping classes.
            UciDataset::Magic => SynthSpec::new(n, nf, nc)
                .informative(nf)
                .clusters_per_class(3)
                .cluster_std(1.8)
                .class_sep(1.5)
                .negative_fraction(0.4)
                .seed(103),
            // Sensorless: 11 sharply separated fault classes.
            UciDataset::Sensorless => SynthSpec::new(n, nf, nc)
                .informative(nf / 2)
                .clusters_per_class(2)
                .cluster_std(1.2)
                .class_sep(2.4)
                .negative_fraction(0.55)
                .seed(104),
            // Wine: few features, 7 ordinal quality levels, heavy overlap
            // (the hardest dataset of the five, like the real one).
            UciDataset::Wine => SynthSpec::new(n, nf, nc)
                .informative(nf)
                .clusters_per_class(2)
                .cluster_std(1.9)
                .class_sep(1.8)
                .negative_fraction(0.35)
                .seed(105),
        };
        spec.name(self.name()).generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        for ds in UciDataset::ALL {
            let (nf, nc, _) = ds.shape();
            let d = ds.generate(Scale::Tiny);
            assert_eq!(d.n_features(), nf, "{}", ds.name());
            assert_eq!(d.n_classes(), nc, "{}", ds.name());
            assert_eq!(d.name(), ds.name());
        }
    }

    #[test]
    fn scales_are_ordered() {
        let (_, _, full) = UciDataset::Wine.shape();
        let tiny = Scale::Tiny.apply(full);
        let small = Scale::Small.apply(full);
        assert!(tiny < small && small < full);
        assert_eq!(Scale::Full.apply(full), full);
    }

    #[test]
    fn deterministic() {
        let a = UciDataset::Eye.generate(Scale::Tiny);
        let b = UciDataset::Eye.generate(Scale::Tiny);
        assert_eq!(a, b);
    }

    #[test]
    fn contains_negative_feature_values() {
        // FLInt's sign-flip path must be exercised by every dataset.
        for ds in UciDataset::ALL {
            let d = ds.generate(Scale::Tiny);
            let has_negative = d.features_flat().iter().any(|&v| v < 0.0);
            assert!(has_negative, "{} should contain negative values", ds.name());
        }
    }

    #[test]
    fn all_list_has_paper_order() {
        let names: Vec<&str> = UciDataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names, ["eye", "gas", "magic", "sensorless", "wine"]);
    }
}
