//! The in-memory dataset representation shared by the whole workspace.

/// A dense classification dataset: row-major `f32` feature matrix plus
/// one integer class label per row.
///
/// Features are `f32` throughout the reproduction because that is the
/// datatype the paper's evaluation uses (scikit-learn float split values
/// compiled to 32-bit immediates).
///
/// # Examples
///
/// ```
/// use flint_data::Dataset;
///
/// let ds = Dataset::from_rows(2, 2, vec![
///     (vec![0.0, 1.0], 0),
///     (vec![1.0, 0.0], 1),
/// ]).expect("consistent rows");
/// assert_eq!(ds.n_samples(), 2);
/// assert_eq!(ds.sample(1), &[1.0, 0.0]);
/// assert_eq!(ds.label(1), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    n_features: usize,
    n_classes: usize,
    features: Vec<f32>,
    labels: Vec<u32>,
    name: String,
}

/// Error constructing a [`Dataset`] from inconsistent parts.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildDatasetError {
    /// A row's feature count differs from `n_features`.
    RowLength {
        /// Index of the offending row.
        row: usize,
        /// Its actual length.
        got: usize,
        /// The expected length.
        want: usize,
    },
    /// A label is `>= n_classes`.
    LabelRange {
        /// Index of the offending row.
        row: usize,
        /// The out-of-range label.
        label: u32,
    },
    /// Feature and label buffer lengths are inconsistent.
    LengthMismatch,
}

impl core::fmt::Display for BuildDatasetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::RowLength { row, got, want } => {
                write!(f, "row {row} has {got} features, expected {want}")
            }
            Self::LabelRange { row, label } => {
                write!(f, "row {row} has out-of-range label {label}")
            }
            Self::LengthMismatch => write!(f, "feature and label buffers are inconsistent"),
        }
    }
}

impl std::error::Error for BuildDatasetError {}

impl Dataset {
    /// Builds a dataset from per-row `(features, label)` pairs.
    ///
    /// # Errors
    ///
    /// [`BuildDatasetError::RowLength`] if any row length differs from
    /// `n_features`; [`BuildDatasetError::LabelRange`] if any label is
    /// `>= n_classes`.
    pub fn from_rows(
        n_features: usize,
        n_classes: usize,
        rows: Vec<(Vec<f32>, u32)>,
    ) -> Result<Self, BuildDatasetError> {
        let mut features = Vec::with_capacity(rows.len() * n_features);
        let mut labels = Vec::with_capacity(rows.len());
        for (i, (row, label)) in rows.into_iter().enumerate() {
            if row.len() != n_features {
                return Err(BuildDatasetError::RowLength {
                    row: i,
                    got: row.len(),
                    want: n_features,
                });
            }
            if label as usize >= n_classes {
                return Err(BuildDatasetError::LabelRange { row: i, label });
            }
            features.extend_from_slice(&row);
            labels.push(label);
        }
        Ok(Self {
            n_features,
            n_classes,
            features,
            labels,
            name: String::new(),
        })
    }

    /// Builds a dataset from flat row-major storage.
    ///
    /// # Errors
    ///
    /// [`BuildDatasetError::LengthMismatch`] if `features.len()` is not
    /// `labels.len() * n_features`; [`BuildDatasetError::LabelRange`]
    /// for out-of-range labels.
    pub fn from_flat(
        n_features: usize,
        n_classes: usize,
        features: Vec<f32>,
        labels: Vec<u32>,
    ) -> Result<Self, BuildDatasetError> {
        if features.len() != labels.len() * n_features {
            return Err(BuildDatasetError::LengthMismatch);
        }
        if let Some((row, &label)) = labels
            .iter()
            .enumerate()
            .find(|(_, &l)| l as usize >= n_classes)
        {
            return Err(BuildDatasetError::LabelRange { row, label });
        }
        Ok(Self {
            n_features,
            n_classes,
            features,
            labels,
            name: String::new(),
        })
    }

    /// Attaches a human-readable name (dataset identifier in reports).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The dataset name ("" if unnamed).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples (rows).
    pub fn n_samples(&self) -> usize {
        self.labels.len()
    }

    /// Number of features (columns).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of distinct classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The feature row of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_samples()`.
    pub fn sample(&self, i: usize) -> &[f32] {
        &self.features[i * self.n_features..(i + 1) * self.n_features]
    }

    /// The label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_samples()`.
    pub fn label(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// The flat row-major feature buffer.
    pub fn features_flat(&self) -> &[f32] {
        &self.features
    }

    /// Iterator over `(features, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f32], u32)> + '_ {
        self.features
            .chunks_exact(self.n_features.max(1))
            .zip(self.labels.iter().copied())
    }

    /// A new dataset containing only the given sample indices (indices
    /// may repeat — used for bootstrap resampling).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Self {
        let mut features = Vec::with_capacity(indices.len() * self.n_features);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            features.extend_from_slice(self.sample(i));
            labels.push(self.labels[i]);
        }
        Self {
            n_features: self.n_features,
            n_classes: self.n_classes,
            features,
            labels,
            name: self.name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::from_rows(
            2,
            3,
            vec![
                (vec![0.0, 1.0], 0),
                (vec![1.0, 0.0], 1),
                (vec![2.0, 2.0], 2),
            ],
        )
        .expect("valid")
    }

    #[test]
    fn accessors() {
        let ds = tiny().with_name("tiny");
        assert_eq!(ds.n_samples(), 3);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.n_classes(), 3);
        assert_eq!(ds.sample(2), &[2.0, 2.0]);
        assert_eq!(ds.label(0), 0);
        assert_eq!(ds.name(), "tiny");
        assert_eq!(ds.iter().count(), 3);
    }

    #[test]
    fn row_length_validation() {
        let err = Dataset::from_rows(2, 2, vec![(vec![1.0], 0)]).unwrap_err();
        assert_eq!(
            err,
            BuildDatasetError::RowLength {
                row: 0,
                got: 1,
                want: 2
            }
        );
    }

    #[test]
    fn label_range_validation() {
        let err = Dataset::from_rows(1, 2, vec![(vec![1.0], 5)]).unwrap_err();
        assert_eq!(err, BuildDatasetError::LabelRange { row: 0, label: 5 });
        let err = Dataset::from_flat(1, 2, vec![1.0], vec![7]).unwrap_err();
        assert!(matches!(err, BuildDatasetError::LabelRange { .. }));
    }

    #[test]
    fn flat_length_validation() {
        let err = Dataset::from_flat(2, 2, vec![1.0, 2.0, 3.0], vec![0]).unwrap_err();
        assert_eq!(err, BuildDatasetError::LengthMismatch);
    }

    #[test]
    fn subset_with_repeats() {
        let ds = tiny();
        let sub = ds.subset(&[2, 2, 0]);
        assert_eq!(sub.n_samples(), 3);
        assert_eq!(sub.sample(0), &[2.0, 2.0]);
        assert_eq!(sub.sample(1), &[2.0, 2.0]);
        assert_eq!(sub.label(2), 0);
    }

    #[test]
    fn error_display_is_informative() {
        let err = BuildDatasetError::RowLength {
            row: 3,
            got: 1,
            want: 2,
        };
        assert!(err.to_string().contains("row 3"));
    }
}
