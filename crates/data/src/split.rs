//! Train/test splitting (the paper uses a 75 %/25 % split).

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A train/test partition of a dataset.
#[derive(Debug, Clone)]
pub struct TrainTestSplit {
    /// The training portion.
    pub train: Dataset,
    /// The held-out test portion.
    pub test: Dataset,
}

/// Splits `dataset` into train and test portions with a seeded shuffle.
///
/// `test_fraction` is clamped to `[0, 1]`; the paper's setting is
/// `0.25`. The split is deterministic for a given `(dataset, fraction,
/// seed)` triple.
///
/// # Examples
///
/// ```
/// use flint_data::{synth::SynthSpec, split::train_test_split};
///
/// let ds = SynthSpec::new(100, 4, 2).generate();
/// let split = train_test_split(&ds, 0.25, 0);
/// assert_eq!(split.train.n_samples(), 75);
/// assert_eq!(split.test.n_samples(), 25);
/// ```
pub fn train_test_split(dataset: &Dataset, test_fraction: f64, seed: u64) -> TrainTestSplit {
    let frac = test_fraction.clamp(0.0, 1.0);
    let n = dataset.n_samples();
    let n_test = ((n as f64) * frac).round() as usize;
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let (test_idx, train_idx) = indices.split_at(n_test.min(n));
    TrainTestSplit {
        train: dataset.subset(train_idx),
        test: dataset.subset(test_idx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthSpec;

    #[test]
    fn paper_split_75_25() {
        let ds = SynthSpec::new(1000, 3, 2).generate();
        let s = train_test_split(&ds, 0.25, 42);
        assert_eq!(s.train.n_samples(), 750);
        assert_eq!(s.test.n_samples(), 250);
        assert_eq!(s.train.n_features(), 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = SynthSpec::new(100, 3, 2).generate();
        let a = train_test_split(&ds, 0.25, 7);
        let b = train_test_split(&ds, 0.25, 7);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        let c = train_test_split(&ds, 0.25, 8);
        assert_ne!(a.test, c.test);
    }

    #[test]
    fn partition_is_disjoint_and_complete() {
        let ds = SynthSpec::new(60, 2, 2).generate();
        let s = train_test_split(&ds, 0.5, 1);
        assert_eq!(s.train.n_samples() + s.test.n_samples(), 60);
        // Every original row appears exactly once across the two parts.
        let mut rows: Vec<Vec<u32>> = Vec::new();
        for part in [&s.train, &s.test] {
            for i in 0..part.n_samples() {
                rows.push(part.sample(i).iter().map(|f| f.to_bits()).collect());
            }
        }
        rows.sort();
        let mut orig: Vec<Vec<u32>> = (0..60)
            .map(|i| ds.sample(i).iter().map(|f| f.to_bits()).collect())
            .collect();
        orig.sort();
        assert_eq!(rows, orig);
    }

    #[test]
    fn extreme_fractions() {
        let ds = SynthSpec::new(10, 2, 2).generate();
        assert_eq!(train_test_split(&ds, 0.0, 0).test.n_samples(), 0);
        assert_eq!(train_test_split(&ds, 1.0, 0).train.n_samples(), 0);
        // Out-of-range fractions clamp.
        assert_eq!(train_test_split(&ds, 2.0, 0).train.n_samples(), 0);
    }
}
