//! Structure-of-arrays feature storage for batch inference.
//!
//! [`Dataset`] stores samples row-major (all features of sample 0, then
//! sample 1, …), which is the natural layout for one-sample-at-a-time
//! traversal. Batch engines want the transpose: a **structure of
//! arrays** where each feature's values are contiguous across samples,
//! so that gathering a *block* of samples touches one dense column
//! slice per feature instead of striding across the whole row buffer,
//! and per-feature scans (QuickScorer-style) stream linearly.
//!
//! [`FeatureMatrix`] is that transpose, plus the row-view conversions
//! back: [`FeatureMatrix::gather_row`] materializes one sample into a
//! caller-owned buffer, and [`FeatureMatrix::gather_block`] transposes
//! a contiguous sample range into a row-major scratch block (the shape
//! the flat-array tree backends consume).

use crate::dataset::Dataset;
use flint_core::half::Half;

/// The lane width of the workspace's SIMD gather layout: every
/// lane-group spans this many samples, and
/// [`FeatureMatrix::gather_lanes`] pads ragged tails up to it. Eight
/// `f32` lanes fill one 256-bit vector register, the widest unit the
/// lane engines target.
pub const LANES: usize = 8;

/// A dense `f32` feature matrix in column-major (structure-of-arrays)
/// order: `values[f * n_samples + i]` is feature `f` of sample `i`.
///
/// # Examples
///
/// ```
/// use flint_data::{Dataset, FeatureMatrix};
///
/// let ds = Dataset::from_rows(2, 2, vec![
///     (vec![1.0, 2.0], 0),
///     (vec![3.0, 4.0], 1),
/// ]).expect("consistent rows");
/// let m = FeatureMatrix::from_dataset(&ds);
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.column(1), &[2.0, 4.0]);
/// let mut row = [0.0; 2];
/// m.gather_row(1, &mut row);
/// assert_eq!(row, [3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    n_samples: usize,
    n_features: usize,
    /// Column-major storage, `n_features * n_samples` long.
    values: Vec<f32>,
}

impl FeatureMatrix {
    /// Transposes `dataset` into structure-of-arrays order.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        Self::from_row_major(
            dataset.n_samples(),
            dataset.n_features(),
            dataset.features_flat(),
        )
    }

    /// Builds a matrix from flat row-major values (`rows[i * n_features
    /// + f]` is feature `f` of sample `i`).
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != n_samples * n_features`.
    pub fn from_row_major(n_samples: usize, n_features: usize, rows: &[f32]) -> Self {
        assert_eq!(
            rows.len(),
            n_samples * n_features,
            "row-major buffer length"
        );
        let mut values = vec![0.0f32; rows.len()];
        for f in 0..n_features {
            let column = &mut values[f * n_samples..(f + 1) * n_samples];
            for (i, slot) in column.iter_mut().enumerate() {
                *slot = rows[i * n_features + f];
            }
        }
        Self {
            n_samples,
            n_features,
            values,
        }
    }

    /// Number of samples (rows of the logical matrix).
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Number of features (columns of the logical matrix).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Feature `f` of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn get(&self, sample: usize, feature: usize) -> f32 {
        assert!(sample < self.n_samples, "sample index");
        self.values[feature * self.n_samples + sample]
    }

    /// The contiguous value slice of one feature across all samples.
    ///
    /// # Panics
    ///
    /// Panics if `feature >= n_features()`.
    #[inline]
    pub fn column(&self, feature: usize) -> &[f32] {
        &self.values[feature * self.n_samples..(feature + 1) * self.n_samples]
    }

    /// Copies sample `i` into `row` (row-view conversion).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != n_features()` or `i` is out of range.
    pub fn gather_row(&self, sample: usize, row: &mut [f32]) {
        assert_eq!(row.len(), self.n_features, "row buffer length");
        for (f, slot) in row.iter_mut().enumerate() {
            *slot = self.column(f)[sample];
        }
    }

    /// Transposes samples `start..start + block_len` into `block`, a
    /// row-major scratch of `block_len * n_features()` values, so each
    /// sample of the block is a contiguous row slice.
    ///
    /// The copy walks column-by-column: each feature's source values
    /// are contiguous, which is the access pattern this layout exists
    /// for.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds `n_samples()` or `block` is not
    /// `block_len * n_features()` long.
    pub fn gather_block(&self, start: usize, block_len: usize, block: &mut [f32]) {
        assert!(start + block_len <= self.n_samples, "block range");
        assert_eq!(
            block.len(),
            block_len * self.n_features,
            "block buffer length"
        );
        for f in 0..self.n_features {
            let column = &self.column(f)[start..start + block_len];
            for (k, &v) in column.iter().enumerate() {
                block[k * self.n_features + f] = v;
            }
        }
    }

    /// Gathers one lane-group — up to [`LANES`] consecutive samples
    /// starting at `start` — into `group`, a feature-major slab of
    /// `n_features() * LANES` values where `group[f * LANES + j]` is
    /// feature `f` of sample `start + j`.
    ///
    /// Ragged tails are **zero-padded**: when fewer than [`LANES`]
    /// samples remain, the trailing lanes of every feature read `0.0`
    /// instead of forcing the consumer to branch per lane. Each
    /// feature's lanes are copied from one contiguous column slice, and
    /// the slab layout keeps every group lane-aligned (a multiple of
    /// the [`LANES`] stride), which is what a vector load wants.
    ///
    /// # Panics
    ///
    /// Panics if `start >= n_samples()` or `group` is not
    /// `n_features() * LANES` long.
    pub fn gather_lanes(&self, start: usize, group: &mut [f32]) {
        assert!(start < self.n_samples, "lane gather start");
        assert_eq!(group.len(), self.n_features * LANES, "lane buffer length");
        let live = LANES.min(self.n_samples - start);
        for f in 0..self.n_features {
            let src = &self.column(f)[start..start + live];
            let dst = &mut group[f * LANES..(f + 1) * LANES];
            dst[..live].copy_from_slice(src);
            dst[live..].fill(0.0);
        }
    }

    /// The half-precision variant of [`FeatureMatrix::gather_lanes`]:
    /// the same feature-major, zero-padded slab layout, but every lane
    /// holds the sample's value converted **once** to binary16
    /// ([`Half::from_f32`], round-to-nearest-even — a monotone
    /// mapping) and stored as its raw bit pattern. The f16 lane
    /// engines walk these slabs at half the bytes per gather, and the
    /// scalar f16 reference walk applies the identical per-value
    /// conversion, so quantization happens in exactly one place.
    ///
    /// Pad lanes hold `0x0000` (binary16 `+0.0`), mirroring the `0.0`
    /// pad of the f32 slabs.
    ///
    /// # Panics
    ///
    /// Panics if `start >= n_samples()` or `group` is not
    /// `n_features() * LANES` long.
    pub fn gather_lanes_f16(&self, start: usize, group: &mut [u16]) {
        assert!(start < self.n_samples, "lane gather start");
        assert_eq!(group.len(), self.n_features * LANES, "lane buffer length");
        let live = LANES.min(self.n_samples - start);
        for f in 0..self.n_features {
            let src = &self.column(f)[start..start + live];
            let dst = &mut group[f * LANES..(f + 1) * LANES];
            for (slot, &v) in dst[..live].iter_mut().zip(src) {
                *slot = Half::from_f32(v).to_bits();
            }
            dst[live..].fill(Half::ZERO.to_bits());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        Dataset::from_rows(
            3,
            2,
            vec![
                (vec![1.0, 2.0, 3.0], 0),
                (vec![4.0, 5.0, 6.0], 1),
                (vec![7.0, 8.0, 9.0], 0),
                (vec![10.0, 11.0, 12.0], 1),
            ],
        )
        .expect("valid")
    }

    #[test]
    fn transpose_round_trips() {
        let ds = dataset();
        let m = FeatureMatrix::from_dataset(&ds);
        assert_eq!(m.n_samples(), 4);
        assert_eq!(m.n_features(), 3);
        let mut row = vec![0.0; 3];
        for i in 0..ds.n_samples() {
            m.gather_row(i, &mut row);
            assert_eq!(&row[..], ds.sample(i), "sample {i}");
            for f in 0..3 {
                assert_eq!(m.get(i, f), ds.sample(i)[f]);
            }
        }
    }

    #[test]
    fn columns_are_contiguous_per_feature() {
        let m = FeatureMatrix::from_dataset(&dataset());
        assert_eq!(m.column(0), &[1.0, 4.0, 7.0, 10.0]);
        assert_eq!(m.column(2), &[3.0, 6.0, 9.0, 12.0]);
    }

    #[test]
    fn gather_block_is_row_major() {
        let ds = dataset();
        let m = FeatureMatrix::from_dataset(&ds);
        let mut block = vec![0.0; 2 * 3];
        m.gather_block(1, 2, &mut block);
        assert_eq!(&block[0..3], ds.sample(1));
        assert_eq!(&block[3..6], ds.sample(2));
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = FeatureMatrix::from_row_major(0, 3, &[]);
        assert_eq!(m.n_samples(), 0);
        assert_eq!(m.column(2), &[] as &[f32]);
        m.gather_block(0, 0, &mut []);
    }

    #[test]
    #[should_panic(expected = "row-major buffer length")]
    fn length_mismatch_panics() {
        let _ = FeatureMatrix::from_row_major(2, 3, &[0.0; 5]);
    }

    #[test]
    fn gather_lanes_is_feature_major() {
        let ds = dataset();
        let m = FeatureMatrix::from_dataset(&ds);
        let mut group = vec![f32::NAN; 3 * LANES];
        m.gather_lanes(0, &mut group);
        // 4 live samples, 4 padded lanes per feature.
        assert_eq!(&group[0..4], &[1.0, 4.0, 7.0, 10.0]); // feature 0
        assert_eq!(&group[4..8], &[0.0; 4]);
        assert_eq!(&group[LANES..LANES + 4], &[2.0, 5.0, 8.0, 11.0]);
        assert_eq!(&group[2 * LANES..2 * LANES + 4], &[3.0, 6.0, 9.0, 12.0]);
        assert_eq!(&group[2 * LANES + 4..], &[0.0; 4]);
    }

    #[test]
    fn gather_lanes_tail_is_zero_padded_at_every_offset() {
        let ds = dataset();
        let m = FeatureMatrix::from_dataset(&ds);
        for start in 0..ds.n_samples() {
            let live = LANES.min(ds.n_samples() - start);
            let mut group = vec![f32::NAN; 3 * LANES];
            m.gather_lanes(start, &mut group);
            for f in 0..3 {
                for j in 0..LANES {
                    let want = if j < live { m.get(start + j, f) } else { 0.0 };
                    assert_eq!(
                        group[f * LANES + j].to_bits(),
                        want.to_bits(),
                        "start {start} feature {f} lane {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn gather_lanes_f16_quantizes_and_pads() {
        let ds = dataset();
        let m = FeatureMatrix::from_dataset(&ds);
        for start in 0..ds.n_samples() {
            let live = LANES.min(ds.n_samples() - start);
            let mut group = vec![u16::MAX; 3 * LANES];
            m.gather_lanes_f16(start, &mut group);
            for f in 0..3 {
                for j in 0..LANES {
                    let want = if j < live {
                        Half::from_f32(m.get(start + j, f)).to_bits()
                    } else {
                        0
                    };
                    assert_eq!(
                        group[f * LANES + j],
                        want,
                        "start {start} feature {f} lane {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn gather_lanes_f16_keeps_special_values() {
        let specials = [0.0f32, -0.0, f32::INFINITY, f32::NEG_INFINITY, 65504.0];
        let rows: Vec<(Vec<f32>, u32)> = specials.iter().map(|&v| (vec![v], 0)).collect();
        let ds = Dataset::from_rows(1, 1, rows).expect("valid");
        let m = FeatureMatrix::from_dataset(&ds);
        let mut group = vec![0u16; LANES];
        m.gather_lanes_f16(0, &mut group);
        assert_eq!(group[0], Half::ZERO.to_bits());
        assert_eq!(group[1], Half::NEG_ZERO.to_bits());
        assert_eq!(group[2], Half::INFINITY.to_bits());
        assert_eq!(group[3], Half::NEG_INFINITY.to_bits());
        assert_eq!(group[4], Half::MAX.to_bits());
    }

    #[test]
    #[should_panic(expected = "lane gather start")]
    fn gather_lanes_past_the_end_panics() {
        let m = FeatureMatrix::from_dataset(&dataset());
        let mut group = vec![0.0; 3 * LANES];
        m.gather_lanes(4, &mut group);
    }

    #[test]
    #[should_panic(expected = "lane buffer length")]
    fn gather_lanes_wrong_buffer_panics() {
        let m = FeatureMatrix::from_dataset(&dataset());
        m.gather_lanes(0, &mut [0.0; 7]);
    }

    #[test]
    fn bit_patterns_survive_transpose() {
        let specials = [
            0.0f32,
            -0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            1e-40,
            -1e-40,
        ];
        let rows: Vec<(Vec<f32>, u32)> = specials.iter().map(|&v| (vec![v, -v], 0)).collect();
        let ds = Dataset::from_rows(2, 1, rows).expect("valid");
        let m = FeatureMatrix::from_dataset(&ds);
        for i in 0..ds.n_samples() {
            for f in 0..2 {
                assert_eq!(m.get(i, f).to_bits(), ds.sample(i)[f].to_bits());
            }
        }
    }
}
