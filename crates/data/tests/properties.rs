//! Property-based tests for the dataset substrate.

use flint_data::{csv, synth::SynthSpec, train_test_split, Dataset};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    any::<u32>()
        .prop_map(f32::from_bits)
        .prop_filter("finite", |v| v.is_finite())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CSV round-trips arbitrary finite bit patterns exactly, including
    /// signed zeros and denormals.
    #[test]
    fn csv_round_trips_bit_exactly(
        rows in proptest::collection::vec(
            (proptest::collection::vec(finite_f32(), 3), 0u32..4),
            1..30,
        )
    ) {
        let ds = Dataset::from_rows(3, 4, rows).expect("consistent");
        let mut buf = Vec::new();
        csv::write_csv(&ds, &mut buf).expect("write");
        let back = csv::read_csv(&buf[..], 4).expect("read");
        prop_assert_eq!(back.n_samples(), ds.n_samples());
        for i in 0..ds.n_samples() {
            prop_assert_eq!(back.label(i), ds.label(i));
            for (a, b) in back.sample(i).iter().zip(ds.sample(i)) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Splits partition: sizes add up, no sample lost or duplicated,
    /// for every fraction and seed.
    #[test]
    fn split_partitions(
        n in 1usize..200,
        frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let ds = SynthSpec::new(n, 2, 2).seed(seed).generate();
        let s = train_test_split(&ds, frac, seed);
        prop_assert_eq!(s.train.n_samples() + s.test.n_samples(), n);
        let expected_test = ((n as f64) * frac).round() as usize;
        prop_assert_eq!(s.test.n_samples(), expected_test.min(n));
    }

    /// Generators are pure functions of their spec.
    #[test]
    fn generator_determinism(seed in any::<u64>(), n in 10usize..100) {
        let a = SynthSpec::new(n, 3, 2).seed(seed).generate();
        let b = SynthSpec::new(n, 3, 2).seed(seed).generate();
        prop_assert_eq!(a, b);
    }

    /// Generated data never contains NaN or infinities (training and
    /// FLInt preparation both require this).
    #[test]
    fn generated_data_is_finite(seed in any::<u64>()) {
        let ds = SynthSpec::new(80, 4, 3).cluster_std(3.0).seed(seed).generate();
        prop_assert!(ds.features_flat().iter().all(|v| v.is_finite()));
    }

    /// Subset with arbitrary (possibly repeating) indices preserves
    /// rows positionally.
    #[test]
    fn subset_preserves_rows(
        seed in any::<u64>(),
        indices in proptest::collection::vec(0usize..50, 1..80),
    ) {
        let ds = SynthSpec::new(50, 3, 2).seed(seed).generate();
        let sub = ds.subset(&indices);
        prop_assert_eq!(sub.n_samples(), indices.len());
        for (k, &i) in indices.iter().enumerate() {
            prop_assert_eq!(sub.sample(k), ds.sample(i));
            prop_assert_eq!(sub.label(k), ds.label(i));
        }
    }
}
