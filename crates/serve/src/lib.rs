//! # flint-serve — the micro-batching inference server
//!
//! The paper's integer-arithmetic forests exist to make inference cheap
//! at the edge and at scale; this crate is the serving layer that turns
//! **single-sample requests** into the **batched [`FeatureMatrix`]
//! blocks** where the blocked / QuickScorer / VM engines actually earn
//! their throughput. Its only coupling to the rest of the workspace is
//! the engine registry seam: it takes a `Box<dyn `[`Predictor`]`>` and
//! serves it.
//!
//! [`FeatureMatrix`]: flint_data::FeatureMatrix
//! [`Predictor`]: flint_exec::Predictor
//!
//! Layers, bottom up:
//!
//! * [`batcher`] — [`Batcher`]: a collector thread coalesces queued
//!   rows under a max-batch / max-linger policy (bounded queue,
//!   backpressure, graceful shutdown-with-drain), a worker pool scores
//!   closed batches through the shared engine, and per-sample results
//!   fan back to their callers over oneshot channels;
//! * [`metrics`] — [`ServeMetrics`]: request/batch counters, mean
//!   batch fill and a p50/p99 latency reservoir, snapshotted by the
//!   `stats` command;
//! * [`protocol`] — the newline-delimited request/response format
//!   (bare CSV rows or `{"features":[...]}` lines in, one JSON object
//!   per line out), including [`ProtocolMachine`], the sans-io framing
//!   state machine every front end drives — chunk boundaries can never
//!   change the response stream;
//! * [`server`] — [`Server`], the thread-per-connection TCP front end
//!   (`--front-end threads`), [`serve_lines`] for stdin/stdout serving,
//!   and the [`FrontEnd`] selector;
//! * [`event_loop`] — [`EpollServer`], the readiness event-loop front
//!   end (`--front-end epoll`, the default on Linux): one thread, an
//!   epoll poller from the vendored [`epoll`] shim, non-blocking
//!   batcher submission with ordered per-connection response slots,
//!   and explicit admission control ([`EventLoopConfig`]) that sheds
//!   overload with `busy` responses instead of queueing it invisibly.
//!
//! Everything is plain `std`: no async runtime, no serde — the crate
//! works in the vendored-offline workspace and anywhere the rest of
//! the toolchain builds. All `unsafe` lives behind the vendored
//! `epoll` crate's safe API.
//!
//! ```
//! use flint_data::synth::SynthSpec;
//! use flint_exec::{EngineBuilder, EngineKind};
//! use flint_forest::{ForestConfig, RandomForest};
//! use flint_serve::{BatchPolicy, Batcher};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = SynthSpec::new(120, 4, 3).generate();
//! let forest = RandomForest::fit(&data, &ForestConfig::grid(4, 6))?;
//! let engine = EngineBuilder::new(&forest)
//!     .build(EngineKind::parse("flint-blocked").expect("registered"))?;
//!
//! let batcher = Batcher::start(engine, BatchPolicy::default().workers(2));
//! let handle = batcher.handle();
//! let served = handle.predict(data.sample(0))?.class;
//! assert_eq!(served, forest.predict_majority(data.sample(0)));
//! batcher.shutdown();
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod batcher;
pub mod event_loop;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use batcher::{BatchHandle, BatchPolicy, Batcher, Prediction, ServeError, VotesReply};
pub use event_loop::{Conn, EpollServer, EventLoopConfig};
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use protocol::{
    parse_request, render_busy, render_error, render_prediction, render_votes, FramedLine,
    LineMachine, ParseRequestError, ProtocolMachine, Request, WireEvent, MAX_LINE_BYTES,
};
pub use server::{serve_lines, FrontEnd, ParseFrontEndError, Server};
