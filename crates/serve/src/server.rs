//! The blocking serving front ends: a thread-per-connection TCP line
//! server and a stdin/stdout loop, both speaking the
//! [`protocol`](crate::protocol) over a shared [`Batcher`].
//!
//! Built on `std::net` and `std::thread` only: one thread per
//! connection, each blocking in [`BatchHandle::predict`] while the
//! micro-batcher coalesces rows from every live connection into shared
//! blocks. A `shutdown` request from any connection stops the accept
//! loop, drains the batcher and joins every thread. Line framing is
//! the same sans-io [`ProtocolMachine`] the epoll front end drives, so
//! the two front ends cannot diverge at the protocol layer — this one
//! stays available behind `--front-end threads` as the A/B baseline
//! for the [`event_loop`](crate::event_loop) front end, which is the
//! right shape for large fleets of mostly-idle connections.

use crate::batcher::{BatchHandle, BatchPolicy, Batcher};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::protocol::{
    render_error, render_prediction, render_votes, ProtocolMachine, Request, WireEvent,
};
use flint_exec::Predictor;
use std::io::{BufRead, ErrorKind, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often an idle session re-checks the server-wide stop flag (the
/// read timeout on every connection).
const SESSION_POLL: Duration = Duration::from_millis(50);

/// Which TCP front end answers connections: the readiness event loop
/// (the default — one process, thousands of mostly-idle connections)
/// or the thread-per-connection baseline it is benchmarked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontEnd {
    /// Readiness event loop over the vendored epoll shim
    /// ([`EpollServer`](crate::EpollServer)); Linux only.
    #[default]
    Epoll,
    /// One blocking thread per connection ([`Server`]); every platform.
    Threads,
}

impl FrontEnd {
    /// Every selectable front end.
    pub const ALL: [FrontEnd; 2] = [FrontEnd::Epoll, FrontEnd::Threads];

    /// The flag spelling (`epoll`, `threads`).
    pub fn name(self) -> &'static str {
        match self {
            Self::Epoll => "epoll",
            Self::Threads => "threads",
        }
    }
}

impl core::fmt::Display for FrontEnd {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a front-end name did not parse; the message lists every valid
/// spelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFrontEndError(pub String);

impl core::fmt::Display for ParseFrontEndError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseFrontEndError {}

impl std::str::FromStr for FrontEnd {
    type Err = ParseFrontEndError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let text = s.trim();
        FrontEnd::ALL
            .into_iter()
            .find(|fe| text.eq_ignore_ascii_case(fe.name()))
            .ok_or_else(|| {
                let valid: Vec<&str> = FrontEnd::ALL.iter().map(|fe| fe.name()).collect();
                ParseFrontEndError(format!(
                    "unknown front end {text:?} (valid: {})",
                    valid.join(", ")
                ))
            })
    }
}

/// What a handled request asks the session to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Action {
    /// Keep the session open.
    Continue,
    /// Stop the whole server.
    Shutdown,
}

/// Answers one framing event **with blocking scoring**: the response
/// line to write back, plus whether the server should keep running.
/// Shared by the thread-per-connection TCP front end and the stdin
/// loop; the event loop answers the same events asynchronously but
/// renders through the same protocol functions.
pub(crate) fn respond_event(event: WireEvent, handle: &BatchHandle) -> (String, Action) {
    match event {
        WireEvent::Request(Request::Predict(row)) => match handle.predict(&row) {
            Ok(prediction) => (
                render_prediction(&prediction, handle.engine_name()),
                Action::Continue,
            ),
            Err(e) => (render_error(&e.to_string()), Action::Continue),
        },
        WireEvent::Request(Request::Votes(row)) => match handle.predict_votes(&row) {
            Ok(reply) => (
                render_votes(&reply.votes, handle.engine_name(), reply.batch_fill),
                Action::Continue,
            ),
            Err(e) => (render_error(&e.to_string()), Action::Continue),
        },
        WireEvent::Request(Request::Stats) => (handle.metrics().to_json(), Action::Continue),
        WireEvent::Request(Request::Health) => (
            "{\"ok\":true,\"role\":\"server\"}".to_owned(),
            Action::Continue,
        ),
        WireEvent::Request(
            Request::ShardMap | Request::ShardMapSet(_) | Request::Drain | Request::Undrain,
        ) => (
            render_error("router control verb; this is a single-node server"),
            Action::Continue,
        ),
        WireEvent::Request(Request::Shutdown) => {
            ("{\"ok\":\"shutting down\"}".to_owned(), Action::Shutdown)
        }
        WireEvent::Invalid(e) => (render_error(&e.to_string()), Action::Continue),
        WireEvent::Oversized { limit } => (
            render_error(&format!("request line exceeds {limit} bytes")),
            Action::Continue,
        ),
    }
}

/// A running TCP inference server bound to a local address.
///
/// ```no_run
/// use flint_serve::{BatchPolicy, Server};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let engine: Box<dyn flint_exec::Predictor> = unimplemented!();
/// let server = Server::bind("127.0.0.1:7878", engine, BatchPolicy::default())?;
/// println!("listening on {}", server.local_addr());
/// let final_stats = server.run()?; // until a client sends `shutdown`
/// println!("{}", final_stats.to_json());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    batcher: Batcher,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the micro-batcher over `engine`.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from binding the listener.
    pub fn bind(
        addr: &str,
        engine: Box<dyn Predictor>,
        policy: BatchPolicy,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            local_addr,
            batcher: Batcher::start(engine, policy),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The registry name of the engine answering requests.
    pub fn engine_name(&self) -> &'static str {
        self.batcher.engine_name()
    }

    /// Accepts connections until a client sends `shutdown`, then drains
    /// the batcher, joins every connection thread and returns the final
    /// metrics snapshot.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from the accept loop (per-connection I/O
    /// errors only end that connection).
    pub fn run(self) -> std::io::Result<MetricsSnapshot> {
        let stop = Arc::new(AtomicBool::new(false));
        let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let wake = wake_addr(self.local_addr);
        let metrics = self.batcher.metrics_shared();
        for stream in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            // Keep the session list proportional to *live* connections,
            // not to every connection ever accepted.
            sessions.retain(|session| !session.is_finished());
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let handle = self.batcher.handle();
            let stop = Arc::clone(&stop);
            let metrics = Arc::clone(&metrics);
            metrics.record_connect();
            sessions.push(std::thread::spawn(move || {
                let _ = serve_connection(stream, &handle, &stop, wake, &metrics);
                metrics.record_disconnect();
            }));
        }
        // Sessions poll the stop flag between reads, so even an idle
        // client that never disconnects cannot block this join.
        for session in sessions {
            let _ = session.join();
        }
        Ok(self.batcher.shutdown())
    }
}

/// The address a throwaway shutdown-wake connection dials: the bound
/// port on loopback when the listener is on a wildcard address
/// (connecting to `0.0.0.0` is not portable).
fn wake_addr(bound: SocketAddr) -> SocketAddr {
    let mut addr = bound;
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr.ip() {
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

/// One connection session: feed raw reads through the sans-io framing
/// machine, answer each request event in order.
fn serve_connection(
    mut stream: TcpStream,
    handle: &BatchHandle,
    stop: &AtomicBool,
    wake: SocketAddr,
    metrics: &ServeMetrics,
) -> std::io::Result<()> {
    // Request/response is strictly ping-pong per connection; without
    // NODELAY, Nagle holds every response back for the peer's delayed
    // ACK (~40 ms per round trip on loopback).
    stream.set_nodelay(true)?;
    // The read timeout doubles as the stop-flag poll interval, so an
    // idle client that never disconnects cannot pin the session thread
    // (and with it the server's shutdown join) forever.
    stream.set_read_timeout(Some(SESSION_POLL))?;
    let mut machine = ProtocolMachine::new();
    let mut buf = [0u8; 4096];
    let mut events: Vec<WireEvent> = Vec::new();
    loop {
        let eof = match stream.read(&mut buf) {
            Ok(0) => {
                // Client hung up; a final unterminated line is still a
                // request (`BufRead::lines` semantics).
                events.extend(machine.finish());
                true
            }
            Ok(n) => {
                machine.receive(&buf[..n], |event| events.push(event));
                metrics.record_read_buffer(machine.buffered());
                false
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                // The machine keeps any partial line; the next read
                // continues it.
                continue;
            }
            Err(e) => return Err(e),
        };
        for event in events.drain(..) {
            let (mut response, action) = respond_event(event, handle);
            response.push('\n');
            stream.write_all(response.as_bytes())?;
            stream.flush()?;
            if action == Action::Shutdown {
                stop.store(true, Ordering::SeqCst);
                // The accept loop is blocked in `accept`; a throwaway
                // loopback connection wakes it so it can observe the
                // flag.
                let _ = TcpStream::connect(wake);
                return Ok(());
            }
        }
        if eof {
            break;
        }
    }
    Ok(())
}

/// Serves the same line protocol over an arbitrary reader/writer pair —
/// in production, locked stdin/stdout (`flint serve --stdin`); in
/// tests, in-memory buffers. Returns on `shutdown` or end of input,
/// leaving the batcher running (callers own its lifecycle).
///
/// # Errors
///
/// Any [`std::io::Error`] from reading requests or writing responses.
pub fn serve_lines<R: BufRead, W: Write>(
    batcher: &Batcher,
    mut input: R,
    mut out: W,
) -> std::io::Result<()> {
    let handle = batcher.handle();
    let mut machine = ProtocolMachine::new();
    let mut events: Vec<WireEvent> = Vec::new();
    loop {
        let consumed = {
            let chunk = input.fill_buf()?;
            machine.receive(chunk, |event| events.push(event));
            chunk.len()
        };
        if consumed == 0 {
            // End of input: a final unterminated line still answers.
            events.extend(machine.finish());
        } else {
            input.consume(consumed);
        }
        for event in events.drain(..) {
            let (response, action) = respond_event(event, &handle);
            out.write_all(response.as_bytes())?;
            out.write_all(b"\n")?;
            out.flush()?;
            if action == Action::Shutdown {
                return Ok(());
            }
        }
        if consumed == 0 {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_data::synth::SynthSpec;
    use flint_exec::{EngineBuilder, EngineKind};
    use flint_forest::{ForestConfig, RandomForest};
    use std::io::BufReader;

    fn batcher() -> (Batcher, RandomForest, flint_data::Dataset) {
        let data = SynthSpec::new(90, 4, 3).seed(5).generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(4, 6)).expect("trainable");
        let engine = EngineBuilder::new(&forest)
            .build(EngineKind::parse("flint-blocked").expect("registered"))
            .expect("builds");
        (
            Batcher::start(engine, BatchPolicy::default().workers(2)),
            forest,
            data,
        )
    }

    #[test]
    fn serve_lines_round_trips_the_protocol() {
        let (batcher, forest, data) = batcher();
        let mut input = String::new();
        for i in 0..8 {
            let row: Vec<String> = data.sample(i).iter().map(f32::to_string).collect();
            input.push_str(&row.join(","));
            input.push('\n');
        }
        input.push_str("1.0,2.0\n"); // wrong arity: answered, not fatal
        input.push_str("not,a,row,either\n");
        input.push_str("stats\n");
        input.push_str("shutdown\n");
        input.push_str("0,0,0,0\n"); // after shutdown: never read

        let mut out = Vec::new();
        serve_lines(&batcher, input.as_bytes(), &mut out).expect("serves");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 12, "{text}");
        for (i, line) in lines[..8].iter().enumerate() {
            let expected = forest.predict_majority(data.sample(i));
            assert!(
                line.starts_with(&format!("{{\"class\":{expected},")),
                "line {i}: {line}"
            );
            assert!(line.contains("\"engine\":\"flint-blocked\""), "{line}");
        }
        assert!(lines[8].contains("expected 4 features, got 2"), "{text}");
        assert!(lines[9].contains("error"), "{text}");
        assert!(lines[10].contains("\"requests\":8"), "{text}");
        assert!(lines[11].contains("shutting down"), "{text}");
        let stats = batcher.shutdown();
        assert_eq!(stats.requests, 8);
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn tcp_server_scores_stats_and_shuts_down() {
        let (_, forest, data) = batcher();
        let engine = EngineBuilder::new(&forest)
            .build(EngineKind::parse("quickscorer").expect("registered"))
            .expect("builds");
        let server = Server::bind("127.0.0.1:0", engine, BatchPolicy::default().workers(2))
            .expect("binds loopback");
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || server.run().expect("serves"));

        let stream = TcpStream::connect(addr).expect("connects");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(stream.try_clone().expect("clones"));
        let mut writer = stream;
        let mut line = String::new();
        for i in 0..6 {
            let row: Vec<String> = data.sample(i).iter().map(f32::to_string).collect();
            writer
                .write_all(format!("{{\"features\":[{}]}}\n", row.join(",")).as_bytes())
                .expect("writes");
            line.clear();
            reader.read_line(&mut line).expect("reads");
            let expected = forest.predict_majority(data.sample(i));
            assert!(
                line.starts_with(&format!("{{\"class\":{expected},")),
                "sample {i}: {line}"
            );
        }
        writeln!(writer, "stats").expect("writes");
        line.clear();
        reader.read_line(&mut line).expect("reads");
        assert!(line.contains("\"requests\":6"), "{line}");
        writeln!(writer, "shutdown").expect("writes");
        line.clear();
        reader.read_line(&mut line).expect("reads");
        assert!(line.contains("shutting down"), "{line}");
        let stats = runner.join().expect("server thread");
        assert_eq!(stats.requests, 6);
    }

    #[test]
    fn idle_connections_do_not_block_shutdown() {
        let (batcher, forest, _) = batcher();
        drop(batcher);
        let engine = EngineBuilder::new(&forest)
            .build(EngineKind::parse("flint").expect("registered"))
            .expect("builds");
        let server =
            Server::bind("127.0.0.1:0", engine, BatchPolicy::default()).expect("binds loopback");
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || server.run().expect("serves"));

        // An idle client that connects, sends nothing and never hangs
        // up: its session thread must still exit once shutdown is
        // requested from another connection.
        let idle = TcpStream::connect(addr).expect("connects");
        let admin = TcpStream::connect(addr).expect("connects");
        admin.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(admin.try_clone().expect("clones"));
        let mut writer = admin;
        writer.write_all(b"shutdown\n").expect("writes");
        let mut line = String::new();
        reader.read_line(&mut line).expect("reads");
        assert!(line.contains("shutting down"), "{line}");

        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !runner.is_finished() {
            assert!(
                std::time::Instant::now() < deadline,
                "server did not shut down with an idle client attached"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        runner.join().expect("server thread");
        drop(idle);
    }
}
