//! The newline-delimited wire protocol spoken over TCP and stdin.
//!
//! One request per line, one response line per request:
//!
//! | request line | meaning |
//! |---|---|
//! | `0.5,1.25,-3.0,0.1` | score this feature row (bare CSV floats) |
//! | `{"features":[0.5,1.25,-3.0,0.1]}` | the same row, JSON-ish form |
//! | `stats` (or `/stats`) | return the serving metrics snapshot |
//! | `shutdown` (or `/shutdown`) | stop the server gracefully |
//!
//! Responses are one JSON object per line:
//! `{"class":2,"engine":"flint-blocked","batch":17}` for predictions,
//! the [`MetricsSnapshot::to_json`](crate::MetricsSnapshot::to_json)
//! object for `stats`, `{"ok":"shutting down"}` for `shutdown`, and
//! `{"error":"..."}` for anything malformed (the connection stays
//! usable — a bad line never kills the session or the queue).
//!
//! The JSON-ish form is parsed with a deliberately small hand-rolled
//! reader (no serde in the offline dependency set): the line must
//! contain a `"features"` key followed by one flat `[...]` array of
//! numbers.
//!
//! ## Sans-io framing
//!
//! [`ProtocolMachine`] is the transport-free half of the protocol: it
//! consumes raw byte slices in whatever chunks the transport produced
//! (one syscall's worth from a nonblocking socket, a whole stdin line,
//! a proptest-chosen split) and emits one [`WireEvent`] per request
//! line. It knows nothing about sockets, so the epoll event loop, the
//! thread-per-connection server, the stdin loop and the unit tests all
//! drive the *same* state machine — chunk boundaries can never change
//! the response stream (proven by the chunking property suite).

use crate::batcher::Prediction;

/// Longest accepted request line in bytes (terminator excluded); the
/// per-connection read-buffer cap. A line still unterminated past this
/// limit is rejected with one error response and discarded up to its
/// newline, so a hostile client cannot grow server memory without
/// bound.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Score one feature row.
    Predict(Vec<f32>),
    /// Report the serving metrics snapshot.
    Stats,
    /// Stop the server gracefully.
    Shutdown,
}

/// Why a request line could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRequestError(pub String);

impl core::fmt::Display for ParseRequestError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseRequestError {}

/// Parses one request line.
///
/// # Errors
///
/// [`ParseRequestError`] with a human-readable message on empty lines,
/// malformed numbers or a JSON-ish object without a `"features"` array.
pub fn parse_request(line: &str) -> Result<Request, ParseRequestError> {
    let text = line.trim();
    if text.is_empty() {
        return Err(ParseRequestError("empty request line".to_owned()));
    }
    if text.eq_ignore_ascii_case("stats") || text.eq_ignore_ascii_case("/stats") {
        return Ok(Request::Stats);
    }
    if text.eq_ignore_ascii_case("shutdown") || text.eq_ignore_ascii_case("/shutdown") {
        return Ok(Request::Shutdown);
    }
    let numbers = if text.starts_with('{') {
        features_array(text)?
    } else {
        text
    };
    let row = numbers
        .split(',')
        .map(|field| {
            let field = field.trim();
            field
                .parse::<f32>()
                .map_err(|_| ParseRequestError(format!("cannot parse feature {field:?}")))
        })
        .collect::<Result<Vec<f32>, _>>()?;
    Ok(Request::Predict(row))
}

/// Extracts the contents of the `[...]` array following a `"features"`
/// key in a JSON-ish object line.
fn features_array(text: &str) -> Result<&str, ParseRequestError> {
    let missing = || ParseRequestError("expected {\"features\":[...]}".to_owned());
    let after_key = text
        .split_once("\"features\"")
        .map(|(_, rest)| rest)
        .ok_or_else(missing)?;
    let (_, after_open) = after_key.split_once('[').ok_or_else(missing)?;
    let (inner, _) = after_open.split_once(']').ok_or_else(missing)?;
    Ok(inner)
}

/// One framing-level event from [`ProtocolMachine::receive`]: a parsed
/// request, or the response-worthy reason a line could not become one.
#[derive(Debug, Clone, PartialEq)]
pub enum WireEvent {
    /// A well-formed request line.
    Request(Request),
    /// A complete but malformed line (answered with
    /// [`render_error`], the connection stays usable).
    Invalid(ParseRequestError),
    /// A line that exceeded [`MAX_LINE_BYTES`] before its newline
    /// arrived; the rest of the line is being discarded.
    Oversized {
        /// The limit that was exceeded.
        limit: usize,
    },
}

/// The sans-io line-framing state machine: buffers partial lines across
/// arbitrarily-chunked reads, strips LF / CRLF terminators, enforces
/// the line-length cap, and hands every complete line to
/// [`parse_request`]. No transport knowledge: callers feed it bytes and
/// write out whatever responses its events call for.
#[derive(Debug)]
pub struct ProtocolMachine {
    /// Bytes of the current (still unterminated) line.
    buf: Vec<u8>,
    max_line: usize,
    /// An oversized line was already reported; swallow bytes until its
    /// newline.
    discarding: bool,
}

impl Default for ProtocolMachine {
    fn default() -> Self {
        Self::new()
    }
}

impl ProtocolMachine {
    /// A machine with the standard [`MAX_LINE_BYTES`] cap.
    pub fn new() -> Self {
        Self::with_max_line(MAX_LINE_BYTES)
    }

    /// A machine with a custom line-length cap (tests use small caps).
    pub fn with_max_line(max_line: usize) -> Self {
        Self {
            buf: Vec::new(),
            max_line: max_line.max(1),
            discarding: false,
        }
    }

    /// Bytes currently buffered for a partial line (the read-side
    /// memory this connection holds).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Consumes one transport chunk, emitting one [`WireEvent`] per
    /// complete line. Chunk boundaries are invisible: any split of the
    /// same byte stream yields the same event sequence.
    pub fn receive(&mut self, mut bytes: &[u8], mut sink: impl FnMut(WireEvent)) {
        while let Some(nl) = bytes.iter().position(|&b| b == b'\n') {
            let (head, rest) = bytes.split_at(nl);
            bytes = &rest[1..];
            if self.discarding {
                // The tail of a line already reported as oversized.
                self.discarding = false;
                continue;
            }
            if self.buf.len() + head.len() > self.max_line {
                // Same verdict the split-chunk path reaches below, so
                // chunking cannot change whether a line is accepted.
                self.buf.clear();
                sink(WireEvent::Oversized {
                    limit: self.max_line,
                });
            } else if self.buf.is_empty() {
                sink(line_event(head));
            } else {
                self.buf.extend_from_slice(head);
                let line = std::mem::take(&mut self.buf);
                sink(line_event(&line));
            }
        }
        if self.discarding {
            return;
        }
        if self.buf.len() + bytes.len() > self.max_line {
            self.buf.clear();
            self.discarding = true;
            sink(WireEvent::Oversized {
                limit: self.max_line,
            });
            return;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Flushes the final unterminated line at end of input, if any —
    /// the same treatment `BufRead::lines` gives a file without a
    /// trailing newline.
    pub fn finish(&mut self) -> Option<WireEvent> {
        self.discarding = false;
        if self.buf.is_empty() {
            return None;
        }
        let line = std::mem::take(&mut self.buf);
        Some(line_event(&line))
    }
}

/// Classifies one complete, terminator-stripped line.
fn line_event(line: &[u8]) -> WireEvent {
    // CRLF clients: the framing layer owns terminator stripping (the
    // parser's trim would also handle it, but a `\r` must never count
    // against field contents).
    let line = line.strip_suffix(b"\r").unwrap_or(line);
    let text = String::from_utf8_lossy(line);
    match parse_request(&text) {
        Ok(request) => WireEvent::Request(request),
        Err(e) => WireEvent::Invalid(e),
    }
}

/// Renders one prediction as a response line.
pub fn render_prediction(prediction: &Prediction, engine: &str) -> String {
    format!(
        "{{\"class\":{},\"engine\":\"{engine}\",\"batch\":{}}}",
        prediction.class, prediction.batch_fill
    )
}

/// Renders the admission-control shed response: the server is over one
/// of its load limits (`reason` names which) and this request was
/// deliberately not queued. Clients detect the `"busy"` key and back
/// off; the connection stays usable.
pub fn render_busy(reason: &str) -> String {
    let mut line = render_error(&format!("busy: {reason}"));
    line.insert_str(line.len() - 1, ",\"busy\":true");
    line
}

/// Renders an error as a single-line, well-formed JSON response:
/// quotes and backslashes are JSON-escaped, control characters are
/// flattened to spaces.
pub fn render_error(message: &str) -> String {
    let mut clean = String::with_capacity(message.len());
    for c in message.chars() {
        match c {
            '"' => clean.push_str("\\\""),
            '\\' => clean.push_str("\\\\"),
            c if c.is_control() => clean.push(' '),
            c => clean.push(c),
        }
    }
    format!("{{\"error\":\"{clean}\"}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_and_json_rows_parse_identically() {
        let csv = parse_request("0.5, 1.25,-3.0").expect("parses");
        let json = parse_request("{\"features\": [0.5, 1.25, -3.0]}").expect("parses");
        assert_eq!(csv, Request::Predict(vec![0.5, 1.25, -3.0]));
        assert_eq!(csv, json);
    }

    #[test]
    fn commands_parse_case_insensitively() {
        for line in ["stats", "STATS", "/stats"] {
            assert_eq!(parse_request(line).expect("parses"), Request::Stats);
        }
        for line in ["shutdown", "Shutdown", "/shutdown"] {
            assert_eq!(parse_request(line).expect("parses"), Request::Shutdown);
        }
    }

    #[test]
    fn malformed_lines_error_with_guidance() {
        assert!(parse_request("  ").unwrap_err().0.contains("empty"));
        assert!(parse_request("1.0,zap").unwrap_err().0.contains("zap"));
        assert!(parse_request("{\"rows\":[1]}")
            .unwrap_err()
            .0
            .contains("features"));
        assert!(parse_request("{\"features\":1}")
            .unwrap_err()
            .0
            .contains("features"));
    }

    #[test]
    fn responses_are_single_json_lines() {
        let line = render_prediction(
            &Prediction {
                class: 2,
                batch_fill: 17,
            },
            "flint-blocked",
        );
        assert_eq!(
            line,
            "{\"class\":2,\"engine\":\"flint-blocked\",\"batch\":17}"
        );
        let err = render_error("bad \"row\"\nsecond line");
        assert!(!err.contains('\n'), "{err}");
        assert_eq!(err, "{\"error\":\"bad \\\"row\\\" second line\"}");
        // The {:?} formatting of a malformed field can introduce
        // backslashes; they must come back JSON-escaped, not raw.
        let err = render_error("cannot parse feature \"a\\\"b\"");
        assert_eq!(
            err,
            "{\"error\":\"cannot parse feature \\\"a\\\\\\\"b\\\"\"}"
        );
    }

    #[test]
    fn busy_response_is_machine_detectable() {
        let line = render_busy("max-inflight 4 reached");
        assert_eq!(
            line,
            "{\"error\":\"busy: max-inflight 4 reached\",\"busy\":true}"
        );
    }

    /// Feeds the whole stream in one chunk and collects the events.
    fn events_of(machine: &mut ProtocolMachine, stream: &[u8]) -> Vec<WireEvent> {
        let mut events = Vec::new();
        machine.receive(stream, |e| events.push(e));
        if let Some(last) = machine.finish() {
            events.push(last);
        }
        events
    }

    #[test]
    fn machine_frames_lf_and_crlf_identically() {
        let mut lf = ProtocolMachine::new();
        let mut crlf = ProtocolMachine::new();
        let a = events_of(&mut lf, b"1,2,3\nstats\nshutdown\n");
        let b = events_of(&mut crlf, b"1,2,3\r\nstats\r\nshutdown\r\n");
        assert_eq!(a, b);
        assert_eq!(
            a,
            vec![
                WireEvent::Request(Request::Predict(vec![1.0, 2.0, 3.0])),
                WireEvent::Request(Request::Stats),
                WireEvent::Request(Request::Shutdown),
            ]
        );
    }

    #[test]
    fn machine_flushes_final_unterminated_line() {
        let mut machine = ProtocolMachine::new();
        let mut events = Vec::new();
        machine.receive(b"sta", |e| events.push(e));
        machine.receive(b"ts", |e| events.push(e));
        assert!(events.is_empty(), "{events:?}");
        assert_eq!(machine.buffered(), 5);
        assert_eq!(machine.finish(), Some(WireEvent::Request(Request::Stats)));
        assert_eq!(machine.finish(), None);
    }

    #[test]
    fn machine_rejects_oversized_lines_and_recovers() {
        let mut machine = ProtocolMachine::with_max_line(8);
        // One oversized line split across chunks, then a healthy one.
        let mut events = Vec::new();
        machine.receive(b"1,2,3,4,5,6", |e| events.push(e));
        machine.receive(b",7,8\nstats\n", |e| events.push(e));
        assert_eq!(
            events,
            vec![
                WireEvent::Oversized { limit: 8 },
                WireEvent::Request(Request::Stats),
            ]
        );
        // The same oversized line arriving terminator included in one
        // chunk gets the same verdict.
        let mut one_chunk = ProtocolMachine::with_max_line(8);
        let events = events_of(&mut one_chunk, b"1,2,3,4,5,6,7,8\nstats\n");
        assert_eq!(
            events,
            vec![
                WireEvent::Oversized { limit: 8 },
                WireEvent::Request(Request::Stats),
            ]
        );
    }

    #[test]
    fn machine_reports_malformed_lines_as_events() {
        let mut machine = ProtocolMachine::new();
        let events = events_of(&mut machine, b"\nnope\n");
        match &events[..] {
            [WireEvent::Invalid(empty), WireEvent::Invalid(bad)] => {
                assert!(empty.0.contains("empty"), "{empty}");
                assert!(bad.0.contains("nope"), "{bad}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
