//! The newline-delimited wire protocol spoken over TCP and stdin.
//!
//! One request per line, one response line per request:
//!
//! | request line | meaning |
//! |---|---|
//! | `0.5,1.25,-3.0,0.1` | score this feature row (bare CSV floats) |
//! | `{"features":[0.5,1.25,-3.0,0.1]}` | the same row, JSON-ish form |
//! | `stats` (or `/stats`) | return the serving metrics snapshot |
//! | `shutdown` (or `/shutdown`) | stop the server gracefully |
//!
//! Responses are one JSON object per line:
//! `{"class":2,"engine":"flint-blocked","batch":17}` for predictions,
//! the [`MetricsSnapshot::to_json`](crate::MetricsSnapshot::to_json)
//! object for `stats`, `{"ok":"shutting down"}` for `shutdown`, and
//! `{"error":"..."}` for anything malformed (the connection stays
//! usable — a bad line never kills the session or the queue).
//!
//! The JSON-ish form is parsed with a deliberately small hand-rolled
//! reader (no serde in the offline dependency set): the line must
//! contain a `"features"` key followed by one flat `[...]` array of
//! numbers.

use crate::batcher::Prediction;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Score one feature row.
    Predict(Vec<f32>),
    /// Report the serving metrics snapshot.
    Stats,
    /// Stop the server gracefully.
    Shutdown,
}

/// Why a request line could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRequestError(pub String);

impl core::fmt::Display for ParseRequestError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseRequestError {}

/// Parses one request line.
///
/// # Errors
///
/// [`ParseRequestError`] with a human-readable message on empty lines,
/// malformed numbers or a JSON-ish object without a `"features"` array.
pub fn parse_request(line: &str) -> Result<Request, ParseRequestError> {
    let text = line.trim();
    if text.is_empty() {
        return Err(ParseRequestError("empty request line".to_owned()));
    }
    if text.eq_ignore_ascii_case("stats") || text.eq_ignore_ascii_case("/stats") {
        return Ok(Request::Stats);
    }
    if text.eq_ignore_ascii_case("shutdown") || text.eq_ignore_ascii_case("/shutdown") {
        return Ok(Request::Shutdown);
    }
    let numbers = if text.starts_with('{') {
        features_array(text)?
    } else {
        text
    };
    let row = numbers
        .split(',')
        .map(|field| {
            let field = field.trim();
            field
                .parse::<f32>()
                .map_err(|_| ParseRequestError(format!("cannot parse feature {field:?}")))
        })
        .collect::<Result<Vec<f32>, _>>()?;
    Ok(Request::Predict(row))
}

/// Extracts the contents of the `[...]` array following a `"features"`
/// key in a JSON-ish object line.
fn features_array(text: &str) -> Result<&str, ParseRequestError> {
    let missing = || ParseRequestError("expected {\"features\":[...]}".to_owned());
    let after_key = text
        .split_once("\"features\"")
        .map(|(_, rest)| rest)
        .ok_or_else(missing)?;
    let (_, after_open) = after_key.split_once('[').ok_or_else(missing)?;
    let (inner, _) = after_open.split_once(']').ok_or_else(missing)?;
    Ok(inner)
}

/// Renders one prediction as a response line.
pub fn render_prediction(prediction: &Prediction, engine: &str) -> String {
    format!(
        "{{\"class\":{},\"engine\":\"{engine}\",\"batch\":{}}}",
        prediction.class, prediction.batch_fill
    )
}

/// Renders an error as a single-line, well-formed JSON response:
/// quotes and backslashes are JSON-escaped, control characters are
/// flattened to spaces.
pub fn render_error(message: &str) -> String {
    let mut clean = String::with_capacity(message.len());
    for c in message.chars() {
        match c {
            '"' => clean.push_str("\\\""),
            '\\' => clean.push_str("\\\\"),
            c if c.is_control() => clean.push(' '),
            c => clean.push(c),
        }
    }
    format!("{{\"error\":\"{clean}\"}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_and_json_rows_parse_identically() {
        let csv = parse_request("0.5, 1.25,-3.0").expect("parses");
        let json = parse_request("{\"features\": [0.5, 1.25, -3.0]}").expect("parses");
        assert_eq!(csv, Request::Predict(vec![0.5, 1.25, -3.0]));
        assert_eq!(csv, json);
    }

    #[test]
    fn commands_parse_case_insensitively() {
        for line in ["stats", "STATS", "/stats"] {
            assert_eq!(parse_request(line).expect("parses"), Request::Stats);
        }
        for line in ["shutdown", "Shutdown", "/shutdown"] {
            assert_eq!(parse_request(line).expect("parses"), Request::Shutdown);
        }
    }

    #[test]
    fn malformed_lines_error_with_guidance() {
        assert!(parse_request("  ").unwrap_err().0.contains("empty"));
        assert!(parse_request("1.0,zap").unwrap_err().0.contains("zap"));
        assert!(parse_request("{\"rows\":[1]}")
            .unwrap_err()
            .0
            .contains("features"));
        assert!(parse_request("{\"features\":1}")
            .unwrap_err()
            .0
            .contains("features"));
    }

    #[test]
    fn responses_are_single_json_lines() {
        let line = render_prediction(
            &Prediction {
                class: 2,
                batch_fill: 17,
            },
            "flint-blocked",
        );
        assert_eq!(
            line,
            "{\"class\":2,\"engine\":\"flint-blocked\",\"batch\":17}"
        );
        let err = render_error("bad \"row\"\nsecond line");
        assert!(!err.contains('\n'), "{err}");
        assert_eq!(err, "{\"error\":\"bad \\\"row\\\" second line\"}");
        // The {:?} formatting of a malformed field can introduce
        // backslashes; they must come back JSON-escaped, not raw.
        let err = render_error("cannot parse feature \"a\\\"b\"");
        assert_eq!(
            err,
            "{\"error\":\"cannot parse feature \\\"a\\\\\\\"b\\\"\"}"
        );
    }
}
