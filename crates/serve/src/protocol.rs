//! The newline-delimited wire protocol spoken over TCP and stdin.
//!
//! One request per line, one response line per request:
//!
//! | request line | meaning |
//! |---|---|
//! | `0.5,1.25,-3.0,0.1` | score this feature row (bare CSV floats) |
//! | `{"features":[0.5,1.25,-3.0,0.1]}` | the same row, JSON-ish form |
//! | `votes:0.5,1.25,-3.0,0.1` | return the row's per-class vote histogram (the sharded-inference partial) |
//! | `stats` (or `/stats`) | return the serving metrics snapshot |
//! | `shutdown` (or `/shutdown`) | stop the server gracefully |
//!
//! Responses are one JSON object per line:
//! `{"class":2,"engine":"flint-blocked","batch":17}` for predictions,
//! `{"votes":[3,0,2],"engine":"flint-blocked","batch":1}` for vote
//! histograms (what a forest shard reports to the `flint-router`
//! fan-out tier, which merges shard histograms and applies the
//! canonical majority-vote tie-break),
//! the [`MetricsSnapshot::to_json`](crate::MetricsSnapshot::to_json)
//! object for `stats`, `{"ok":"shutting down"}` for `shutdown`, and
//! `{"error":"..."}` for anything malformed (the connection stays
//! usable — a bad line never kills the session or the queue).
//!
//! The JSON-ish form is parsed with a deliberately small hand-rolled
//! reader (no serde in the offline dependency set): the line must
//! contain a `"features"` key followed by one flat `[...]` array of
//! numbers.
//!
//! ## Sans-io framing
//!
//! [`ProtocolMachine`] is the transport-free half of the protocol: it
//! consumes raw byte slices in whatever chunks the transport produced
//! (one syscall's worth from a nonblocking socket, a whole stdin line,
//! a proptest-chosen split) and emits one [`WireEvent`] per request
//! line. It knows nothing about sockets, so the epoll event loop, the
//! thread-per-connection server, the stdin loop and the unit tests all
//! drive the *same* state machine — chunk boundaries can never change
//! the response stream (proven by the chunking property suite).

use crate::batcher::Prediction;

/// Longest accepted request line in bytes (terminator excluded); the
/// per-connection read-buffer cap. A line still unterminated past this
/// limit is rejected with one error response and discarded up to its
/// newline, so a hostile client cannot grow server memory without
/// bound.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Score one feature row.
    Predict(Vec<f32>),
    /// Score one feature row and return the per-class vote histogram
    /// instead of the merged class — the partial a forest shard
    /// contributes to a distributed majority vote.
    Votes(Vec<f32>),
    /// Report the serving metrics snapshot.
    Stats,
    /// Liveness probe (`health`): answered without touching the
    /// scoring path, so a router can distinguish "process up" from
    /// "keeping up".
    Health,
    /// Report the shard map (`shardmap`) — the router's control plane;
    /// a single-node server answers with an error.
    ShardMap,
    /// Replace the shard map (`shardmap set a:1,b:2`). Addresses stay
    /// unresolved strings at the protocol layer; the router validates
    /// them.
    ShardMapSet(Vec<String>),
    /// Stop admitting new predict/votes requests while continuing to
    /// answer in-flight ones and control verbs (`drain`).
    Drain,
    /// Resume admitting requests after a [`Request::Drain`]
    /// (`undrain`).
    Undrain,
    /// Stop the server gracefully.
    Shutdown,
}

/// Why a request line could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRequestError(pub String);

impl core::fmt::Display for ParseRequestError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseRequestError {}

/// Parses one request line.
///
/// # Errors
///
/// [`ParseRequestError`] with a human-readable message on empty lines,
/// malformed numbers or a JSON-ish object without a `"features"` array.
pub fn parse_request(line: &str) -> Result<Request, ParseRequestError> {
    let text = line.trim();
    if text.is_empty() {
        return Err(ParseRequestError("empty request line".to_owned()));
    }
    if text.eq_ignore_ascii_case("stats") || text.eq_ignore_ascii_case("/stats") {
        return Ok(Request::Stats);
    }
    if text.eq_ignore_ascii_case("shutdown") || text.eq_ignore_ascii_case("/shutdown") {
        return Ok(Request::Shutdown);
    }
    if text.eq_ignore_ascii_case("health") || text.eq_ignore_ascii_case("/health") {
        return Ok(Request::Health);
    }
    if text.eq_ignore_ascii_case("drain") || text.eq_ignore_ascii_case("/drain") {
        return Ok(Request::Drain);
    }
    if text.eq_ignore_ascii_case("undrain") || text.eq_ignore_ascii_case("/undrain") {
        return Ok(Request::Undrain);
    }
    if text.eq_ignore_ascii_case("shardmap") || text.eq_ignore_ascii_case("/shardmap") {
        return Ok(Request::ShardMap);
    }
    if let Some(rest) = strip_verb_prefix(text, "shardmap set ") {
        let addrs: Vec<String> = rest
            .split(',')
            .map(|a| a.trim().to_owned())
            .filter(|a| !a.is_empty())
            .collect();
        if addrs.is_empty() {
            return Err(ParseRequestError(
                "shardmap set needs a comma-separated address list".to_owned(),
            ));
        }
        return Ok(Request::ShardMapSet(addrs));
    }
    if let Some(rest) = strip_verb_prefix(text, "votes:") {
        return Ok(Request::Votes(parse_row(rest)?));
    }
    Ok(Request::Predict(parse_row(text)?))
}

/// Strips an optional leading `/` then a case-insensitive ASCII verb
/// prefix, returning the trimmed remainder. `get` refuses a split
/// inside a multibyte character instead of panicking on hostile input.
fn strip_verb_prefix<'a>(text: &'a str, verb: &str) -> Option<&'a str> {
    let bare = text.strip_prefix('/').unwrap_or(text);
    match bare.get(..verb.len()) {
        Some(prefix) if prefix.eq_ignore_ascii_case(verb) => Some(bare[verb.len()..].trim()),
        _ => None,
    }
}

/// Parses one feature row: bare CSV floats or the JSON-ish
/// `{"features":[...]}` form.
fn parse_row(text: &str) -> Result<Vec<f32>, ParseRequestError> {
    let numbers = if text.starts_with('{') {
        features_array(text)?
    } else {
        text
    };
    numbers
        .split(',')
        .map(|field| {
            let field = field.trim();
            field
                .parse::<f32>()
                .map_err(|_| ParseRequestError(format!("cannot parse feature {field:?}")))
        })
        .collect()
}

/// Extracts the contents of the `[...]` array following a `"features"`
/// key in a JSON-ish object line.
fn features_array(text: &str) -> Result<&str, ParseRequestError> {
    let missing = || ParseRequestError("expected {\"features\":[...]}".to_owned());
    let after_key = text
        .split_once("\"features\"")
        .map(|(_, rest)| rest)
        .ok_or_else(missing)?;
    let (_, after_open) = after_key.split_once('[').ok_or_else(missing)?;
    let (inner, _) = after_open.split_once(']').ok_or_else(missing)?;
    Ok(inner)
}

/// One framing-level event from [`ProtocolMachine::receive`]: a parsed
/// request, or the response-worthy reason a line could not become one.
#[derive(Debug, Clone, PartialEq)]
pub enum WireEvent {
    /// A well-formed request line.
    Request(Request),
    /// A complete but malformed line (answered with
    /// [`render_error`], the connection stays usable).
    Invalid(ParseRequestError),
    /// A line that exceeded [`MAX_LINE_BYTES`] before its newline
    /// arrived; the rest of the line is being discarded.
    Oversized {
        /// The limit that was exceeded.
        limit: usize,
    },
}

/// One framing-level event from [`LineMachine::receive`]: a complete
/// line, or the fact that one blew the length cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FramedLine<'a> {
    /// A complete line, LF / CRLF terminator stripped.
    Line(&'a [u8]),
    /// A line that exceeded the cap before its newline arrived; the
    /// rest of the line is being discarded.
    Oversized {
        /// The limit that was exceeded.
        limit: usize,
    },
}

/// The sans-io line-framing core: buffers partial lines across
/// arbitrarily-chunked reads, strips LF / CRLF terminators and enforces
/// the line-length cap. It carries no protocol knowledge, so it frames
/// both directions of the wire: [`ProtocolMachine`] layers request
/// parsing on top for servers, and the `flint-router` fan-out tier
/// drives it bare to frame upstream shard *responses* over the same
/// chunk-invariant state machine instead of growing a second framing
/// layer.
#[derive(Debug)]
pub struct LineMachine {
    /// Bytes of the current (still unterminated) line.
    buf: Vec<u8>,
    max_line: usize,
    /// An oversized line was already reported; swallow bytes until its
    /// newline.
    discarding: bool,
}

impl Default for LineMachine {
    fn default() -> Self {
        Self::new()
    }
}

impl LineMachine {
    /// A machine with the standard [`MAX_LINE_BYTES`] cap.
    pub fn new() -> Self {
        Self::with_max_line(MAX_LINE_BYTES)
    }

    /// A machine with a custom line-length cap (tests use small caps).
    pub fn with_max_line(max_line: usize) -> Self {
        Self {
            buf: Vec::new(),
            max_line: max_line.max(1),
            discarding: false,
        }
    }

    /// Bytes currently buffered for a partial line (the read-side
    /// memory this connection holds).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Consumes one transport chunk, emitting one [`FramedLine`] per
    /// complete line. Chunk boundaries are invisible: any split of the
    /// same byte stream yields the same event sequence.
    pub fn receive(&mut self, mut bytes: &[u8], mut sink: impl FnMut(FramedLine<'_>)) {
        while let Some(nl) = bytes.iter().position(|&b| b == b'\n') {
            let (head, rest) = bytes.split_at(nl);
            bytes = &rest[1..];
            if self.discarding {
                // The tail of a line already reported as oversized.
                self.discarding = false;
                continue;
            }
            if self.buf.len() + head.len() > self.max_line {
                // Same verdict the split-chunk path reaches below, so
                // chunking cannot change whether a line is accepted.
                self.buf.clear();
                sink(FramedLine::Oversized {
                    limit: self.max_line,
                });
            } else if self.buf.is_empty() {
                sink(FramedLine::Line(strip_cr(head)));
            } else {
                self.buf.extend_from_slice(head);
                let line = std::mem::take(&mut self.buf);
                sink(FramedLine::Line(strip_cr(&line)));
            }
        }
        if self.discarding {
            return;
        }
        if self.buf.len() + bytes.len() > self.max_line {
            self.buf.clear();
            self.discarding = true;
            sink(FramedLine::Oversized {
                limit: self.max_line,
            });
            return;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Flushes the final unterminated line at end of input, if any —
    /// the same treatment `BufRead::lines` gives a file without a
    /// trailing newline.
    pub fn finish(&mut self) -> Option<Vec<u8>> {
        self.discarding = false;
        if self.buf.is_empty() {
            return None;
        }
        let line = std::mem::take(&mut self.buf);
        Some(strip_cr(&line).to_vec())
    }
}

/// CRLF clients: the framing layer owns terminator stripping (a
/// parser's trim would also handle it, but a `\r` must never count
/// against field contents).
fn strip_cr(line: &[u8]) -> &[u8] {
    line.strip_suffix(b"\r").unwrap_or(line)
}

/// The sans-io request-protocol state machine: [`LineMachine`] framing
/// with every complete line handed to [`parse_request`]. No transport
/// knowledge: callers feed it bytes and write out whatever responses
/// its events call for.
#[derive(Debug, Default)]
pub struct ProtocolMachine {
    lines: LineMachine,
}

impl ProtocolMachine {
    /// A machine with the standard [`MAX_LINE_BYTES`] cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// A machine with a custom line-length cap (tests use small caps).
    pub fn with_max_line(max_line: usize) -> Self {
        Self {
            lines: LineMachine::with_max_line(max_line),
        }
    }

    /// Bytes currently buffered for a partial line (the read-side
    /// memory this connection holds).
    pub fn buffered(&self) -> usize {
        self.lines.buffered()
    }

    /// Consumes one transport chunk, emitting one [`WireEvent`] per
    /// complete line. Chunk boundaries are invisible: any split of the
    /// same byte stream yields the same event sequence.
    pub fn receive(&mut self, bytes: &[u8], mut sink: impl FnMut(WireEvent)) {
        self.lines.receive(bytes, |frame| {
            sink(match frame {
                FramedLine::Line(line) => line_event(line),
                FramedLine::Oversized { limit } => WireEvent::Oversized { limit },
            })
        });
    }

    /// Flushes the final unterminated line at end of input, if any —
    /// the same treatment `BufRead::lines` gives a file without a
    /// trailing newline.
    pub fn finish(&mut self) -> Option<WireEvent> {
        self.lines.finish().map(|line| line_event(&line))
    }
}

/// Classifies one complete, terminator-stripped line.
fn line_event(line: &[u8]) -> WireEvent {
    let text = String::from_utf8_lossy(line);
    match parse_request(&text) {
        Ok(request) => WireEvent::Request(request),
        Err(e) => WireEvent::Invalid(e),
    }
}

/// Renders one prediction as a response line.
pub fn render_prediction(prediction: &Prediction, engine: &str) -> String {
    format!(
        "{{\"class\":{},\"engine\":\"{engine}\",\"batch\":{}}}",
        prediction.class, prediction.batch_fill
    )
}

/// Renders one per-class vote histogram as a response line — the
/// answer to a `votes:` request, i.e. the partial a forest shard
/// reports upward for distributed merge. The array fragment uses the
/// canonical `flint_forest::votes` wire form so the router can parse
/// it back with `parse_votes`.
pub fn render_votes(votes: &[u32], engine: &str, batch_fill: usize) -> String {
    format!(
        "{{\"votes\":{},\"engine\":\"{engine}\",\"batch\":{batch_fill}}}",
        flint_forest::votes::render_votes(votes)
    )
}

/// Renders the admission-control shed response: the server is over one
/// of its load limits (`reason` names which) and this request was
/// deliberately not queued. Clients detect the `"busy"` key and back
/// off; the connection stays usable.
pub fn render_busy(reason: &str) -> String {
    let mut line = render_error(&format!("busy: {reason}"));
    line.insert_str(line.len() - 1, ",\"busy\":true");
    line
}

/// Renders an error as a single-line, well-formed JSON response:
/// quotes and backslashes are JSON-escaped, control characters are
/// flattened to spaces.
pub fn render_error(message: &str) -> String {
    let mut clean = String::with_capacity(message.len());
    for c in message.chars() {
        match c {
            '"' => clean.push_str("\\\""),
            '\\' => clean.push_str("\\\\"),
            c if c.is_control() => clean.push(' '),
            c => clean.push(c),
        }
    }
    format!("{{\"error\":\"{clean}\"}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_and_json_rows_parse_identically() {
        let csv = parse_request("0.5, 1.25,-3.0").expect("parses");
        let json = parse_request("{\"features\": [0.5, 1.25, -3.0]}").expect("parses");
        assert_eq!(csv, Request::Predict(vec![0.5, 1.25, -3.0]));
        assert_eq!(csv, json);
    }

    #[test]
    fn votes_requests_parse_both_row_forms() {
        for line in [
            "votes:0.5, 1.25,-3.0",
            "VOTES: 0.5,1.25,-3.0",
            "/votes:{\"features\":[0.5,1.25,-3.0]}",
        ] {
            assert_eq!(
                parse_request(line).expect("parses"),
                Request::Votes(vec![0.5, 1.25, -3.0]),
                "{line}"
            );
        }
        assert!(parse_request("votes:zap").unwrap_err().0.contains("zap"));
        assert!(parse_request("votes:").unwrap_err().0.contains("feature"));
    }

    #[test]
    fn control_verbs_parse_case_insensitively() {
        assert_eq!(parse_request("health").expect("parses"), Request::Health);
        assert_eq!(parse_request("/HEALTH").expect("parses"), Request::Health);
        assert_eq!(parse_request("drain").expect("parses"), Request::Drain);
        assert_eq!(parse_request("Undrain").expect("parses"), Request::Undrain);
        assert_eq!(
            parse_request("/shardmap").expect("parses"),
            Request::ShardMap
        );
        assert_eq!(
            parse_request("SHARDMAP SET 127.0.0.1:1, 127.0.0.1:2").expect("parses"),
            Request::ShardMapSet(vec!["127.0.0.1:1".to_owned(), "127.0.0.1:2".to_owned()])
        );
        assert!(
            parse_request("shardmap set ,")
                .unwrap_err()
                .0
                .contains("address list"),
            "empty shard list must not parse"
        );
    }

    #[test]
    fn votes_response_round_trips_through_the_forest_parser() {
        let line = render_votes(&[3, 0, 2], "flint", 1);
        assert_eq!(line, "{\"votes\":[3,0,2],\"engine\":\"flint\",\"batch\":1}");
        let inner = line
            .split_once("\"votes\":")
            .and_then(|(_, rest)| rest.split_once(']'))
            .map(|(head, _)| format!("{head}]"))
            .expect("array fragment");
        assert_eq!(
            flint_forest::votes::parse_votes(&inner).expect("parses"),
            vec![3, 0, 2]
        );
    }

    #[test]
    fn line_machine_frames_raw_lines_for_the_router() {
        let mut machine = LineMachine::with_max_line(16);
        let mut lines: Vec<String> = Vec::new();
        let mut oversized = 0;
        let feed = |m: &mut LineMachine, bytes: &[u8], lines: &mut Vec<String>, over: &mut u32| {
            m.receive(bytes, |frame| match frame {
                FramedLine::Line(l) => lines.push(String::from_utf8_lossy(l).into_owned()),
                FramedLine::Oversized { .. } => *over += 1,
            });
        };
        feed(
            &mut machine,
            b"{\"votes\":[1]}\r\nab",
            &mut lines,
            &mut oversized,
        );
        feed(
            &mut machine,
            b"c\nthis line is far too long to fit\nok\n",
            &mut lines,
            &mut oversized,
        );
        assert_eq!(lines, vec!["{\"votes\":[1]}", "abc", "ok"]);
        assert_eq!(oversized, 1);
        assert_eq!(machine.finish(), None);
        machine.receive(b"tail", |_| {});
        assert_eq!(machine.finish().as_deref(), Some(b"tail".as_slice()));
    }

    #[test]
    fn commands_parse_case_insensitively() {
        for line in ["stats", "STATS", "/stats"] {
            assert_eq!(parse_request(line).expect("parses"), Request::Stats);
        }
        for line in ["shutdown", "Shutdown", "/shutdown"] {
            assert_eq!(parse_request(line).expect("parses"), Request::Shutdown);
        }
    }

    #[test]
    fn malformed_lines_error_with_guidance() {
        assert!(parse_request("  ").unwrap_err().0.contains("empty"));
        assert!(parse_request("1.0,zap").unwrap_err().0.contains("zap"));
        assert!(parse_request("{\"rows\":[1]}")
            .unwrap_err()
            .0
            .contains("features"));
        assert!(parse_request("{\"features\":1}")
            .unwrap_err()
            .0
            .contains("features"));
    }

    #[test]
    fn responses_are_single_json_lines() {
        let line = render_prediction(
            &Prediction {
                class: 2,
                batch_fill: 17,
            },
            "flint-blocked",
        );
        assert_eq!(
            line,
            "{\"class\":2,\"engine\":\"flint-blocked\",\"batch\":17}"
        );
        let err = render_error("bad \"row\"\nsecond line");
        assert!(!err.contains('\n'), "{err}");
        assert_eq!(err, "{\"error\":\"bad \\\"row\\\" second line\"}");
        // The {:?} formatting of a malformed field can introduce
        // backslashes; they must come back JSON-escaped, not raw.
        let err = render_error("cannot parse feature \"a\\\"b\"");
        assert_eq!(
            err,
            "{\"error\":\"cannot parse feature \\\"a\\\\\\\"b\\\"\"}"
        );
    }

    #[test]
    fn busy_response_is_machine_detectable() {
        let line = render_busy("max-inflight 4 reached");
        assert_eq!(
            line,
            "{\"error\":\"busy: max-inflight 4 reached\",\"busy\":true}"
        );
    }

    /// Feeds the whole stream in one chunk and collects the events.
    fn events_of(machine: &mut ProtocolMachine, stream: &[u8]) -> Vec<WireEvent> {
        let mut events = Vec::new();
        machine.receive(stream, |e| events.push(e));
        if let Some(last) = machine.finish() {
            events.push(last);
        }
        events
    }

    #[test]
    fn machine_frames_lf_and_crlf_identically() {
        let mut lf = ProtocolMachine::new();
        let mut crlf = ProtocolMachine::new();
        let a = events_of(&mut lf, b"1,2,3\nstats\nshutdown\n");
        let b = events_of(&mut crlf, b"1,2,3\r\nstats\r\nshutdown\r\n");
        assert_eq!(a, b);
        assert_eq!(
            a,
            vec![
                WireEvent::Request(Request::Predict(vec![1.0, 2.0, 3.0])),
                WireEvent::Request(Request::Stats),
                WireEvent::Request(Request::Shutdown),
            ]
        );
    }

    #[test]
    fn machine_flushes_final_unterminated_line() {
        let mut machine = ProtocolMachine::new();
        let mut events = Vec::new();
        machine.receive(b"sta", |e| events.push(e));
        machine.receive(b"ts", |e| events.push(e));
        assert!(events.is_empty(), "{events:?}");
        assert_eq!(machine.buffered(), 5);
        assert_eq!(machine.finish(), Some(WireEvent::Request(Request::Stats)));
        assert_eq!(machine.finish(), None);
    }

    #[test]
    fn machine_rejects_oversized_lines_and_recovers() {
        let mut machine = ProtocolMachine::with_max_line(8);
        // One oversized line split across chunks, then a healthy one.
        let mut events = Vec::new();
        machine.receive(b"1,2,3,4,5,6", |e| events.push(e));
        machine.receive(b",7,8\nstats\n", |e| events.push(e));
        assert_eq!(
            events,
            vec![
                WireEvent::Oversized { limit: 8 },
                WireEvent::Request(Request::Stats),
            ]
        );
        // The same oversized line arriving terminator included in one
        // chunk gets the same verdict.
        let mut one_chunk = ProtocolMachine::with_max_line(8);
        let events = events_of(&mut one_chunk, b"1,2,3,4,5,6,7,8\nstats\n");
        assert_eq!(
            events,
            vec![
                WireEvent::Oversized { limit: 8 },
                WireEvent::Request(Request::Stats),
            ]
        );
    }

    #[test]
    fn machine_reports_malformed_lines_as_events() {
        let mut machine = ProtocolMachine::new();
        let events = events_of(&mut machine, b"\nnope\n");
        match &events[..] {
            [WireEvent::Invalid(empty), WireEvent::Invalid(bad)] => {
                assert!(empty.0.contains("empty"), "{empty}");
                assert!(bad.0.contains("nope"), "{bad}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
