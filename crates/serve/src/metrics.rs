//! Serving metrics: request/batch counters and a request-latency
//! reservoir, cheap enough to update on every request and rich enough
//! to answer the `stats` protocol command (p50/p99, mean batch fill).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How many of the most recent request latencies the reservoir keeps.
/// Old samples are overwritten ring-buffer style, so percentiles always
/// describe recent traffic rather than the whole process lifetime.
const LATENCY_WINDOW: usize = 1 << 16;

/// Shared serving counters. One instance lives behind an `Arc`, updated
/// by the request handles, the batch collector and the scoring workers.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    requests: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    batched_samples: AtomicU64,
    latencies: Mutex<LatencyRing>,
}

/// Fixed-capacity ring of recent request latencies in microseconds.
#[derive(Debug, Default)]
struct LatencyRing {
    samples_us: Vec<u64>,
    next: usize,
}

impl ServeMetrics {
    /// Counts one accepted request.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request rejected before it reached the queue (wrong
    /// feature arity, malformed line).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one scored batch of `fill` samples.
    pub fn record_batch(&self, fill: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_samples
            .fetch_add(fill as u64, Ordering::Relaxed);
    }

    /// Records one request's enqueue-to-response latency.
    pub fn record_latency(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let mut ring = self.latencies.lock().expect("latency ring lock");
        if ring.samples_us.len() < LATENCY_WINDOW {
            ring.samples_us.push(us);
        } else {
            let slot = ring.next;
            ring.samples_us[slot] = us;
        }
        ring.next = (ring.next + 1) % LATENCY_WINDOW;
    }

    /// A consistent point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut samples = self
            .latencies
            .lock()
            .expect("latency ring lock")
            .samples_us
            .clone();
        samples.sort_unstable();
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_samples.load(Ordering::Relaxed);
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            batches,
            mean_fill: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            p50_us: percentile(&samples, 50.0),
            p99_us: percentile(&samples, 99.0),
            max_us: samples.last().copied().unwrap_or(0),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample set (0 when
/// empty).
pub fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

/// One point-in-time reading of the serving counters, as returned by
/// the `stats` protocol command.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub requests: u64,
    /// Requests rejected before queueing.
    pub rejected: u64,
    /// Batches scored.
    pub batches: u64,
    /// Mean samples per scored batch.
    pub mean_fill: f64,
    /// Median request latency (enqueue to response) in microseconds,
    /// over the recent-latency window.
    pub p50_us: u64,
    /// 99th-percentile request latency in microseconds.
    pub p99_us: u64,
    /// Worst request latency in the window, microseconds.
    pub max_us: u64,
}

impl MetricsSnapshot {
    /// The snapshot as one line of JSON (the `stats` wire format).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\":{},\"rejected\":{},\"batches\":{},\"mean_fill\":{:.2},\
             \"p50_us\":{},\"p99_us\":{},\"max_us\":{}}}",
            self.requests,
            self.rejected,
            self.batches,
            self.mean_fill,
            self.p50_us,
            self.p99_us,
            self.max_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_all_zero() {
        let snap = ServeMetrics::default().snapshot();
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.batches, 0);
        assert_eq!(snap.p50_us, 0);
        assert_eq!(snap.p99_us, 0);
        assert_eq!(snap.mean_fill, 0.0);
    }

    #[test]
    fn counters_and_percentiles_accumulate() {
        let m = ServeMetrics::default();
        for us in 1..=100u64 {
            m.record_request();
            m.record_latency(Duration::from_micros(us));
        }
        m.record_batch(60);
        m.record_batch(40);
        m.record_rejected();
        let snap = m.snapshot();
        assert_eq!(snap.requests, 100);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.mean_fill, 50.0);
        assert_eq!(snap.p50_us, 50);
        assert_eq!(snap.p99_us, 99);
        assert_eq!(snap.max_us, 100);
        let json = snap.to_json();
        for key in ["requests", "batches", "mean_fill", "p50_us", "p99_us"] {
            assert!(json.contains(key), "{json}");
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[1, 2, 3, 4], 50.0), 2);
        assert_eq!(percentile(&[1, 2, 3, 4], 99.0), 4);
        assert_eq!(percentile(&[1, 2, 3, 4], 0.0), 1);
    }

    #[test]
    fn latency_ring_wraps_instead_of_growing() {
        let m = ServeMetrics::default();
        for i in 0..(LATENCY_WINDOW + 10) {
            m.record_latency(Duration::from_micros(i as u64));
        }
        let held = m
            .latencies
            .lock()
            .expect("latency ring lock")
            .samples_us
            .len();
        assert_eq!(held, LATENCY_WINDOW);
    }
}
