//! Serving metrics: request/batch counters, connection gauges, buffer
//! high-water marks and a request-latency reservoir, cheap enough to
//! update on every request and rich enough to answer the `stats`
//! protocol command (p50/p99/p999, mean batch fill, live connections).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How many of the most recent request latencies the reservoir keeps.
/// Old samples are overwritten ring-buffer style, so percentiles always
/// describe recent traffic rather than the whole process lifetime.
const LATENCY_WINDOW: usize = 1 << 16;

/// Shared serving counters. One instance lives behind an `Arc`, updated
/// by the request handles, the batch collector, the scoring workers and
/// the front end driving the connections.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    requests: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    batched_samples: AtomicU64,
    connections: AtomicU64,
    accepted: AtomicU64,
    read_hwm: AtomicU64,
    write_hwm: AtomicU64,
    latencies: Mutex<LatencyRing>,
}

/// Fixed-capacity ring of recent request latencies in microseconds.
#[derive(Debug, Default)]
struct LatencyRing {
    samples_us: Vec<u64>,
    next: usize,
}

impl ServeMetrics {
    /// Counts one accepted request.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request rejected before it reached the queue (wrong
    /// feature arity, malformed line).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request or connection shed by admission control (the
    /// `busy` responses: max-conns, max-inflight, per-connection caps,
    /// full queue).
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one accepted connection (raises the live gauge).
    pub fn record_connect(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Lowers the live-connection gauge.
    pub fn record_disconnect(&self) {
        self.connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Folds one connection's current read-buffer size into the
    /// high-water mark.
    pub fn record_read_buffer(&self, bytes: usize) {
        self.read_hwm.fetch_max(bytes as u64, Ordering::Relaxed);
    }

    /// Folds one connection's current write-buffer size into the
    /// high-water mark.
    pub fn record_write_buffer(&self, bytes: usize) {
        self.write_hwm.fetch_max(bytes as u64, Ordering::Relaxed);
    }

    /// Counts one scored batch of `fill` samples.
    pub fn record_batch(&self, fill: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_samples
            .fetch_add(fill as u64, Ordering::Relaxed);
    }

    /// Records one request's enqueue-to-response latency.
    pub fn record_latency(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let mut ring = self.latencies.lock().expect("latency ring lock");
        if ring.samples_us.len() < LATENCY_WINDOW {
            ring.samples_us.push(us);
        } else {
            let slot = ring.next;
            ring.samples_us[slot] = us;
        }
        ring.next = (ring.next + 1) % LATENCY_WINDOW;
    }

    /// A consistent point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut samples = self
            .latencies
            .lock()
            .expect("latency ring lock")
            .samples_us
            .clone();
        samples.sort_unstable();
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_samples.load(Ordering::Relaxed);
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            batches,
            mean_fill: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            connections: self.connections.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            read_hwm: self.read_hwm.load(Ordering::Relaxed),
            write_hwm: self.write_hwm.load(Ordering::Relaxed),
            p50_us: percentile(&samples, 50.0),
            p99_us: percentile(&samples, 99.0),
            p999_us: percentile(&samples, 99.9),
            max_us: samples.last().copied().unwrap_or(0),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample set (0 when
/// empty).
pub fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

/// One point-in-time reading of the serving counters, as returned by
/// the `stats` protocol command.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub requests: u64,
    /// Requests rejected before queueing.
    pub rejected: u64,
    /// Requests or connections shed by admission control (`busy`).
    pub shed: u64,
    /// Batches scored.
    pub batches: u64,
    /// Mean samples per scored batch.
    pub mean_fill: f64,
    /// Connections currently open (gauge).
    pub connections: u64,
    /// Connections accepted since startup.
    pub accepted: u64,
    /// Largest per-connection read buffer observed, bytes.
    pub read_hwm: u64,
    /// Largest per-connection write buffer observed, bytes.
    pub write_hwm: u64,
    /// Median request latency (enqueue to response) in microseconds,
    /// over the recent-latency window.
    pub p50_us: u64,
    /// 99th-percentile request latency in microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile request latency in microseconds.
    pub p999_us: u64,
    /// Worst request latency in the window, microseconds.
    pub max_us: u64,
}

impl MetricsSnapshot {
    /// The snapshot as one line of JSON (the `stats` wire format).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\":{},\"rejected\":{},\"shed\":{},\"batches\":{},\
             \"mean_fill\":{:.2},\"connections\":{},\"accepted\":{},\
             \"read_hwm\":{},\"write_hwm\":{},\
             \"p50_us\":{},\"p99_us\":{},\"p999_us\":{},\"max_us\":{}}}",
            self.requests,
            self.rejected,
            self.shed,
            self.batches,
            self.mean_fill,
            self.connections,
            self.accepted,
            self.read_hwm,
            self.write_hwm,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.max_us
        )
    }

    /// The snapshot with an extra `"shards"` block spliced in before
    /// the closing brace — the `stats` wire format of the router
    /// front end, which reports its shard map alongside the standard
    /// counters. `shards_json` must already be a well-formed JSON
    /// value (the router renders an array of per-shard objects).
    pub fn to_json_with_shards(&self, shards_json: &str) -> String {
        let mut line = self.to_json();
        line.insert_str(line.len() - 1, &format!(",\"shards\":{shards_json}"));
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_all_zero() {
        let snap = ServeMetrics::default().snapshot();
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.batches, 0);
        assert_eq!(snap.shed, 0);
        assert_eq!(snap.connections, 0);
        assert_eq!(snap.accepted, 0);
        assert_eq!(snap.p50_us, 0);
        assert_eq!(snap.p99_us, 0);
        assert_eq!(snap.p999_us, 0);
        assert_eq!(snap.mean_fill, 0.0);
    }

    #[test]
    fn counters_and_percentiles_accumulate() {
        let m = ServeMetrics::default();
        for us in 1..=100u64 {
            m.record_request();
            m.record_latency(Duration::from_micros(us));
        }
        m.record_batch(60);
        m.record_batch(40);
        m.record_rejected();
        let snap = m.snapshot();
        assert_eq!(snap.requests, 100);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.mean_fill, 50.0);
        assert_eq!(snap.p50_us, 50);
        assert_eq!(snap.p99_us, 99);
        assert_eq!(snap.p999_us, 100);
        assert_eq!(snap.max_us, 100);
        let json = snap.to_json();
        for key in [
            "requests",
            "shed",
            "batches",
            "mean_fill",
            "connections",
            "accepted",
            "read_hwm",
            "write_hwm",
            "p50_us",
            "p99_us",
            "p999_us",
        ] {
            assert!(json.contains(key), "{json}");
        }
    }

    #[test]
    fn connection_gauges_and_hwms_track_the_front_end() {
        let m = ServeMetrics::default();
        m.record_connect();
        m.record_connect();
        m.record_connect();
        m.record_disconnect();
        m.record_shed();
        m.record_read_buffer(100);
        m.record_read_buffer(40); // below the mark: no change
        m.record_write_buffer(9000);
        let snap = m.snapshot();
        assert_eq!(snap.connections, 2);
        assert_eq!(snap.accepted, 3);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.read_hwm, 100);
        assert_eq!(snap.write_hwm, 9000);
    }

    #[test]
    fn shards_block_splices_into_the_stats_line() {
        let snap = ServeMetrics::default().snapshot();
        let line = snap.to_json_with_shards("[{\"addr\":\"127.0.0.1:9\",\"up\":true}]");
        assert!(
            line.ends_with(",\"shards\":[{\"addr\":\"127.0.0.1:9\",\"up\":true}]}"),
            "{line}"
        );
        assert!(line.starts_with("{\"requests\":0,"), "{line}");
    }

    #[test]
    fn p999_sits_between_p99_and_max() {
        let m = ServeMetrics::default();
        for us in 1..=10_000u64 {
            m.record_latency(Duration::from_micros(us));
        }
        let snap = m.snapshot();
        assert_eq!(snap.p99_us, 9900);
        // Nearest rank lands on 9991 here: 0.999 * 10000 is just above
        // 9990 in binary floating point, and ceil keeps the bias
        // conservative (never under-reports the tail).
        assert_eq!(snap.p999_us, 9991);
        assert_eq!(snap.max_us, 10_000);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[1, 2, 3, 4], 50.0), 2);
        assert_eq!(percentile(&[1, 2, 3, 4], 99.0), 4);
        assert_eq!(percentile(&[1, 2, 3, 4], 0.0), 1);
    }

    #[test]
    fn latency_ring_wraps_instead_of_growing() {
        let m = ServeMetrics::default();
        for i in 0..(LATENCY_WINDOW + 10) {
            m.record_latency(Duration::from_micros(i as u64));
        }
        let held = m
            .latencies
            .lock()
            .expect("latency ring lock")
            .samples_us
            .len();
        assert_eq!(held, LATENCY_WINDOW);
    }
}
