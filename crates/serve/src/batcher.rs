//! The micro-batcher: turns single-sample `predict` calls into the
//! column-major [`FeatureMatrix`] blocks where the blocked /
//! QuickScorer / VM engines earn their throughput.
//!
//! Shape of the machinery (all `std`, no runtime dependency):
//!
//! * callers hold a cloneable [`BatchHandle`] whose blocking
//!   [`predict`](BatchHandle::predict) enqueues one feature row and
//!   waits on a oneshot reply channel;
//! * a **collector** thread gathers queued rows into a batch, closing
//!   it when either `max_batch` rows are in hand or the oldest row has
//!   lingered past the deadline — the classic micro-batching policy:
//!   `linger` bounds added latency, `max_batch` bounds batch size;
//! * a **worker pool** scores closed batches through one shared
//!   [`Predictor`] (any engine of the registry) and fans the per-sample
//!   classes back to their callers;
//! * the request queue is **bounded** ([`BatchPolicy::queue_depth`]);
//!   when scoring falls behind, callers block in `predict` instead of
//!   growing an unbounded backlog — backpressure, not collapse;
//! * [`shutdown`](Batcher::shutdown) is graceful: every request already
//!   queued is still batched, scored and answered before the threads
//!   exit; requests arriving after shutdown fail with
//!   [`ServeError::ShuttingDown`].
//!
//! Rows with the wrong feature arity are rejected in the caller's
//! thread before they touch the queue, so one malformed client cannot
//! poison a batch shared with well-formed requests.

use crate::metrics::{MetricsSnapshot, ServeMetrics};
use flint_data::FeatureMatrix;
use flint_exec::Predictor;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Micro-batching policy knobs. All counts are clamped to at least 1
/// when used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Most samples per batch; a batch is dispatched as soon as it is
    /// full.
    pub max_batch: usize,
    /// Longest a partial batch waits for more rows before being
    /// dispatched anyway (the latency bound of the policy).
    pub linger: Duration,
    /// Bounded request-queue depth; callers block once it is full.
    pub queue_depth: usize,
    /// Scoring worker threads.
    pub workers: usize,
}

impl Default for BatchPolicy {
    /// 64-row batches, 200 µs linger, 1024-deep queue, one worker.
    fn default() -> Self {
        Self {
            max_batch: 64,
            linger: Duration::from_micros(200),
            queue_depth: 1024,
            workers: 1,
        }
    }
}

impl BatchPolicy {
    /// Sets the batch-size cap.
    #[must_use]
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n;
        self
    }

    /// Sets the linger deadline.
    #[must_use]
    pub fn linger(mut self, d: Duration) -> Self {
        self.linger = d;
        self
    }

    /// Sets the bounded queue depth.
    #[must_use]
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n;
        self
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }
}

/// One answered request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// The majority-vote class, bit-identical to
    /// `RandomForest::predict_majority` on the same row.
    pub class: u32,
    /// How many samples shared the batch this row was scored in
    /// (observability: 1 = the linger deadline fired alone,
    /// `max_batch` = a full batch).
    pub batch_fill: usize,
}

/// One answered `votes:` request: the per-class vote histogram a
/// forest shard reports upward for distributed merge, plus the same
/// batch-fill observability as [`Prediction`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VotesReply {
    /// Per-class vote counts, summing to the engine's tree count.
    /// `majority_vote(&votes)` equals the [`Prediction::class`] the
    /// same row would have received.
    pub votes: Vec<u32>,
    /// How many samples shared the batch this row was scored in.
    pub batch_fill: usize,
}

/// Why a request was not answered.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The feature row does not match the model's arity. Rejected
    /// before queueing; the batcher keeps serving.
    WrongArity {
        /// The model's feature count.
        expected: usize,
        /// The rejected row's length.
        got: usize,
    },
    /// The batcher is shutting down (or has shut down); the request was
    /// not scored.
    ShuttingDown,
    /// The bounded request queue is full and the caller asked not to
    /// block ([`BatchHandle::try_submit`]): admission control shed this
    /// request instead of growing a backlog.
    Busy,
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::WrongArity { expected, got } => {
                write!(f, "expected {expected} features, got {got}")
            }
            Self::ShuttingDown => write!(f, "server is shutting down"),
            Self::Busy => write!(f, "request queue full"),
        }
    }
}

impl std::error::Error for ServeError {}

/// How a scored request finds its way back to whoever asked: a oneshot
/// callback. The blocking [`BatchHandle::predict`] wraps a channel
/// send; the event-loop front end wraps "push onto the completion
/// queue and wake the poller". Class and votes requests share one
/// queue and one batch, so a shard serving `votes:` traffic batches
/// exactly like a node serving predictions.
enum Reply {
    /// Answer with the majority-vote class.
    Class(Box<dyn FnOnce(Prediction) + Send>),
    /// Answer with the per-class vote histogram.
    Votes(Box<dyn FnOnce(VotesReply) + Send>),
}

/// One queued request: the gathered row, its enqueue time (for the
/// latency metrics) and the caller's oneshot reply callback.
struct Request {
    features: Vec<f32>,
    enqueued: Instant,
    reply: Reply,
}

/// Queue messages: requests, or the shutdown sentinel `Batcher` sends.
enum Msg {
    Predict(Request),
    Shutdown,
}

/// A closed batch on its way to a scoring worker: concatenated
/// row-major features plus one reply slot per row.
struct Batch {
    rows: Vec<f32>,
    replies: Vec<(Reply, Instant)>,
}

/// The caller-side entry point: cheap to clone, safe to share across
/// connection threads.
#[derive(Debug, Clone)]
pub struct BatchHandle {
    tx: SyncSender<Msg>,
    n_features: usize,
    engine_name: &'static str,
    metrics: Arc<ServeMetrics>,
}

impl BatchHandle {
    /// Scores one feature row, blocking until its batch has been
    /// dispatched and scored.
    ///
    /// # Errors
    ///
    /// [`ServeError::WrongArity`] if the row length differs from the
    /// model's feature count (checked before queueing);
    /// [`ServeError::ShuttingDown`] if the batcher stopped before this
    /// request could be scored.
    pub fn predict(&self, features: &[f32]) -> Result<Prediction, ServeError> {
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        self.check_arity(features)?;
        let request = Request {
            features: features.to_vec(),
            enqueued: Instant::now(),
            reply: Reply::Class(Box::new(move |prediction| {
                let _ = reply_tx.send(prediction);
            })),
        };
        self.tx
            .send(Msg::Predict(request))
            .map_err(|_| ServeError::ShuttingDown)?;
        self.metrics.record_request();
        // The reply channel is dropped unanswered only when the batcher
        // tears down before this batch is scored.
        reply_rx.recv().map_err(|_| ServeError::ShuttingDown)
    }

    /// Scores one feature row and blocks for its per-class vote
    /// histogram — the blocking sibling of
    /// [`try_submit_votes`](Self::try_submit_votes), used by the
    /// thread-per-connection front end and the stdin loop.
    ///
    /// # Errors
    ///
    /// Same contract as [`predict`](Self::predict).
    pub fn predict_votes(&self, features: &[f32]) -> Result<VotesReply, ServeError> {
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        self.check_arity(features)?;
        let request = Request {
            features: features.to_vec(),
            enqueued: Instant::now(),
            reply: Reply::Votes(Box::new(move |votes| {
                let _ = reply_tx.send(votes);
            })),
        };
        self.tx
            .send(Msg::Predict(request))
            .map_err(|_| ServeError::ShuttingDown)?;
        self.metrics.record_request();
        reply_rx.recv().map_err(|_| ServeError::ShuttingDown)
    }

    /// Enqueues one feature row **without blocking**: `on_done` fires
    /// from a scoring worker once the row's batch is scored. This is
    /// the event-loop entry point — the loop must never sleep on a full
    /// queue, so a full queue sheds instead of blocking.
    ///
    /// # Errors
    ///
    /// [`ServeError::WrongArity`] on a bad row (checked before
    /// queueing), [`ServeError::Busy`] when the bounded queue is full
    /// (counted as shed in the metrics), [`ServeError::ShuttingDown`]
    /// when the batcher has stopped. On every error `on_done` is
    /// dropped unfired — the caller still owns the response.
    pub fn try_submit(
        &self,
        features: &[f32],
        on_done: impl FnOnce(Prediction) + Send + 'static,
    ) -> Result<(), ServeError> {
        self.submit(features, Reply::Class(Box::new(on_done)))
    }

    /// Enqueues one `votes:` request **without blocking**: `on_done`
    /// fires with the row's per-class vote histogram. Same admission
    /// semantics as [`try_submit`](Self::try_submit).
    ///
    /// # Errors
    ///
    /// Same contract as [`try_submit`](Self::try_submit).
    pub fn try_submit_votes(
        &self,
        features: &[f32],
        on_done: impl FnOnce(VotesReply) + Send + 'static,
    ) -> Result<(), ServeError> {
        self.submit(features, Reply::Votes(Box::new(on_done)))
    }

    fn submit(&self, features: &[f32], reply: Reply) -> Result<(), ServeError> {
        self.check_arity(features)?;
        let request = Request {
            features: features.to_vec(),
            enqueued: Instant::now(),
            reply,
        };
        match self.tx.try_send(Msg::Predict(request)) {
            Ok(()) => {
                self.metrics.record_request();
                Ok(())
            }
            Err(mpsc::TrySendError::Full(_)) => {
                self.metrics.record_shed();
                Err(ServeError::Busy)
            }
            Err(mpsc::TrySendError::Disconnected(_)) => Err(ServeError::ShuttingDown),
        }
    }

    fn check_arity(&self, features: &[f32]) -> Result<(), ServeError> {
        if features.len() != self.n_features {
            self.metrics.record_rejected();
            return Err(ServeError::WrongArity {
                expected: self.n_features,
                got: features.len(),
            });
        }
        Ok(())
    }

    /// The registry name of the engine answering requests.
    pub fn engine_name(&self) -> &'static str {
        self.engine_name
    }

    /// Feature arity accepted by [`predict`](Self::predict).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// A point-in-time reading of the serving counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

/// The running micro-batcher: owns the collector and worker threads and
/// shuts them down gracefully on [`shutdown`](Self::shutdown) (or on
/// drop).
#[derive(Debug)]
pub struct Batcher {
    tx: SyncSender<Msg>,
    n_features: usize,
    engine_name: &'static str,
    metrics: Arc<ServeMetrics>,
    collector: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Batcher {
    /// Starts the collector and `policy.workers` scoring threads over
    /// `engine` — the only coupling to the rest of the workspace is the
    /// boxed [`Predictor`] from the engine registry.
    pub fn start(engine: Box<dyn Predictor>, policy: BatchPolicy) -> Self {
        let engine: Arc<dyn Predictor> = Arc::from(engine);
        let n_features = engine.n_features();
        let engine_name = engine.name();
        let metrics = Arc::new(ServeMetrics::default());
        let max_batch = policy.max_batch.max(1);
        let n_workers = policy.workers.max(1);

        let (tx, rx) = mpsc::sync_channel::<Msg>(policy.queue_depth.max(1));
        // A shallow hand-off channel: closed batches should start
        // scoring immediately, not pile up ahead of idle workers.
        let (batch_tx, batch_rx) = mpsc::sync_channel::<Batch>(n_workers);
        let batch_rx = Arc::new(Mutex::new(batch_rx));

        let workers = (0..n_workers)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let batch_rx = Arc::clone(&batch_rx);
                let metrics = Arc::clone(&metrics);
                std::thread::spawn(move || worker_loop(&*engine, &batch_rx, &metrics))
            })
            .collect();
        let collector = std::thread::spawn(move || {
            collect_loop(&rx, &batch_tx, max_batch, policy.linger, n_features);
        });

        Self {
            tx,
            n_features,
            engine_name,
            metrics,
            collector: Some(collector),
            workers,
        }
    }

    /// A cloneable caller-side handle.
    pub fn handle(&self) -> BatchHandle {
        BatchHandle {
            tx: self.tx.clone(),
            n_features: self.n_features,
            engine_name: self.engine_name,
            metrics: Arc::clone(&self.metrics),
        }
    }

    /// The registry name of the engine answering requests.
    pub fn engine_name(&self) -> &'static str {
        self.engine_name
    }

    /// Feature arity this batcher accepts.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// A point-in-time reading of the serving counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The live counters themselves, for the front ends that record
    /// connection gauges and buffer high-water marks.
    pub(crate) fn metrics_shared(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Graceful shutdown: every already-queued request is still scored
    /// and answered, then the collector and workers exit and are
    /// joined. Requests sent through surviving handles afterwards fail
    /// with [`ServeError::ShuttingDown`].
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop();
        self.metrics.snapshot()
    }

    fn stop(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(collector) = self.collector.take() {
            let _ = collector.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The collector: batches queued rows under the max-batch / linger
/// policy until shutdown, then drains whatever is still queued.
fn collect_loop(
    rx: &Receiver<Msg>,
    batch_tx: &SyncSender<Batch>,
    max_batch: usize,
    linger: Duration,
    n_features: usize,
) {
    loop {
        // Block for the first row of the next batch; its arrival starts
        // the linger clock.
        let first = match rx.recv() {
            Ok(Msg::Predict(request)) => request,
            Ok(Msg::Shutdown) | Err(_) => break,
        };
        let deadline = Instant::now() + linger;
        let mut batch = new_batch(max_batch, n_features);
        push_row(&mut batch, first);
        let mut stop = false;
        while batch.replies.len() < max_batch {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            match rx.recv_timeout(left) {
                Ok(Msg::Predict(request)) => push_row(&mut batch, request),
                Ok(Msg::Shutdown) | Err(RecvTimeoutError::Disconnected) => {
                    stop = true;
                    break;
                }
                Err(RecvTimeoutError::Timeout) => break,
            }
        }
        if batch_tx.send(batch).is_err() || stop {
            break;
        }
    }
    // Shutdown drain: everything already in the queue still gets
    // batched and scored before the workers are released.
    let mut batch = new_batch(max_batch, n_features);
    while let Ok(msg) = rx.try_recv() {
        if let Msg::Predict(request) = msg {
            push_row(&mut batch, request);
            if batch.replies.len() == max_batch {
                let full = std::mem::replace(&mut batch, new_batch(max_batch, n_features));
                if batch_tx.send(full).is_err() {
                    return;
                }
            }
        }
    }
    if !batch.replies.is_empty() {
        let _ = batch_tx.send(batch);
    }
    // `batch_tx` drops here; workers drain the hand-off channel and
    // exit.
}

fn new_batch(max_batch: usize, n_features: usize) -> Batch {
    Batch {
        rows: Vec::with_capacity(max_batch * n_features),
        replies: Vec::with_capacity(max_batch),
    }
}

fn push_row(batch: &mut Batch, request: Request) {
    batch.rows.extend_from_slice(&request.features);
    batch.replies.push((request.reply, request.enqueued));
}

/// One scoring worker: pulls closed batches, scores them through the
/// shared engine under the engine's own batch options, and fans the
/// classes back out.
fn worker_loop(engine: &dyn Predictor, batch_rx: &Mutex<Receiver<Batch>>, metrics: &ServeMetrics) {
    loop {
        // Standard shared-receiver pool: hold the lock only while
        // waiting for the next batch, score after releasing it so the
        // other workers can pull in parallel.
        let batch = {
            let rx = batch_rx.lock().expect("batch queue lock");
            match rx.recv() {
                Ok(batch) => batch,
                Err(_) => break,
            }
        };
        let fill = batch.replies.len();
        let n_features = engine.n_features();
        // Class requests score through the engine's batched path; a
        // batch that is all `votes:` traffic (a router shard's steady
        // state) skips the matrix pass entirely.
        let classes = if batch
            .replies
            .iter()
            .any(|(reply, _)| matches!(reply, Reply::Class(_)))
        {
            let matrix = FeatureMatrix::from_row_major(fill, n_features, &batch.rows);
            engine.predict_matrix(&matrix)
        } else {
            Vec::new()
        };
        metrics.record_batch(fill);
        for (i, (reply, enqueued)) in batch.replies.into_iter().enumerate() {
            metrics.record_latency(enqueued.elapsed());
            // The callback decides what "answered" means: a channel
            // send for blocking callers (a dropped receiver is a caller
            // that gave up — harmless), a completion-queue push plus
            // poller wake for the event loop.
            match reply {
                Reply::Class(done) => done(Prediction {
                    class: classes[i],
                    batch_fill: fill,
                }),
                Reply::Votes(done) => done(VotesReply {
                    votes: engine.predict_votes(&batch.rows[i * n_features..(i + 1) * n_features]),
                    batch_fill: fill,
                }),
            }
        }
    }
}
