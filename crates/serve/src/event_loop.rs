//! The readiness event-loop TCP front end: one thread, one `epoll`
//! instance, and the sans-io [`ProtocolMachine`] — the shape that holds
//! thousands of mostly-idle connections in one process, where the
//! thread-per-connection [`Server`](crate::Server) would pay a stack
//! and a scheduler entry apiece.
//!
//! How a request flows:
//!
//! 1. the loop's `epoll_wait` reports a connection readable; raw bytes
//!    go through the connection's [`ProtocolMachine`], which emits one
//!    [`WireEvent`] per complete line regardless of how the kernel
//!    chunked them;
//! 2. a predict request **reserves an ordered response slot** on its
//!    connection and enters the shared [`Batcher`] through the
//!    non-blocking [`BatchHandle::try_submit`] — the loop never sleeps
//!    on scoring;
//! 3. a scoring worker finishes the row's batch and runs the completion
//!    callback: push `(token, seq, prediction)` onto the completion
//!    queue and nudge the loop's [`Waker`];
//! 4. the loop drains completions into their reserved slots and writes
//!    out each connection's *ready prefix* — responses leave in request
//!    order per connection, no matter how batches interleaved.
//!
//! Admission control sheds load explicitly instead of queueing it
//! invisibly ([`EventLoopConfig`]): a full accept table turns new
//! connections away with a `busy` line, a full global in-flight window
//! or per-connection pending window answers `busy` without scoring, and
//! a connection whose peer stops reading has its **read interest
//! withdrawn** once its write buffer passes the cap — backpressure
//! lands on the slow client alone, never on the loop.
//!
//! Everything here is safe code; the `unsafe` lives behind the vendored
//! [`epoll`] shim's minimal API. On non-Linux targets
//! [`EpollServer::run`] fails with `Unsupported` and callers fall back
//! to `--front-end threads`.

use crate::batcher::{BatchHandle, BatchPolicy, Batcher, ServeError};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::protocol::{
    render_busy, render_error, render_prediction, render_votes, ProtocolMachine, Request, WireEvent,
};
use crate::server::{respond_event, Action};
use epoll::{Events, Interest, Poller, Waker};
use flint_exec::Predictor;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Poll token of the accept listener.
const LISTENER: u64 = 0;
/// Poll token of the completion waker's read end.
const WAKER: u64 = 1;
/// First token handed to an accepted connection (monotonic, never
/// reused, so a stale completion can never reach a newer connection).
const FIRST_CONN: u64 = 2;

/// Upper bound on one `epoll_wait` sleep: the loop's shutdown/overload
/// bookkeeping runs at least this often even with no I/O.
const POLL_TICK: Duration = Duration::from_millis(100);
/// Bytes per `read` call.
const READ_CHUNK: usize = 4096;
/// Reads taken from one connection per readiness report before the loop
/// moves on; level-triggered epoll re-reports leftovers, so a firehose
/// client cannot starve its neighbours.
const READ_BURSTS: usize = 16;
/// Drained-prefix size past which a connection's write buffer is
/// compacted. Below this the `memmove` costs more than the bytes it
/// reclaims; above it, a long-lived connection would otherwise retain
/// its drained prefix until the buffer happened to empty completely.
const COMPACT_WRITE_BUFFER: usize = 4096;
/// Floor applied to [`EventLoopConfig::max_write_buffer`] when
/// computing backpressure thresholds. A cap smaller than one response
/// line would pause on every answer and — with the resume threshold
/// `cap / 2` rounding to 0 — resume only on a completely drained
/// buffer, flapping poll interest at the boundary. Degenerate configs
/// clamp here instead.
const MIN_WRITE_BUFFER: usize = 4096;

/// The `(pause above, resume at)` byte thresholds of the write-buffer
/// backpressure hysteresis, clamped so that the resume threshold is
/// always strictly below the pause threshold with a non-empty band
/// between them — any configured `max_write_buffer` (including the
/// degenerate 0 and 1) yields a stable two-state machine.
fn backpressure_thresholds(max_write_buffer: usize) -> (usize, usize) {
    let pause_above = max_write_buffer.max(MIN_WRITE_BUFFER);
    (pause_above, pause_above / 2)
}

/// Admission-control and buffering limits of the event loop. Every cap
/// sheds with an explicit `busy` response (counted in
/// [`MetricsSnapshot::shed`]) rather than queueing invisibly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventLoopConfig {
    /// Most connections held open at once; further accepts are answered
    /// `busy` and closed.
    pub max_conns: usize,
    /// Most predictions in the batcher at once across all connections
    /// (the loop-wide concurrency window).
    pub max_inflight: usize,
    /// Most unanswered predictions per connection (a single pipelining
    /// client's window).
    pub max_pending_per_conn: usize,
    /// Write-buffer size past which a connection's *read* interest is
    /// withdrawn until the peer drains half of it — per-slow-client
    /// backpressure.
    pub max_write_buffer: usize,
}

impl Default for EventLoopConfig {
    /// 16384 connections, 1024 in flight, 128 pending per connection,
    /// 256 KiB write buffer.
    fn default() -> Self {
        Self {
            max_conns: 16384,
            max_inflight: 1024,
            max_pending_per_conn: 128,
            max_write_buffer: 256 * 1024,
        }
    }
}

impl EventLoopConfig {
    /// Sets the connection cap.
    #[must_use]
    pub fn max_conns(mut self, n: usize) -> Self {
        self.max_conns = n;
        self
    }

    /// Sets the loop-wide in-flight prediction cap.
    #[must_use]
    pub fn max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = n;
        self
    }

    /// Sets the per-connection unanswered-prediction cap.
    #[must_use]
    pub fn max_pending_per_conn(mut self, n: usize) -> Self {
        self.max_pending_per_conn = n;
        self
    }

    /// Sets the write-buffer backpressure threshold in bytes.
    #[must_use]
    pub fn max_write_buffer(mut self, bytes: usize) -> Self {
        self.max_write_buffer = bytes;
        self
    }
}

/// One finished request on its way back from a scoring worker:
/// connection token, reserved slot sequence number, and the
/// already-rendered response line (class and votes requests render in
/// the worker callback, so the loop fills slots without knowing which
/// kind it was).
type Completion = (u64, u64, String);

/// The epoll-driven TCP inference server (Linux). Protocol,
/// micro-batcher and metrics are shared with the threaded
/// [`Server`](crate::Server); only the connection driving differs.
///
/// ```no_run
/// use flint_serve::{BatchPolicy, EpollServer};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let engine: Box<dyn flint_exec::Predictor> = unimplemented!();
/// let server = EpollServer::bind("127.0.0.1:7878", engine, BatchPolicy::default())?;
/// println!("listening on {}", server.local_addr());
/// let final_stats = server.run()?; // until a client sends `shutdown`
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EpollServer {
    listener: TcpListener,
    local_addr: SocketAddr,
    batcher: Batcher,
    config: EventLoopConfig,
}

impl EpollServer {
    /// Binds `addr` with the default [`EventLoopConfig`] and starts the
    /// micro-batcher over `engine`.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from binding the listener.
    pub fn bind(
        addr: &str,
        engine: Box<dyn Predictor>,
        policy: BatchPolicy,
    ) -> std::io::Result<Self> {
        Self::bind_with_config(addr, engine, policy, EventLoopConfig::default())
    }

    /// Binds `addr` with explicit admission-control limits.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from binding the listener.
    pub fn bind_with_config(
        addr: &str,
        engine: Box<dyn Predictor>,
        policy: BatchPolicy,
        config: EventLoopConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            local_addr,
            batcher: Batcher::start(engine, policy),
            config,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The registry name of the engine answering requests.
    pub fn engine_name(&self) -> &'static str {
        self.batcher.engine_name()
    }

    /// The admission-control limits in force.
    pub fn config(&self) -> EventLoopConfig {
        self.config
    }

    /// Runs the event loop until a client sends `shutdown`, then drains
    /// every in-flight prediction, flushes and closes every connection,
    /// shuts the batcher down and returns the final metrics snapshot.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from the poller or listener (including
    /// `Unsupported` on non-Linux targets); per-connection I/O errors
    /// only end that connection.
    pub fn run(self) -> std::io::Result<MetricsSnapshot> {
        let EpollServer {
            listener,
            local_addr: _,
            batcher,
            config: cfg,
        } = self;
        let poller = Poller::new()?;
        let waker = Waker::new()?;
        listener.set_nonblocking(true)?;
        poller.add(listener.as_raw_fd(), LISTENER, Interest::READ)?;
        poller.add(waker.read_fd(), WAKER, Interest::READ)?;

        let handle = batcher.handle();
        let metrics = batcher.metrics_shared();
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut events = Events::with_capacity(1024);
        let mut next_token = FIRST_CONN;
        let mut inflight = 0usize;
        let mut stopping = false;
        let mut accepting = true;
        let mut dirty: Vec<u64> = Vec::new();

        loop {
            poller.wait(&mut events, Some(POLL_TICK))?;
            dirty.clear();
            // Copy the reports out so `events` is free for the next
            // wait and the borrow checker is free for `conns`.
            let ready: Vec<epoll::Event> = events.iter().collect();
            for event in ready {
                match event.token {
                    LISTENER => accept_ready(
                        &listener,
                        &poller,
                        &mut conns,
                        &mut next_token,
                        &metrics,
                        &cfg,
                        stopping,
                    )?,
                    WAKER => waker.drain(),
                    token => {
                        if let Some(conn) = conns.get_mut(&token) {
                            if event.readable || event.closed {
                                read_ready(
                                    conn,
                                    token,
                                    &handle,
                                    &metrics,
                                    &completions,
                                    &waker,
                                    &cfg,
                                    &mut inflight,
                                    &mut stopping,
                                );
                            }
                            dirty.push(token);
                        }
                    }
                }
            }

            // Scored predictions land in the slots they reserved. The
            // in-flight window shrinks even when the connection is
            // already gone — the batcher did the work either way.
            let done: Vec<Completion> =
                std::mem::take(&mut *completions.lock().expect("completion queue lock"));
            for (token, seq, line) in done {
                inflight = inflight.saturating_sub(1);
                if let Some(conn) = conns.get_mut(&token) {
                    conn.fill_slot(seq, line);
                    dirty.push(token);
                }
            }

            if stopping && accepting {
                accepting = false;
                let _ = poller.delete(listener.as_raw_fd());
            }
            if stopping {
                // Idle connections drain and close too, not just the
                // ones with activity this tick.
                dirty.extend(conns.keys().copied());
            }
            dirty.sort_unstable();
            dirty.dedup();
            for token in dirty.drain(..) {
                let Some(conn) = conns.get_mut(&token) else {
                    continue;
                };
                if conn.pump(&poller, token, &metrics, &cfg, stopping) {
                    let conn = conns.remove(&token).expect("live connection");
                    let _ = poller.delete(conn.stream.as_raw_fd());
                    metrics.record_disconnect();
                }
            }

            if stopping && conns.is_empty() && inflight == 0 {
                break;
            }
        }
        Ok(batcher.shutdown())
    }
}

/// One live client connection: its nonblocking stream, framing
/// machine, write buffer, and the ordered response slots that keep
/// per-connection request/response order under out-of-order
/// completion. Public so other event-loop front ends (the fan-out
/// router) drive the exact same connection layer — framing, slot
/// ordering, backpressure and buffer hygiene cannot diverge between
/// a shard and the router in front of it.
#[derive(Debug)]
pub struct Conn {
    /// The nonblocking socket.
    pub stream: TcpStream,
    /// Sans-io request framing for this connection's byte stream.
    pub machine: ProtocolMachine,
    /// Bytes waiting for the socket; `out_pos..` is still unsent.
    out: Vec<u8>,
    out_pos: usize,
    /// One slot per not-yet-flushed request, in arrival order: `None`
    /// while its prediction is in flight, `Some(line)` once answered.
    /// Only the answered *prefix* may be written out.
    slots: VecDeque<Option<String>>,
    /// Sequence number of `slots.front()`.
    base_seq: u64,
    /// Slots still `None` (this connection's in-flight window).
    pending: usize,
    /// Peer half-closed its write side; drain then close.
    pub eof: bool,
    /// Transport failed; close without draining.
    pub dead: bool,
    /// Read interest withdrawn while the write buffer is over the cap.
    paused: bool,
    want_read: bool,
    want_write: bool,
}

impl Conn {
    /// Wraps an accepted, already-nonblocking stream.
    pub fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            machine: ProtocolMachine::new(),
            out: Vec::new(),
            out_pos: 0,
            slots: VecDeque::new(),
            base_seq: 0,
            pending: 0,
            eof: false,
            dead: false,
            paused: false,
            want_read: true,
            want_write: false,
        }
    }

    /// Appends an already-answered slot (stats, errors, busy lines).
    pub fn push_response(&mut self, line: String) {
        self.slots.push_back(Some(line));
    }

    /// Requests awaiting answers on this connection (the per-connection
    /// in-flight window admission control checks).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Reads whatever the socket has ready (bounded per readiness
    /// report; level-triggered epoll re-reports leftovers) through the
    /// framing machine and returns the completed wire events. Marks
    /// the connection `eof` / `dead` as the socket dictates.
    pub fn read_wire_events(&mut self, metrics: &ServeMetrics) -> Vec<WireEvent> {
        let mut buf = [0u8; READ_CHUNK];
        let mut wire: Vec<WireEvent> = Vec::new();
        for _ in 0..READ_BURSTS {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.eof = true;
                    // A final unterminated line is still a request
                    // (`BufRead::lines` semantics, same as the
                    // threaded front end).
                    wire.extend(self.machine.finish());
                    break;
                }
                Ok(n) => {
                    self.machine.receive(&buf[..n], |event| wire.push(event));
                    metrics.record_read_buffer(self.machine.buffered());
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Transport failure voids the connection: nothing
                    // already framed is worth answering.
                    self.dead = true;
                    return Vec::new();
                }
            }
        }
        wire
    }

    /// Reserves the next slot for an in-flight request and returns
    /// its sequence number.
    pub fn reserve_slot(&mut self) -> u64 {
        let seq = self.base_seq + self.slots.len() as u64;
        self.slots.push_back(None);
        self.pending += 1;
        seq
    }

    /// Delivers a response into its reserved slot.
    pub fn fill_slot(&mut self, seq: u64, line: String) {
        let idx = seq.wrapping_sub(self.base_seq) as usize;
        if let Some(slot @ None) = self.slots.get_mut(idx) {
            *slot = Some(line);
            self.pending -= 1;
        }
    }

    /// Moves the answered slot prefix into the write buffer, flushes as
    /// much as the socket takes, updates backpressure state and poll
    /// interest. Returns true when the connection should be closed
    /// (dead, or drained after EOF / during shutdown).
    pub fn pump(
        &mut self,
        poller: &Poller,
        token: u64,
        metrics: &ServeMetrics,
        cfg: &EventLoopConfig,
        stopping: bool,
    ) -> bool {
        if self.dead {
            return true;
        }
        while matches!(self.slots.front(), Some(Some(_))) {
            let line = self
                .slots
                .pop_front()
                .flatten()
                .expect("answered slot prefix");
            self.base_seq += 1;
            self.out.extend_from_slice(line.as_bytes());
            self.out.push(b'\n');
        }
        metrics.record_write_buffer(self.out.len() - self.out_pos);
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    return true;
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return true;
                }
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        } else if self.out_pos >= COMPACT_WRITE_BUFFER {
            // Reclaim the drained prefix: without this a connection
            // that is never fully flushed in one pump (a slow reader
            // under pipelined load) keeps every byte it ever sent,
            // and the buffer tracks lifetime traffic instead of the
            // bytes still owed to the socket.
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        if self.out.is_empty() && self.slots.is_empty() && (self.eof || stopping) {
            return true;
        }
        let buffered = self.out.len() - self.out_pos;
        let (pause_above, resume_at) = backpressure_thresholds(cfg.max_write_buffer);
        if !self.paused && buffered > pause_above {
            self.paused = true;
        } else if self.paused && buffered <= resume_at {
            self.paused = false;
        }
        let want_read = !self.eof && !self.paused;
        let want_write = self.out_pos < self.out.len();
        if (want_read, want_write) != (self.want_read, self.want_write) {
            self.want_read = want_read;
            self.want_write = want_write;
            let _ = poller.modify(
                self.stream.as_raw_fd(),
                token,
                Interest {
                    readable: want_read,
                    writable: want_write,
                },
            );
        }
        false
    }
}

/// Drains the accept queue: new connections are registered read-only,
/// or turned away with one `busy` line when over the cap (or during
/// shutdown).
fn accept_ready(
    listener: &TcpListener,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    metrics: &ServeMetrics,
    cfg: &EventLoopConfig,
    stopping: bool,
) -> std::io::Result<()> {
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if stopping || conns.len() >= cfg.max_conns {
                    metrics.record_shed();
                    let reason = if stopping {
                        "server shutting down".to_owned()
                    } else {
                        format!("connection limit {} reached", cfg.max_conns)
                    };
                    // Best effort: a just-accepted socket has an empty
                    // send buffer, so this short line will not block.
                    let mut line = render_busy(&reason);
                    line.push('\n');
                    let _ = stream.set_nodelay(true);
                    let _ = stream.write_all(line.as_bytes());
                    continue; // drop closes it
                }
                stream.set_nonblocking(true)?;
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                poller.add(stream.as_raw_fd(), token, Interest::READ)?;
                metrics.record_connect();
                conns.insert(token, Conn::new(stream));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            // Transient per-connection accept failures (ECONNABORTED
            // and friends): skip, the listener itself is fine.
            Err(_) => return Ok(()),
        }
    }
}

/// Reads whatever the socket has (bounded per readiness report), feeds
/// it through the framing machine and dispatches every completed line.
#[allow(clippy::too_many_arguments)]
fn read_ready(
    conn: &mut Conn,
    token: u64,
    handle: &BatchHandle,
    metrics: &ServeMetrics,
    completions: &Arc<Mutex<Vec<Completion>>>,
    waker: &Waker,
    cfg: &EventLoopConfig,
    inflight: &mut usize,
    stopping: &mut bool,
) {
    for event in conn.read_wire_events(metrics) {
        dispatch_wire_event(
            conn,
            token,
            event,
            handle,
            metrics,
            completions,
            waker,
            cfg,
            inflight,
            stopping,
        );
    }
}

/// Turns one framing event into either an immediate response slot or an
/// in-flight prediction with a reserved slot.
#[allow(clippy::too_many_arguments)]
fn dispatch_wire_event(
    conn: &mut Conn,
    token: u64,
    event: WireEvent,
    handle: &BatchHandle,
    metrics: &ServeMetrics,
    completions: &Arc<Mutex<Vec<Completion>>>,
    waker: &Waker,
    cfg: &EventLoopConfig,
    inflight: &mut usize,
    stopping: &mut bool,
) {
    let (row, wants_votes) = match event {
        WireEvent::Request(Request::Predict(row)) => (row, false),
        WireEvent::Request(Request::Votes(row)) => (row, true),
        other => {
            // Stats, shutdown, malformed and oversized lines answer
            // without touching the batcher — same renderings as the
            // threaded front end, so the wire format cannot diverge.
            let (response, action) = respond_event(other, handle);
            conn.push_response(response);
            if action == Action::Shutdown {
                *stopping = true;
            }
            return;
        }
    };
    if conn.pending >= cfg.max_pending_per_conn {
        metrics.record_shed();
        conn.push_response(render_busy(&format!(
            "connection pending cap {} reached",
            cfg.max_pending_per_conn
        )));
        return;
    }
    if *inflight >= cfg.max_inflight {
        metrics.record_shed();
        conn.push_response(render_busy(&format!(
            "max-inflight {} reached",
            cfg.max_inflight
        )));
        return;
    }
    let seq = conn.reserve_slot();
    let queue = Arc::clone(completions);
    let wake = waker.clone();
    let engine = handle.engine_name();
    // The worker callback renders the response line itself: class and
    // votes requests then share one completion queue and the loop
    // fills slots without caring which kind produced the line.
    let submitted = if wants_votes {
        handle.try_submit_votes(&row, move |reply| {
            let line = render_votes(&reply.votes, engine, reply.batch_fill);
            queue
                .lock()
                .expect("completion queue lock")
                .push((token, seq, line));
            wake.wake();
        })
    } else {
        handle.try_submit(&row, move |prediction| {
            let line = render_prediction(&prediction, engine);
            queue
                .lock()
                .expect("completion queue lock")
                .push((token, seq, line));
            wake.wake();
        })
    };
    match submitted {
        Ok(()) => *inflight += 1,
        // `try_submit` already counted the shed / rejection; the
        // reserved slot is answered inline so ordering holds.
        Err(ServeError::Busy) => conn.fill_slot(seq, render_busy("request queue full")),
        Err(e) => conn.fill_slot(seq, render_error(&e.to_string())),
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use flint_data::synth::SynthSpec;
    use flint_exec::{EngineBuilder, EngineKind};
    use flint_forest::{ForestConfig, RandomForest};
    use std::io::{BufRead, BufReader};

    fn engine_and_data() -> (Box<dyn Predictor>, RandomForest, flint_data::Dataset) {
        let data = SynthSpec::new(90, 4, 3).seed(5).generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(4, 6)).expect("trainable");
        let engine = EngineBuilder::new(&forest)
            .build(EngineKind::parse("flint-blocked").expect("registered"))
            .expect("builds");
        (engine, forest, data)
    }

    #[test]
    fn epoll_server_round_trips_the_protocol() {
        let (engine, forest, data) = engine_and_data();
        let server = EpollServer::bind("127.0.0.1:0", engine, BatchPolicy::default().workers(2))
            .expect("binds loopback");
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || server.run().expect("serves"));

        let stream = TcpStream::connect(addr).expect("connects");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(stream.try_clone().expect("clones"));
        let mut writer = stream;
        let mut line = String::new();
        for i in 0..6 {
            let row: Vec<String> = data.sample(i).iter().map(f32::to_string).collect();
            writeln!(writer, "{}", row.join(",")).expect("writes");
            line.clear();
            reader.read_line(&mut line).expect("reads");
            let expected = forest.predict_majority(data.sample(i));
            assert!(
                line.starts_with(&format!("{{\"class\":{expected},")),
                "sample {i}: {line}"
            );
            assert!(line.contains("\"engine\":\"flint-blocked\""), "{line}");
        }
        writeln!(writer, "1.0,2.0").expect("writes"); // wrong arity
        line.clear();
        reader.read_line(&mut line).expect("reads");
        assert!(line.contains("expected 4 features, got 2"), "{line}");
        writeln!(writer, "stats").expect("writes");
        line.clear();
        reader.read_line(&mut line).expect("reads");
        assert!(line.contains("\"requests\":6"), "{line}");
        assert!(line.contains("\"connections\":1"), "{line}");
        writeln!(writer, "shutdown").expect("writes");
        line.clear();
        reader.read_line(&mut line).expect("reads");
        assert!(line.contains("shutting down"), "{line}");
        let stats = runner.join().expect("server thread");
        assert_eq!(stats.requests, 6);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.connections, 0, "all connections closed");
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let (engine, forest, data) = engine_and_data();
        let server = EpollServer::bind("127.0.0.1:0", engine, BatchPolicy::default().workers(2))
            .expect("binds loopback");
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || server.run().expect("serves"));

        // Fire a burst of requests without reading a single response:
        // replies must come back in request order even though batches
        // complete out of lockstep.
        let stream = TcpStream::connect(addr).expect("connects");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(stream.try_clone().expect("clones"));
        let mut writer = stream;
        let mut burst = String::new();
        for i in 0..32 {
            let row: Vec<String> = data.sample(i % 90).iter().map(f32::to_string).collect();
            burst.push_str(&row.join(","));
            burst.push('\n');
        }
        writer.write_all(burst.as_bytes()).expect("writes");
        let mut line = String::new();
        for i in 0..32 {
            line.clear();
            reader.read_line(&mut line).expect("reads");
            let expected = forest.predict_majority(data.sample(i % 90));
            assert!(
                line.starts_with(&format!("{{\"class\":{expected},")),
                "response {i} out of order: {line}"
            );
        }
        writeln!(writer, "shutdown").expect("writes");
        runner.join().expect("server thread");
    }

    #[test]
    fn inflight_cap_sheds_with_busy_responses() {
        let (engine, _, data) = engine_and_data();
        // A zero in-flight window: every predict sheds, but stats and
        // shutdown still answer.
        let server = EpollServer::bind_with_config(
            "127.0.0.1:0",
            engine,
            BatchPolicy::default(),
            EventLoopConfig::default().max_inflight(0),
        )
        .expect("binds loopback");
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || server.run().expect("serves"));

        let stream = TcpStream::connect(addr).expect("connects");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(stream.try_clone().expect("clones"));
        let mut writer = stream;
        let row: Vec<String> = data.sample(0).iter().map(f32::to_string).collect();
        let mut line = String::new();
        for _ in 0..3 {
            writeln!(writer, "{}", row.join(",")).expect("writes");
            line.clear();
            reader.read_line(&mut line).expect("reads");
            assert!(line.contains("\"busy\":true"), "{line}");
            assert!(line.contains("max-inflight 0"), "{line}");
        }
        writeln!(writer, "stats").expect("writes");
        line.clear();
        reader.read_line(&mut line).expect("reads");
        assert!(line.contains("\"shed\":3"), "{line}");
        assert!(line.contains("\"requests\":0"), "{line}");
        writeln!(writer, "shutdown").expect("writes");
        line.clear();
        reader.read_line(&mut line).expect("reads");
        assert!(line.contains("shutting down"), "{line}");
        let stats = runner.join().expect("server thread");
        assert_eq!(stats.shed, 3);
    }

    #[test]
    fn connection_cap_turns_extra_clients_away() {
        let (engine, _, data) = engine_and_data();
        let server = EpollServer::bind_with_config(
            "127.0.0.1:0",
            engine,
            BatchPolicy::default(),
            EventLoopConfig::default().max_conns(1),
        )
        .expect("binds loopback");
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || server.run().expect("serves"));

        let keeper = TcpStream::connect(addr).expect("connects");
        keeper.set_nodelay(true).expect("nodelay");
        let mut keeper_reader = BufReader::new(keeper.try_clone().expect("clones"));
        let mut keeper_writer = keeper;
        // Prove the first connection is in before the second dials.
        let row: Vec<String> = data.sample(0).iter().map(f32::to_string).collect();
        writeln!(keeper_writer, "{}", row.join(",")).expect("writes");
        let mut line = String::new();
        keeper_reader.read_line(&mut line).expect("reads");
        assert!(line.contains("\"class\":"), "{line}");

        let turned_away = TcpStream::connect(addr).expect("connects");
        let mut reader = BufReader::new(turned_away);
        line.clear();
        reader.read_line(&mut line).expect("reads busy line");
        assert!(line.contains("\"busy\":true"), "{line}");
        assert!(line.contains("connection limit 1"), "{line}");
        line.clear();
        // ...and the socket is closed right after.
        assert_eq!(reader.read_line(&mut line).expect("eof"), 0);

        writeln!(keeper_writer, "shutdown").expect("writes");
        runner.join().expect("server thread");
    }

    #[test]
    fn idle_connections_survive_and_close_on_shutdown() {
        let (engine, _, _) = engine_and_data();
        let server = EpollServer::bind("127.0.0.1:0", engine, BatchPolicy::default())
            .expect("binds loopback");
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || server.run().expect("serves"));

        let idle: Vec<TcpStream> = (0..64)
            .map(|_| TcpStream::connect(addr).expect("connects"))
            .collect();
        let admin = TcpStream::connect(addr).expect("connects");
        admin.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(admin.try_clone().expect("clones"));
        let mut writer = admin;
        // Wait until every idle connection has been accepted into the
        // loop (accept is asynchronous from connect returning).
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut line = String::new();
        loop {
            writeln!(writer, "stats").expect("writes");
            line.clear();
            reader.read_line(&mut line).expect("reads");
            if line.contains("\"connections\":65") {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "idle connections never registered: {line}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        writeln!(writer, "shutdown").expect("writes");
        line.clear();
        reader.read_line(&mut line).expect("reads");
        assert!(line.contains("shutting down"), "{line}");
        let stats = runner.join().expect("server thread");
        assert_eq!(stats.accepted, 65);
        assert_eq!(stats.connections, 0, "idle connections all closed");
        drop(idle);
    }

    #[test]
    fn votes_requests_round_trip_with_reference_histograms() {
        let (engine, forest, data) = engine_and_data();
        let server = EpollServer::bind("127.0.0.1:0", engine, BatchPolicy::default().workers(2))
            .expect("binds loopback");
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || server.run().expect("serves"));

        let stream = TcpStream::connect(addr).expect("connects");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(stream.try_clone().expect("clones"));
        let mut writer = stream;
        let mut line = String::new();
        for i in 0..6 {
            let row: Vec<String> = data.sample(i).iter().map(f32::to_string).collect();
            writeln!(writer, "votes:{}", row.join(",")).expect("writes");
            line.clear();
            reader.read_line(&mut line).expect("reads");
            let expected = flint_forest::votes::render_votes(&forest.predict_votes(data.sample(i)));
            assert!(
                line.starts_with(&format!(
                    "{{\"votes\":{expected},\"engine\":\"flint-blocked\""
                )),
                "sample {i}: {line}"
            );
        }
        // Class and votes requests pipelined on one connection answer
        // in request order even though they render differently.
        let row: Vec<String> = data.sample(7).iter().map(f32::to_string).collect();
        writeln!(writer, "{}\nvotes:{}", row.join(","), row.join(",")).expect("writes");
        line.clear();
        reader.read_line(&mut line).expect("reads");
        let class = forest.predict_majority(data.sample(7));
        assert!(line.starts_with(&format!("{{\"class\":{class},")), "{line}");
        line.clear();
        reader.read_line(&mut line).expect("reads");
        assert!(line.starts_with("{\"votes\":"), "{line}");
        writeln!(writer, "shutdown").expect("writes");
        runner.join().expect("server thread");
    }

    #[test]
    fn backpressure_thresholds_never_degenerate() {
        for cap in [0, 1, 2, 7, 4095, 4096, 1 << 20] {
            let (pause_above, resume_at) = backpressure_thresholds(cap);
            assert!(pause_above >= cap, "cap {cap}: clamp only raises the cap");
            assert!(
                resume_at < pause_above,
                "cap {cap}: hysteresis band must be non-empty"
            );
            // The original bug: resume_at = cap / 2 rounds to 0 for
            // cap <= 1, so a paused connection could only resume on a
            // completely drained buffer.
            assert!(
                resume_at >= 1,
                "cap {cap}: paused connections must resume before a full drain"
            );
        }
    }

    #[test]
    fn degenerate_write_buffer_config_still_delivers_every_response() {
        let (engine, forest, data) = engine_and_data();
        // max_write_buffer(0) is the degenerate corner: unclamped it
        // would pause on the first buffered byte and resume only at
        // zero. The clamped thresholds must keep a pipelined burst
        // flowing to completion, in order.
        let server = EpollServer::bind_with_config(
            "127.0.0.1:0",
            engine,
            BatchPolicy::default().workers(2),
            EventLoopConfig::default()
                .max_write_buffer(0)
                .max_pending_per_conn(512),
        )
        .expect("binds loopback");
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || server.run().expect("serves"));

        let stream = TcpStream::connect(addr).expect("connects");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(stream.try_clone().expect("clones"));
        let mut writer = stream;
        let mut burst = String::new();
        for i in 0..256 {
            let row: Vec<String> = data.sample(i % 90).iter().map(f32::to_string).collect();
            burst.push_str(&row.join(","));
            burst.push('\n');
        }
        writer.write_all(burst.as_bytes()).expect("writes");
        let mut line = String::new();
        for i in 0..256 {
            line.clear();
            reader.read_line(&mut line).expect("reads");
            let expected = forest.predict_majority(data.sample(i % 90));
            assert!(
                line.starts_with(&format!("{{\"class\":{expected},")),
                "response {i}: {line}"
            );
        }
        writeln!(writer, "shutdown").expect("writes");
        runner.join().expect("server thread");
    }

    #[test]
    fn write_buffer_compacts_and_hwm_tracks_live_bytes() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connects");
        let (server_side, _) = listener.accept().expect("accepts");
        server_side.set_nonblocking(true).expect("nonblocking");

        let poller = Poller::new().expect("poller");
        poller
            .add(server_side.as_raw_fd(), FIRST_CONN, Interest::READ)
            .expect("registers");
        let metrics = ServeMetrics::default();
        let cfg = EventLoopConfig::default().max_write_buffer(1);
        let mut conn = Conn::new(server_side);

        // Stage far more than the kernel socket buffers will take while
        // the peer reads nothing, so the flush stalls mid-buffer.
        const LINE: usize = 1 << 20;
        const LINES: usize = 32;
        for _ in 0..LINES {
            conn.push_response("x".repeat(LINE));
        }
        let staged = LINES * (LINE + 1); // one newline per line
        assert!(!conn.pump(&poller, FIRST_CONN, &metrics, &cfg, false));
        assert!(
            conn.out.len() - conn.out_pos > 0,
            "kernel swallowed {staged} bytes with an unread peer"
        );
        assert!(conn.paused, "a buffer this deep must pause reads");
        // The gauge records live staged bytes, not buffer capacity.
        assert_eq!(metrics.snapshot().write_hwm, staged as u64);

        // Drain from the client side while pumping: the drained prefix
        // must keep being reclaimed (out_pos never lingers past the
        // compaction threshold) and the live buffer must shrink long
        // before the final byte — without compaction `out` retains
        // every byte ever sent until a lucky full drain.
        let mut sink = vec![0u8; 1 << 16];
        let mut total_read = 0;
        let mut saw_shrunk_live_buffer = false;
        while total_read < staged {
            let n = client.read(&mut sink).expect("reads");
            assert!(n > 0, "peer hung up early at {total_read}/{staged}");
            total_read += n;
            assert!(!conn.pump(&poller, FIRST_CONN, &metrics, &cfg, false));
            assert!(
                conn.out_pos < COMPACT_WRITE_BUFFER,
                "drained prefix of {} bytes was never compacted",
                conn.out_pos
            );
            if !conn.out.is_empty() && conn.out.len() < staged / 2 {
                saw_shrunk_live_buffer = true;
            }
        }
        assert!(
            saw_shrunk_live_buffer,
            "write buffer never compacted mid-drain"
        );
        assert!(conn.out.is_empty(), "fully acked buffer should be clear");
        assert!(!conn.paused, "drained connection must resume reads");
        assert_eq!(metrics.snapshot().write_hwm, staged as u64);
    }
}
