//! Differential serving suite: for **every** engine of the registry,
//! responses returned through the TCP server are bit-identical to
//! direct `RandomForest::predict_majority` on the same rows, across
//! batch-size caps {1, 7, 64} with a 2-thread worker pool and
//! concurrent client connections — the serving-layer extension of the
//! engine-equivalence suite. The whole suite runs through **both**
//! serving front ends (the `threads` baseline and the `epoll` event
//! loop), and a dedicated cross-front-end pass proves the two return
//! **byte-identical** response lines — predictions, parse errors and
//! oversized-line verdicts alike — for the same request stream.
//!
//! The engine list is taken from `EngineKind::ALL` at run time, so a
//! new registry variant (the SIMD lane engines arrived this way) is
//! served and diffed with zero changes here;
//! [`differential_suite_covers_every_known_registry_name`] is the
//! regression guard that fails loudly if a name ever *leaves* the
//! registry and silently shrinks this suite's coverage.

use flint_data::synth::SynthSpec;
use flint_data::Dataset;
use flint_exec::{EngineBuilder, EngineKind, HalfForest};
use flint_forest::{ForestConfig, RandomForest};
use flint_serve::{BatchPolicy, EpollServer, FrontEnd, MetricsSnapshot, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

fn model() -> (Dataset, RandomForest) {
    let data = SynthSpec::new(48, 4, 3)
        .cluster_std(1.0)
        .negative_fraction(0.5)
        .seed(33)
        .generate();
    let forest = RandomForest::fit(&data, &ForestConfig::grid(5, 6)).expect("trainable");
    (data, forest)
}

/// Pulls the `"class"` value out of a response line, failing loudly on
/// error responses.
fn response_class(line: &str) -> u32 {
    let rest = line
        .split_once("\"class\":")
        .unwrap_or_else(|| panic!("not a prediction: {line}"))
        .1;
    rest.split(&[',', '}'][..])
        .next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("malformed class in {line}"))
}

/// The floor of names the suite above must cover. `EngineKind::ALL`
/// growing past this list is fine (new engines are covered
/// automatically); any name *disappearing* means the differential
/// suite quietly stopped proving that engine and must fail here.
#[test]
fn differential_suite_covers_every_known_registry_name() {
    const REQUIRED: [&str; 21] = [
        "naive",
        "cags",
        "flint",
        "cags-flint",
        "softfloat",
        "naive-blocked",
        "cags-blocked",
        "flint-blocked",
        "cags-flint-blocked",
        "softfloat-blocked",
        "quickscorer",
        "quickscorer-float",
        "vm-flint",
        "vm-float",
        "vm-softfloat",
        "simd",
        "simd-float",
        "jit",
        "jit-float",
        "simd-f16",
        "simd-f16-float",
    ];
    let names: std::collections::BTreeSet<&str> =
        EngineKind::ALL.iter().map(|k| k.name()).collect();
    assert_eq!(
        names.len(),
        EngineKind::ALL.len(),
        "duplicate names in EngineKind::ALL"
    );
    for required in REQUIRED {
        assert!(
            names.contains(required),
            "engine {required:?} left the registry — the serving differential \
             suite no longer proves it bit-identical"
        );
    }
}

/// Binds and runs one server of the requested front end, returning the
/// address and the thread that joins to the final stats snapshot.
fn spawn_front_end(
    front_end: FrontEnd,
    engine: Box<dyn flint_exec::Predictor>,
    policy: BatchPolicy,
) -> (SocketAddr, JoinHandle<MetricsSnapshot>) {
    match front_end {
        FrontEnd::Epoll => {
            let server =
                EpollServer::bind("127.0.0.1:0", engine, policy).expect("binds an ephemeral port");
            let addr = server.local_addr();
            (
                addr,
                std::thread::spawn(move || server.run().expect("serves")),
            )
        }
        FrontEnd::Threads => {
            let server =
                Server::bind("127.0.0.1:0", engine, policy).expect("binds an ephemeral port");
            let addr = server.local_addr();
            (
                addr,
                std::thread::spawn(move || server.run().expect("serves")),
            )
        }
    }
}

fn every_engine_serves_bit_identical_predictions(front_end: FrontEnd) {
    let (data, forest) = model();
    let builder = EngineBuilder::new(&forest).profile_data(&data);
    const CLIENTS: usize = 4;

    for kind in EngineKind::ALL {
        // Each engine is diffed against its comparison family's scalar
        // reference: the f32 majority vote for exact engines, the
        // binary16 forest's scalar walk for the f16 engines.
        let reference: Vec<u32> = match kind {
            EngineKind::SimdF16(compare) => {
                let half = HalfForest::compile(&forest, compare).expect("compiles");
                (0..data.n_samples())
                    .map(|i| half.predict(data.sample(i)))
                    .collect()
            }
            _ => (0..data.n_samples())
                .map(|i| forest.predict_majority(data.sample(i)))
                .collect(),
        };
        let reference = &reference;
        for max_batch in [1usize, 7, 64] {
            let policy = BatchPolicy::default()
                .max_batch(max_batch)
                .linger(Duration::from_micros(300))
                .workers(2);
            let engine = builder.build(kind).expect("registered engines build");
            let (addr, runner) = spawn_front_end(front_end, engine, policy);

            // Concurrent closed-loop clients, each owning a strided
            // slice of the rows, so batches really do mix rows from
            // different connections.
            std::thread::scope(|scope| {
                for client in 0..CLIENTS {
                    let data = &data;
                    let reference = &reference;
                    scope.spawn(move || {
                        let stream = TcpStream::connect(addr).expect("connects");
                        stream.set_nodelay(true).expect("nodelay");
                        let mut reader = BufReader::new(stream.try_clone().expect("clones"));
                        let mut writer = stream;
                        let mut line = String::new();
                        for i in (client..data.n_samples()).step_by(CLIENTS) {
                            let row: Vec<String> =
                                data.sample(i).iter().map(f32::to_string).collect();
                            writer
                                .write_all((row.join(",") + "\n").as_bytes())
                                .expect("writes");
                            line.clear();
                            reader.read_line(&mut line).expect("reads");
                            assert_eq!(
                                response_class(&line),
                                reference[i],
                                "{kind} max_batch {max_batch} sample {i}: {line}"
                            );
                        }
                    });
                }
            });

            let stream = TcpStream::connect(addr).expect("connects");
            let mut reader = BufReader::new(stream.try_clone().expect("clones"));
            let mut writer = stream;
            writeln!(writer, "shutdown").expect("writes");
            let mut line = String::new();
            reader.read_line(&mut line).expect("reads");
            let stats = runner.join().expect("server thread");
            assert_eq!(
                stats.requests,
                data.n_samples() as u64,
                "{kind} max_batch {max_batch}"
            );
            assert!(
                stats.mean_fill <= max_batch as f64,
                "{kind} max_batch {max_batch}: fill {}",
                stats.mean_fill
            );
        }
    }
}

#[test]
fn every_engine_is_bit_identical_through_the_threads_front_end() {
    every_engine_serves_bit_identical_predictions(FrontEnd::Threads);
}

#[cfg(target_os = "linux")]
#[test]
fn every_engine_is_bit_identical_through_the_epoll_front_end() {
    every_engine_serves_bit_identical_predictions(FrontEnd::Epoll);
}

/// Replays one fixed request stream — every model row, a malformed
/// line, an oversized line and the shutdown command — through both
/// front ends and asserts the response transcripts are **byte
/// identical**, for every engine. `max_batch(1)` pins the reported
/// batch fill so prediction lines are fully deterministic; the error
/// and oversized verdicts must agree because both front ends share the
/// sans-io `ProtocolMachine` and the same renderers.
#[cfg(target_os = "linux")]
#[test]
fn front_ends_return_byte_identical_response_streams() {
    let (data, forest) = model();
    let builder = EngineBuilder::new(&forest).profile_data(&data);
    let mut request_stream = String::new();
    for i in 0..data.n_samples() {
        let row: Vec<String> = data.sample(i).iter().map(f32::to_string).collect();
        request_stream.push_str(&(row.join(",") + "\n"));
    }
    request_stream.push_str("not,a,number\n");
    request_stream.push_str(&"9".repeat(70 * 1024));
    request_stream.push('\n');
    request_stream.push_str("shutdown\n");
    let expected_lines = data.n_samples() + 3;

    for kind in EngineKind::ALL {
        let transcripts: Vec<Vec<String>> = FrontEnd::ALL
            .iter()
            .map(|&front_end| {
                let policy = BatchPolicy::default()
                    .max_batch(1)
                    .linger(Duration::from_micros(100))
                    .workers(2);
                let engine = builder.build(kind).expect("registered engines build");
                let (addr, runner) = spawn_front_end(front_end, engine, policy);
                let stream = TcpStream::connect(addr).expect("connects");
                stream.set_nodelay(true).expect("nodelay");
                let mut reader = BufReader::new(stream.try_clone().expect("clones"));
                let mut writer = stream;
                writer
                    .write_all(request_stream.as_bytes())
                    .expect("writes the pipelined stream");
                let mut lines = Vec::with_capacity(expected_lines);
                let mut line = String::new();
                for _ in 0..expected_lines {
                    line.clear();
                    reader.read_line(&mut line).expect("reads");
                    lines.push(line.clone());
                }
                runner.join().expect("server thread");
                lines
            })
            .collect();
        assert_eq!(
            transcripts[0], transcripts[1],
            "{kind}: front ends disagreed byte-for-byte"
        );
    }
}
