//! Batcher policy edge cases: the linger deadline, the max-batch cap,
//! wrong-arity rejection, shutdown drain semantics, and the
//! non-blocking `try_submit` admission path the epoll front end rides
//! (callback completion, arity rejection before queueing, and `Busy`
//! shedding once the bounded pipeline is genuinely full).

use flint_data::synth::SynthSpec;
use flint_data::Dataset;
use flint_exec::{EngineBuilder, EngineKind};
use flint_forest::{ForestConfig, RandomForest};
use flint_serve::{BatchPolicy, Batcher, ServeError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

fn model() -> (Dataset, RandomForest) {
    let data = SynthSpec::new(100, 4, 3).seed(11).generate();
    let forest = RandomForest::fit(&data, &ForestConfig::grid(4, 6)).expect("trainable");
    (data, forest)
}

fn batcher(forest: &RandomForest, policy: BatchPolicy) -> Batcher {
    let engine = EngineBuilder::new(forest)
        .build(EngineKind::parse("flint-blocked").expect("registered"))
        .expect("builds");
    Batcher::start(engine, policy)
}

#[test]
fn linger_deadline_flushes_a_partial_batch() {
    let (data, forest) = model();
    // max_batch will never fill from one request: only the linger
    // deadline can dispatch it.
    let policy = BatchPolicy::default()
        .max_batch(64)
        .linger(Duration::from_millis(5));
    let batcher = batcher(&forest, policy);
    let start = Instant::now();
    let prediction = batcher.handle().predict(data.sample(0)).expect("scored");
    assert_eq!(prediction.class, forest.predict_majority(data.sample(0)));
    assert_eq!(prediction.batch_fill, 1, "partial batch flushed alone");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "linger flush must not wait for a full batch"
    );
    let stats = batcher.shutdown();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.batches, 1);
}

#[test]
fn a_full_batch_dispatches_before_the_linger_deadline() {
    let (data, forest) = model();
    // The linger is far longer than the test budget: only the
    // max-batch cap can dispatch in time.
    let policy = BatchPolicy::default()
        .max_batch(4)
        .linger(Duration::from_secs(30));
    let batcher = batcher(&forest, policy);
    let start = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let handle = batcher.handle();
                let row = data.sample(i).to_vec();
                scope.spawn(move || handle.predict(&row).expect("scored"))
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let prediction = h.join().expect("request thread");
            assert_eq!(prediction.class, forest.predict_majority(data.sample(i)));
            assert_eq!(
                prediction.batch_fill, 4,
                "batch closed exactly at max_batch"
            );
        }
    });
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "a full batch must not wait for the linger deadline"
    );
    let stats = batcher.shutdown();
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.mean_fill, 4.0);
}

#[test]
fn wrong_arity_is_rejected_without_poisoning_the_queue() {
    let (data, forest) = model();
    let batcher = batcher(&forest, BatchPolicy::default().linger(Duration::ZERO));
    let handle = batcher.handle();
    let err = handle.predict(&[1.0, 2.0]).unwrap_err();
    assert_eq!(
        err,
        ServeError::WrongArity {
            expected: 4,
            got: 2
        }
    );
    let err = handle.predict(&[0.0; 9]).unwrap_err();
    assert!(
        matches!(err, ServeError::WrongArity { got: 9, .. }),
        "{err}"
    );
    // The queue is intact: well-formed requests still score correctly.
    for i in 0..5 {
        let prediction = handle.predict(data.sample(i)).expect("scored");
        assert_eq!(prediction.class, forest.predict_majority(data.sample(i)));
    }
    let stats = batcher.shutdown();
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.requests, 5);
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let (data, forest) = model();
    // A huge linger and an unfillable batch: without the shutdown
    // drain, these requests would sit for 30 s.
    let policy = BatchPolicy::default()
        .max_batch(100)
        .linger(Duration::from_secs(30))
        .workers(2);
    let batcher = batcher(&forest, policy);
    let start = Instant::now();
    std::thread::scope(|scope| {
        let requesters: Vec<_> = (0..8)
            .map(|i| {
                let handle = batcher.handle();
                let row = data.sample(i).to_vec();
                scope.spawn(move || handle.predict(&row))
            })
            .collect();
        // Give the requests time to reach the collector's open batch,
        // then shut down underneath them.
        std::thread::sleep(Duration::from_millis(100));
        let late_handle = batcher.handle();
        let stats = batcher.shutdown();
        assert_eq!(stats.requests, 8);
        for (i, r) in requesters.into_iter().enumerate() {
            let prediction = r.join().expect("request thread").expect("drained");
            assert_eq!(prediction.class, forest.predict_majority(data.sample(i)));
        }
        // After shutdown, surviving handles fail fast instead of
        // hanging.
        assert_eq!(
            late_handle.predict(data.sample(0)).unwrap_err(),
            ServeError::ShuttingDown
        );
    });
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "shutdown must drain, not wait out the linger"
    );
}

#[test]
fn many_concurrent_clients_share_batches() {
    let (data, forest) = model();
    let policy = BatchPolicy::default()
        .max_batch(8)
        .linger(Duration::from_micros(500))
        .workers(2);
    let batcher = batcher(&forest, policy);
    let reference: Vec<u32> = (0..data.n_samples())
        .map(|i| forest.predict_majority(data.sample(i)))
        .collect();
    std::thread::scope(|scope| {
        for client in 0..6 {
            let handle = batcher.handle();
            let data = &data;
            let reference = &reference;
            scope.spawn(move || {
                for i in (client..data.n_samples()).step_by(6) {
                    let prediction = handle.predict(data.sample(i)).expect("scored");
                    assert_eq!(prediction.class, reference[i], "sample {i}");
                    assert!(prediction.batch_fill >= 1 && prediction.batch_fill <= 8);
                }
            });
        }
    });
    let stats = batcher.shutdown();
    assert_eq!(stats.requests, data.n_samples() as u64);
    assert!(stats.batches > 0);
    assert!(stats.mean_fill >= 1.0);
    assert!(stats.p99_us >= stats.p50_us);
}

#[test]
fn try_submit_completes_through_the_callback() {
    let (data, forest) = model();
    let policy = BatchPolicy::default()
        .max_batch(8)
        .linger(Duration::from_micros(500))
        .workers(2);
    let batcher = batcher(&forest, policy);
    let handle = batcher.handle();
    let (done_tx, done_rx) = mpsc::channel::<(usize, u32)>();
    let submitted = 32.min(data.n_samples());
    for i in 0..submitted {
        let done_tx = done_tx.clone();
        handle
            .try_submit(data.sample(i), move |prediction| {
                done_tx.send((i, prediction.class)).expect("reports");
            })
            .expect("queued");
    }
    drop(done_tx);
    let mut classes = vec![None; submitted];
    for _ in 0..submitted {
        let (i, class) = done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("every accepted submission completes");
        classes[i] = Some(class);
    }
    for (i, class) in classes.into_iter().enumerate() {
        assert_eq!(
            class,
            Some(forest.predict_majority(data.sample(i))),
            "sample {i}"
        );
    }
    let stats = batcher.shutdown();
    assert_eq!(stats.requests, submitted as u64);
    assert_eq!(stats.shed, 0);
}

#[test]
fn try_submit_rejects_wrong_arity_without_queueing() {
    let (_, forest) = model();
    let batcher = batcher(&forest, BatchPolicy::default());
    let handle = batcher.handle();
    let fired = Arc::new(Mutex::new(false));
    let flag = Arc::clone(&fired);
    let err = handle
        .try_submit(&[1.0, 2.0], move |_| *flag.lock().expect("flag") = true)
        .unwrap_err();
    assert_eq!(
        err,
        ServeError::WrongArity {
            expected: 4,
            got: 2
        }
    );
    let stats = batcher.shutdown();
    assert!(!*fired.lock().expect("flag"), "callback must not fire");
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.requests, 0);
    assert_eq!(stats.shed, 0);
}

/// Fills the whole bounded pipeline deterministically: the single
/// scoring worker is parked inside the first request's completion
/// callback, so every downstream stage (the worker's next batch, the
/// collector's in-hand request, the depth-1 queue) backs up with
/// nowhere to drain, and `try_submit` **must** shed with `Busy` after
/// a small bounded number of acceptances — no timing involved.
#[test]
fn try_submit_sheds_busy_when_the_pipeline_backs_up() {
    let (data, forest) = model();
    let policy = BatchPolicy::default()
        .max_batch(1)
        .linger(Duration::ZERO)
        .queue_depth(1)
        .workers(1);
    let batcher = batcher(&forest, policy);
    let handle = batcher.handle();

    let (entered_tx, entered_rx) = mpsc::channel::<()>();
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let (done_tx, done_rx) = mpsc::channel::<(usize, u32)>();
    let blocker_done = done_tx.clone();
    handle
        .try_submit(data.sample(0), move |prediction| {
            entered_tx.send(()).expect("signals entry");
            gate_rx
                .recv_timeout(Duration::from_secs(30))
                .expect("released");
            blocker_done.send((0, prediction.class)).expect("reports");
        })
        .expect("first request queued");
    entered_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("the worker reaches the gated callback");

    // The worker is parked. Keep submitting until admission control
    // sheds; the pipeline holds at most a handful of requests (one in
    // the worker hand-off buffer, one in the collector's hand, one in
    // the queue), so Busy must arrive within the attempt budget.
    let mut accepted = vec![0usize];
    let mut shed = false;
    for i in 1..64 {
        let done_tx = done_tx.clone();
        match handle.try_submit(data.sample(i), move |prediction| {
            done_tx.send((i, prediction.class)).expect("reports");
        }) {
            Ok(()) => accepted.push(i),
            Err(ServeError::Busy) => {
                shed = true;
                break;
            }
            Err(other) => panic!("unexpected admission error: {other}"),
        }
    }
    drop(done_tx);
    assert!(shed, "a blocked pipeline must shed, not accept unboundedly");
    assert!(
        accepted.len() <= 8,
        "the bounded stages hold {} requests — admission leaked",
        accepted.len()
    );

    // Release the worker: every accepted request (and none other)
    // still completes with the right class.
    gate_tx.send(()).expect("releases the worker");
    let mut completed = Vec::new();
    for _ in 0..accepted.len() {
        let (i, class) = done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("accepted requests drain after release");
        assert_eq!(class, forest.predict_majority(data.sample(i)), "sample {i}");
        completed.push(i);
    }
    assert!(
        done_rx.recv_timeout(Duration::from_millis(200)).is_err(),
        "shed requests must never complete"
    );
    completed.sort_unstable();
    assert_eq!(completed, accepted);

    let stats = batcher.shutdown();
    assert_eq!(stats.requests, accepted.len() as u64);
    assert!(stats.shed >= 1, "shed counter records the Busy rejections");
}
