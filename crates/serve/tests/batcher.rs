//! Batcher policy edge cases: the linger deadline, the max-batch cap,
//! wrong-arity rejection and shutdown drain semantics.

use flint_data::synth::SynthSpec;
use flint_data::Dataset;
use flint_exec::{EngineBuilder, EngineKind};
use flint_forest::{ForestConfig, RandomForest};
use flint_serve::{BatchPolicy, Batcher, ServeError};
use std::time::{Duration, Instant};

fn model() -> (Dataset, RandomForest) {
    let data = SynthSpec::new(100, 4, 3).seed(11).generate();
    let forest = RandomForest::fit(&data, &ForestConfig::grid(4, 6)).expect("trainable");
    (data, forest)
}

fn batcher(forest: &RandomForest, policy: BatchPolicy) -> Batcher {
    let engine = EngineBuilder::new(forest)
        .build(EngineKind::parse("flint-blocked").expect("registered"))
        .expect("builds");
    Batcher::start(engine, policy)
}

#[test]
fn linger_deadline_flushes_a_partial_batch() {
    let (data, forest) = model();
    // max_batch will never fill from one request: only the linger
    // deadline can dispatch it.
    let policy = BatchPolicy::default()
        .max_batch(64)
        .linger(Duration::from_millis(5));
    let batcher = batcher(&forest, policy);
    let start = Instant::now();
    let prediction = batcher.handle().predict(data.sample(0)).expect("scored");
    assert_eq!(prediction.class, forest.predict_majority(data.sample(0)));
    assert_eq!(prediction.batch_fill, 1, "partial batch flushed alone");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "linger flush must not wait for a full batch"
    );
    let stats = batcher.shutdown();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.batches, 1);
}

#[test]
fn a_full_batch_dispatches_before_the_linger_deadline() {
    let (data, forest) = model();
    // The linger is far longer than the test budget: only the
    // max-batch cap can dispatch in time.
    let policy = BatchPolicy::default()
        .max_batch(4)
        .linger(Duration::from_secs(30));
    let batcher = batcher(&forest, policy);
    let start = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let handle = batcher.handle();
                let row = data.sample(i).to_vec();
                scope.spawn(move || handle.predict(&row).expect("scored"))
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let prediction = h.join().expect("request thread");
            assert_eq!(prediction.class, forest.predict_majority(data.sample(i)));
            assert_eq!(
                prediction.batch_fill, 4,
                "batch closed exactly at max_batch"
            );
        }
    });
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "a full batch must not wait for the linger deadline"
    );
    let stats = batcher.shutdown();
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.mean_fill, 4.0);
}

#[test]
fn wrong_arity_is_rejected_without_poisoning_the_queue() {
    let (data, forest) = model();
    let batcher = batcher(&forest, BatchPolicy::default().linger(Duration::ZERO));
    let handle = batcher.handle();
    let err = handle.predict(&[1.0, 2.0]).unwrap_err();
    assert_eq!(
        err,
        ServeError::WrongArity {
            expected: 4,
            got: 2
        }
    );
    let err = handle.predict(&[0.0; 9]).unwrap_err();
    assert!(
        matches!(err, ServeError::WrongArity { got: 9, .. }),
        "{err}"
    );
    // The queue is intact: well-formed requests still score correctly.
    for i in 0..5 {
        let prediction = handle.predict(data.sample(i)).expect("scored");
        assert_eq!(prediction.class, forest.predict_majority(data.sample(i)));
    }
    let stats = batcher.shutdown();
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.requests, 5);
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let (data, forest) = model();
    // A huge linger and an unfillable batch: without the shutdown
    // drain, these requests would sit for 30 s.
    let policy = BatchPolicy::default()
        .max_batch(100)
        .linger(Duration::from_secs(30))
        .workers(2);
    let batcher = batcher(&forest, policy);
    let start = Instant::now();
    std::thread::scope(|scope| {
        let requesters: Vec<_> = (0..8)
            .map(|i| {
                let handle = batcher.handle();
                let row = data.sample(i).to_vec();
                scope.spawn(move || handle.predict(&row))
            })
            .collect();
        // Give the requests time to reach the collector's open batch,
        // then shut down underneath them.
        std::thread::sleep(Duration::from_millis(100));
        let late_handle = batcher.handle();
        let stats = batcher.shutdown();
        assert_eq!(stats.requests, 8);
        for (i, r) in requesters.into_iter().enumerate() {
            let prediction = r.join().expect("request thread").expect("drained");
            assert_eq!(prediction.class, forest.predict_majority(data.sample(i)));
        }
        // After shutdown, surviving handles fail fast instead of
        // hanging.
        assert_eq!(
            late_handle.predict(data.sample(0)).unwrap_err(),
            ServeError::ShuttingDown
        );
    });
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "shutdown must drain, not wait out the linger"
    );
}

#[test]
fn many_concurrent_clients_share_batches() {
    let (data, forest) = model();
    let policy = BatchPolicy::default()
        .max_batch(8)
        .linger(Duration::from_micros(500))
        .workers(2);
    let batcher = batcher(&forest, policy);
    let reference: Vec<u32> = (0..data.n_samples())
        .map(|i| forest.predict_majority(data.sample(i)))
        .collect();
    std::thread::scope(|scope| {
        for client in 0..6 {
            let handle = batcher.handle();
            let data = &data;
            let reference = &reference;
            scope.spawn(move || {
                for i in (client..data.n_samples()).step_by(6) {
                    let prediction = handle.predict(data.sample(i)).expect("scored");
                    assert_eq!(prediction.class, reference[i], "sample {i}");
                    assert!(prediction.batch_fill >= 1 && prediction.batch_fill <= 8);
                }
            });
        }
    });
    let stats = batcher.shutdown();
    assert_eq!(stats.requests, data.n_samples() as u64);
    assert!(stats.batches > 0);
    assert!(stats.mean_fill >= 1.0);
    assert!(stats.p99_us >= stats.p50_us);
}
