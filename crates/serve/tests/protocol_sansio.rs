//! Property suite for the sans-io [`ProtocolMachine`]: transport chunk
//! boundaries are **invisible**. Any way of splitting the same byte
//! stream — including empty chunks and byte-at-a-time delivery — must
//! produce the identical [`WireEvent`] sequence, the identical
//! end-of-input flush, and the same oversized-line verdicts. This is
//! the property that lets the epoll front end feed raw nonblocking
//! reads through the very same machine the buffered threads front end
//! and the stdin path use, with no behavioural drift between them.

use flint_serve::{ProtocolMachine, Request, WireEvent, MAX_LINE_BYTES};
use proptest::collection::vec;
use proptest::prelude::*;

/// Bytes weighted toward protocol structure: newlines arrive often
/// enough that streams contain many complete lines, and digits, commas
/// and `\r` make some of those lines parse as real requests.
fn wire_byte() -> impl Strategy<Value = u8> {
    any::<u8>().prop_map(|b| match b % 16 {
        0 | 1 => b'\n',
        2 => b'\r',
        3 => b',',
        4 => b'.',
        5 => b'-',
        6 => b' ',
        7 => b's', // seeds of `stats` / `shutdown`
        8..=13 => b'0' + (b / 16) % 10,
        _ => b,
    })
}

/// Runs one byte stream through a fresh machine as a given chunk
/// sequence, returning every emitted event plus the `finish` flush.
fn events(stream: &[u8], chunks: &[&[u8]], max_line: usize) -> Vec<WireEvent> {
    let rejoined: Vec<u8> = chunks.concat();
    assert_eq!(rejoined, stream, "chunking must partition the stream");
    let mut machine = ProtocolMachine::with_max_line(max_line);
    let mut out = Vec::new();
    for chunk in chunks {
        machine.receive(chunk, |event| out.push(event));
        assert!(
            machine.buffered() <= max_line,
            "buffered {} exceeds the {max_line}-byte line cap",
            machine.buffered()
        );
    }
    out.extend(machine.finish());
    out
}

/// Splits `stream` into chunks at pseudo-random positions drawn from
/// `cuts` (lengths are taken modulo what remains, so every cut list is
/// a valid partition; zero-length chunks are kept deliberately).
fn split_by<'a>(stream: &'a [u8], cuts: &[u8]) -> Vec<&'a [u8]> {
    let mut chunks = Vec::with_capacity(cuts.len() + 1);
    let mut rest = stream;
    for &cut in cuts {
        let len = (cut as usize) % (rest.len() + 1);
        let (head, tail) = rest.split_at(len);
        chunks.push(head);
        rest = tail;
    }
    chunks.push(rest);
    chunks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The headline property: one-shot delivery and arbitrary
    /// chunking yield the same event stream under the standard cap.
    #[test]
    fn chunking_never_changes_the_event_stream(
        stream in vec(wire_byte(), 0..256),
        cuts in vec(any::<u8>(), 0..24),
    ) {
        let whole = events(&stream, &[&stream], MAX_LINE_BYTES);
        let chunked = events(&stream, &split_by(&stream, &cuts), MAX_LINE_BYTES);
        prop_assert_eq!(whole, chunked);
    }

    /// The same invariance with a tiny line cap, so the oversized
    /// discard path is exercised constantly: whether a line blows the
    /// cap inside one chunk or across several, the verdict (and the
    /// number of `Oversized` events) is identical.
    #[test]
    fn chunking_never_changes_the_oversized_verdict(
        stream in vec(wire_byte(), 0..256),
        cuts in vec(any::<u8>(), 0..24),
        max_line in 1usize..40,
    ) {
        let whole = events(&stream, &[&stream], max_line);
        let chunked = events(&stream, &split_by(&stream, &cuts), max_line);
        prop_assert_eq!(whole, chunked);
    }

    /// Byte-at-a-time delivery — the most hostile chunking a client
    /// can produce — still matches one-shot delivery.
    #[test]
    fn byte_at_a_time_equals_one_shot(stream in vec(wire_byte(), 0..160)) {
        let singles: Vec<&[u8]> = stream.chunks(1).collect();
        prop_assert_eq!(
            events(&stream, &[&stream], MAX_LINE_BYTES),
            events(&stream, &singles, MAX_LINE_BYTES)
        );
    }

    /// Well-formed pipelined CSV rows survive arbitrary chunking as
    /// exactly one `Request::Predict` per row, features intact — the
    /// end-to-end guarantee the serving differential suite relies on.
    #[test]
    fn pipelined_rows_parse_chunk_independently(
        rows in vec(vec(-1000i32..1000, 4), 0..12),
        cuts in vec(any::<u8>(), 0..24),
    ) {
        let rows: Vec<Vec<f32>> = rows
            .into_iter()
            .map(|row| row.into_iter().map(|v| v as f32 / 8.0).collect())
            .collect();
        let stream: Vec<u8> = rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(f32::to_string).collect();
                cells.join(",") + "\n"
            })
            .collect::<String>()
            .into_bytes();
        let got = events(&stream, &split_by(&stream, &cuts), MAX_LINE_BYTES);
        prop_assert_eq!(got.len(), rows.len());
        for (event, row) in got.iter().zip(&rows) {
            prop_assert_eq!(event, &WireEvent::Request(Request::Predict(row.clone())));
        }
    }
}

/// Non-property anchor: a CRLF admin command split mid-`\r\n` still
/// parses once, and a lone trailing fragment only surfaces via
/// `finish`, exactly like `BufRead::lines` at end of file.
#[test]
fn crlf_and_trailing_fragments_behave_like_buffered_lines() {
    let stream = b"stats\r\nshutdown";
    let whole = events(stream, &[&stream[..]], MAX_LINE_BYTES);
    let split = events(stream, &[b"stats\r", b"\nshut", b"down"], MAX_LINE_BYTES);
    assert_eq!(whole, split);
    assert_eq!(
        whole,
        vec![
            WireEvent::Request(Request::Stats),
            WireEvent::Request(Request::Shutdown),
        ]
    );
}
