//! Recursive CART tree construction.

use super::splitter::best_split;
use crate::node::{Node, NodeId};
use crate::tree::DecisionTree;
use flint_data::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How many features to consider at each split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaxFeatures {
    /// All features (single decision trees).
    All,
    /// `ceil(sqrt(n_features))` — scikit-learn's random forest default.
    Sqrt,
    /// `ceil(log2(n_features))`.
    Log2,
    /// A fixed count (clamped to `n_features`).
    Count(usize),
}

impl MaxFeatures {
    /// Resolves to a concrete count for `n_features`.
    pub fn resolve(self, n_features: usize) -> usize {
        let n = n_features.max(1);
        match self {
            MaxFeatures::All => n,
            MaxFeatures::Sqrt => (n as f64).sqrt().ceil() as usize,
            MaxFeatures::Log2 => (n as f64).log2().ceil().max(1.0) as usize,
            MaxFeatures::Count(c) => c.clamp(1, n),
        }
        .clamp(1, n)
    }
}

/// CART training hyperparameters.
///
/// Defaults match the paper's setup: no hyperparameter tuning, depth
/// limited externally per experiment, scikit-learn defaults otherwise
/// (`min_samples_split = 2`, `min_samples_leaf = 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Maximal tree depth (`None` = unbounded). The paper sweeps
    /// {1, 5, 10, 15, 20, 30, 50}.
    pub max_depth: Option<usize>,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum number of samples in each child.
    pub min_samples_leaf: usize,
    /// Feature subsampling per split.
    pub max_features: MaxFeatures,
    /// RNG seed for feature subsampling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            seed: 0,
        }
    }
}

impl TrainConfig {
    /// Convenience: the default configuration with a depth limit.
    #[must_use]
    pub fn with_max_depth(depth: usize) -> Self {
        Self {
            max_depth: Some(depth),
            ..Self::default()
        }
    }
}

/// Error training a tree.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TrainError {
    /// The training set is empty.
    EmptyDataset,
    /// The training data contains NaN feature values.
    NanFeature,
}

impl core::fmt::Display for TrainError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::EmptyDataset => write!(f, "cannot train on an empty dataset"),
            Self::NanFeature => write!(f, "training data contains NaN feature values"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Trains a single CART decision tree on `data`.
///
/// # Errors
///
/// [`TrainError::EmptyDataset`] for zero samples,
/// [`TrainError::NanFeature`] if any feature value is NaN (split
/// ordering would be undefined — and FLInt thresholds reject NaN).
///
/// # Examples
///
/// ```
/// use flint_forest::train::{train_tree, TrainConfig};
/// use flint_data::synth::SynthSpec;
///
/// # fn main() -> Result<(), flint_forest::train::TrainError> {
/// let data = SynthSpec::new(120, 4, 2).cluster_std(0.3).generate();
/// let tree = train_tree(&data, &TrainConfig::with_max_depth(5))?;
/// assert!(tree.depth() <= 5);
/// # Ok(())
/// # }
/// ```
pub fn train_tree(data: &Dataset, config: &TrainConfig) -> Result<DecisionTree, TrainError> {
    if data.n_samples() == 0 {
        return Err(TrainError::EmptyDataset);
    }
    if data.features_flat().iter().any(|v| v.is_nan()) {
        return Err(TrainError::NanFeature);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let samples: Vec<usize> = (0..data.n_samples()).collect();
    let mut nodes = Vec::new();
    build(data, config, &mut rng, samples, 0, &mut nodes);
    DecisionTree::new(nodes, data.n_features(), data.n_classes())
        .map_err(|_| TrainError::EmptyDataset) // unreachable: builder emits valid trees
}

/// Recursively builds the subtree for `samples`, appending nodes to the
/// arena and returning the new subtree's root id.
fn build(
    data: &Dataset,
    config: &TrainConfig,
    rng: &mut StdRng,
    samples: Vec<usize>,
    depth: usize,
    nodes: &mut Vec<Node>,
) -> NodeId {
    let counts = class_counts(data, &samples);
    let majority = argmax(&counts);
    let depth_exhausted = config.max_depth.is_some_and(|d| depth >= d);
    let too_small = samples.len() < config.min_samples_split;
    let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
    let make_leaf = |nodes: &mut Vec<Node>| -> NodeId {
        let id = NodeId(nodes.len() as u32);
        nodes.push(Node::Leaf {
            class: majority,
            counts: counts.clone(),
        });
        id
    };
    if depth_exhausted || too_small || pure {
        return make_leaf(nodes);
    }
    // Feature subsample (without replacement), like sklearn.
    let k = config.max_features.resolve(data.n_features());
    let mut features: Vec<u32> = (0..data.n_features() as u32).collect();
    features.shuffle(rng);
    features.truncate(k);
    let Some(split) = best_split(data, &samples, &features, config.min_samples_leaf) else {
        return make_leaf(nodes);
    };
    let f = split.feature as usize;
    let (left_samples, right_samples): (Vec<usize>, Vec<usize>) = samples
        .into_iter()
        .partition(|&i| data.sample(i)[f] <= split.threshold);
    debug_assert!(!left_samples.is_empty() && !right_samples.is_empty());
    // Reserve this node's slot before recursing so the root stays at 0.
    let id = NodeId(nodes.len() as u32);
    nodes.push(Node::Leaf {
        class: majority,
        counts: counts.clone(),
    }); // placeholder
    let left = build(data, config, rng, left_samples, depth + 1, nodes);
    let right = build(data, config, rng, right_samples, depth + 1, nodes);
    nodes[id.index()] = Node::Split {
        feature: split.feature,
        threshold: split.threshold,
        left,
        right,
    };
    id
}

fn class_counts(data: &Dataset, samples: &[usize]) -> Vec<u32> {
    let mut counts = vec![0u32; data.n_classes()];
    for &i in samples {
        counts[data.label(i) as usize] += 1;
    }
    counts
}

fn argmax(counts: &[u32]) -> u32 {
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i as u32)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_data::synth::SynthSpec;

    fn easy_data() -> Dataset {
        SynthSpec::new(200, 4, 3)
            .cluster_std(0.2)
            .seed(5)
            .generate()
    }

    #[test]
    fn perfectly_fits_separable_data() {
        let data = easy_data();
        let tree = train_tree(&data, &TrainConfig::default()).expect("trainable");
        let correct = (0..data.n_samples())
            .filter(|&i| tree.predict(data.sample(i)) == data.label(i))
            .count();
        assert_eq!(correct, data.n_samples(), "unbounded tree memorizes");
    }

    #[test]
    fn respects_max_depth() {
        let data = easy_data();
        for d in [0, 1, 2, 5] {
            let tree = train_tree(&data, &TrainConfig::with_max_depth(d)).expect("trainable");
            assert!(tree.depth() <= d, "depth {d}: got {}", tree.depth());
        }
    }

    #[test]
    fn depth_zero_is_majority_leaf() {
        let data = easy_data();
        let tree = train_tree(&data, &TrainConfig::with_max_depth(0)).expect("trainable");
        assert_eq!(tree.n_nodes(), 1);
        // Classes are balanced; prediction must still be a valid class.
        assert!(tree.predict(data.sample(0)) < 3);
    }

    #[test]
    fn rejects_empty_and_nan() {
        let empty = Dataset::from_rows(1, 2, vec![]).expect("empty ok to build");
        assert_eq!(
            train_tree(&empty, &TrainConfig::default()).unwrap_err(),
            TrainError::EmptyDataset
        );
        let nan =
            Dataset::from_rows(1, 2, vec![(vec![f32::NAN], 0), (vec![1.0], 1)]).expect("builds");
        assert_eq!(
            train_tree(&nan, &TrainConfig::default()).unwrap_err(),
            TrainError::NanFeature
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let data = easy_data();
        let cfg = TrainConfig {
            max_features: MaxFeatures::Sqrt,
            seed: 11,
            ..TrainConfig::default()
        };
        let a = train_tree(&data, &cfg).expect("trainable");
        let b = train_tree(&data, &cfg).expect("trainable");
        assert_eq!(a, b);
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(10), 10);
        assert_eq!(MaxFeatures::Sqrt.resolve(10), 4); // ceil(3.16)
        assert_eq!(MaxFeatures::Sqrt.resolve(128), 12); // ceil(11.3)
        assert_eq!(MaxFeatures::Log2.resolve(10), 4); // ceil(3.32)
        assert_eq!(MaxFeatures::Count(3).resolve(10), 3);
        assert_eq!(MaxFeatures::Count(99).resolve(10), 10);
        assert_eq!(MaxFeatures::Count(0).resolve(10), 1);
        assert_eq!(MaxFeatures::All.resolve(0), 1);
    }

    #[test]
    fn min_samples_leaf_limits_leaf_sizes() {
        let data = easy_data();
        let cfg = TrainConfig {
            min_samples_leaf: 10,
            ..TrainConfig::default()
        };
        let tree = train_tree(&data, &cfg).expect("trainable");
        for node in tree.nodes() {
            if let Node::Leaf { counts, .. } = node {
                let total: u32 = counts.iter().sum();
                assert!(total >= 10, "leaf with {total} samples");
            }
        }
    }

    #[test]
    fn single_class_data_yields_single_leaf() {
        let data = Dataset::from_rows(1, 2, vec![(vec![1.0], 1), (vec![2.0], 1), (vec![3.0], 1)])
            .expect("valid");
        let tree = train_tree(&data, &TrainConfig::default()).expect("trainable");
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.predict(&[9.0]), 1);
    }
}
