//! Best-split search over candidate features (the inner loop of CART).

use super::gini::weighted_gini;
use flint_data::Dataset;

/// A candidate split chosen by the search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestSplit {
    /// Feature index to test.
    pub feature: u32,
    /// Threshold (midpoint between adjacent distinct values, like
    /// scikit-learn).
    pub threshold: f32,
    /// Weighted Gini impurity of the partition this split induces.
    pub impurity: f64,
}

/// Finds the impurity-minimizing `(feature, threshold)` over the given
/// `samples` (indices into `data`) and `features` (candidate feature
/// indices, already subsampled by the caller for random forests).
///
/// Returns `None` when no feature admits a split that actually
/// separates the samples (all candidate features constant).
pub fn best_split(
    data: &Dataset,
    samples: &[usize],
    features: &[u32],
    min_samples_leaf: usize,
) -> Option<BestSplit> {
    let n_classes = data.n_classes();
    let mut best: Option<BestSplit> = None;
    // Reused buffers.
    let mut order: Vec<usize> = Vec::with_capacity(samples.len());
    for &feature in features {
        order.clear();
        order.extend_from_slice(samples);
        let f = feature as usize;
        order.sort_by(|&a, &b| {
            data.sample(a)[f]
                .partial_cmp(&data.sample(b)[f])
                .expect("training data must not contain NaN")
        });
        // Prefix class counts: start all-right, move left one by one.
        let mut left = vec![0u32; n_classes];
        let mut right = vec![0u32; n_classes];
        for &i in order.iter() {
            right[data.label(i) as usize] += 1;
        }
        for cut in 1..order.len() {
            let moved = order[cut - 1];
            left[data.label(moved) as usize] += 1;
            right[data.label(moved) as usize] -= 1;
            if cut < min_samples_leaf || order.len() - cut < min_samples_leaf {
                continue;
            }
            let lo = data.sample(order[cut - 1])[f];
            let hi = data.sample(order[cut])[f];
            if lo == hi {
                continue; // no boundary between equal values
            }
            let impurity = weighted_gini(&left, &right);
            let candidate_better = match &best {
                None => true,
                Some(b) => impurity < b.impurity,
            };
            if candidate_better {
                // Midpoint threshold, computed in f32 like sklearn; if
                // rounding collapses onto `hi`, fall back to `lo` so the
                // partition stays non-trivial under `<=`.
                let mut threshold = lo + (hi - lo) / 2.0;
                if threshold >= hi {
                    threshold = lo;
                }
                best = Some(BestSplit {
                    feature,
                    threshold,
                    impurity,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_ish_dataset() -> Dataset {
        // One perfectly separating feature (0) and one useless (1).
        Dataset::from_rows(
            2,
            2,
            vec![
                (vec![-2.0, 0.3], 0),
                (vec![-1.5, 0.9], 0),
                (vec![-1.0, 0.1], 0),
                (vec![1.0, 0.2], 1),
                (vec![1.5, 0.8], 1),
                (vec![2.0, 0.4], 1),
            ],
        )
        .expect("valid")
    }

    #[test]
    fn finds_the_separating_feature() {
        let data = xor_ish_dataset();
        let samples: Vec<usize> = (0..6).collect();
        let split = best_split(&data, &samples, &[0, 1], 1).expect("separable");
        assert_eq!(split.feature, 0);
        assert_eq!(split.impurity, 0.0);
        // Midpoint of -1.0 and 1.0.
        assert_eq!(split.threshold, 0.0);
    }

    #[test]
    fn respects_feature_subset() {
        let data = xor_ish_dataset();
        let samples: Vec<usize> = (0..6).collect();
        // Only the useless feature offered: split exists but is impure.
        let split = best_split(&data, &samples, &[1], 1).expect("still splittable");
        assert_eq!(split.feature, 1);
        assert!(split.impurity > 0.0);
    }

    #[test]
    fn constant_features_yield_none() {
        let data = Dataset::from_rows(1, 2, vec![(vec![3.0], 0), (vec![3.0], 1), (vec![3.0], 0)])
            .expect("valid");
        let samples: Vec<usize> = (0..3).collect();
        assert_eq!(best_split(&data, &samples, &[0], 1), None);
    }

    #[test]
    fn min_samples_leaf_blocks_extreme_cuts() {
        let data = xor_ish_dataset();
        let samples: Vec<usize> = (0..6).collect();
        // With min_samples_leaf = 3 only the 3|3 cut is admissible.
        let split = best_split(&data, &samples, &[0], 3).expect("3|3 cut exists");
        assert_eq!(split.threshold, 0.0);
        // min_samples_leaf = 4 admits no cut of 6 samples.
        assert_eq!(best_split(&data, &samples, &[0], 4), None);
    }

    #[test]
    fn threshold_separates_under_le() {
        // The returned threshold must route at least one sample left and
        // one right under `x <= t`.
        let data = xor_ish_dataset();
        let samples: Vec<usize> = (0..6).collect();
        for feats in [&[0u32][..], &[1]] {
            if let Some(s) = best_split(&data, &samples, feats, 1) {
                let f = s.feature as usize;
                let left = samples
                    .iter()
                    .filter(|&&i| data.sample(i)[f] <= s.threshold)
                    .count();
                assert!(left > 0 && left < samples.len(), "feature {f}");
            }
        }
    }

    #[test]
    fn adjacent_float_values_fall_back_to_lower() {
        // lo and hi adjacent in f32: midpoint rounds to hi; the splitter
        // must fall back to lo so `<=` still separates.
        let lo = 1.0f32;
        let hi = f32::from_bits(lo.to_bits() + 1);
        let data = Dataset::from_rows(1, 2, vec![(vec![lo], 0), (vec![hi], 1)]).expect("valid");
        let split = best_split(&data, &[0, 1], &[0], 1).expect("separable");
        assert_eq!(split.threshold, lo);
        assert!(lo <= split.threshold && hi > split.threshold);
    }
}
