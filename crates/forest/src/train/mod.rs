//! CART training (the substrate the paper delegates to scikit-learn).

pub mod builder;
pub mod gini;
pub mod splitter;

pub use builder::{train_tree, MaxFeatures, TrainConfig, TrainError};
pub use splitter::{best_split, BestSplit};
