//! Gini impurity — the split criterion of CART (and scikit-learn's
//! default, which the paper uses).

/// Gini impurity of a class-count histogram: `1 - Σ p_c²`.
///
/// Returns 0.0 for an empty histogram (an empty node is pure by
/// convention).
///
/// # Examples
///
/// ```
/// use flint_forest::train::gini::gini;
///
/// assert_eq!(gini(&[10, 0]), 0.0);          // pure
/// assert_eq!(gini(&[5, 5]), 0.5);           // maximally mixed, 2 classes
/// assert!((gini(&[1, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub fn gini(counts: &[u32]) -> f64 {
    let total: u64 = counts.iter().map(|&c| u64::from(c)).sum();
    if total == 0 {
        return 0.0;
    }
    let total_f = total as f64;
    let sum_sq: f64 = counts
        .iter()
        .map(|&c| {
            let p = f64::from(c) / total_f;
            p * p
        })
        .sum();
    1.0 - sum_sq
}

/// Weighted Gini impurity of a binary partition — the quantity CART
/// minimizes over candidate splits.
///
/// # Examples
///
/// ```
/// use flint_forest::train::gini::weighted_gini;
///
/// // A perfect split of a mixed parent has impurity 0.
/// assert_eq!(weighted_gini(&[4, 0], &[0, 4]), 0.0);
/// // A useless split keeps the parent's impurity.
/// assert_eq!(weighted_gini(&[2, 2], &[2, 2]), 0.5);
/// ```
pub fn weighted_gini(left: &[u32], right: &[u32]) -> f64 {
    let nl: u64 = left.iter().map(|&c| u64::from(c)).sum();
    let nr: u64 = right.iter().map(|&c| u64::from(c)).sum();
    let n = (nl + nr) as f64;
    if n == 0.0 {
        return 0.0;
    }
    (nl as f64 / n) * gini(left) + (nr as f64 / n) * gini(right)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_nodes_have_zero_impurity() {
        assert_eq!(gini(&[7]), 0.0);
        assert_eq!(gini(&[0, 0, 12]), 0.0);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
    }

    #[test]
    fn uniform_distribution_maximizes() {
        // k classes uniform: gini = 1 - 1/k, the maximum for k classes.
        for k in 2..6u32 {
            let counts = vec![10u32; k as usize];
            let expected = 1.0 - 1.0 / f64::from(k);
            assert!((gini(&counts) - expected).abs() < 1e-12);
            // Any skew reduces impurity.
            let mut skewed = counts.clone();
            skewed[0] += 10;
            assert!(gini(&skewed) < gini(&counts));
        }
    }

    #[test]
    fn weighted_gini_respects_sizes() {
        // Left is pure and large, right mixed and small: closer to 0
        // than the even mix.
        let a = weighted_gini(&[90, 0], &[5, 5]);
        let b = weighted_gini(&[50, 0], &[45, 5]);
        assert!(a < b);
        assert_eq!(weighted_gini(&[0, 0], &[0, 0]), 0.0);
    }

    #[test]
    fn splitting_never_increases_impurity_for_best_split() {
        // Sanity for the CART criterion: the trivial "all left" split
        // equals the parent impurity.
        let parent = [6u32, 4];
        assert!((weighted_gini(&parent, &[0, 0]) - gini(&parent)).abs() < 1e-12);
    }
}
