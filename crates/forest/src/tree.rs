//! Decision tree container, traversal and structural queries.

use crate::node::{Node, NodeId};

/// A trained decision tree.
///
/// Nodes live in an arena; [`NodeId::ROOT`] (index 0) is the root.
/// Inference follows the paper's traversal rule: at every split node
/// take the left child when `x[feature] <= threshold`, otherwise the
/// right child, until a leaf is reached.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
    n_classes: usize,
}

/// Error validating a tree's structure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidateTreeError {
    /// The arena is empty.
    Empty,
    /// A child pointer references a node outside the arena.
    DanglingChild {
        /// The split node holding the pointer.
        node: NodeId,
    },
    /// A node references a feature index `>= n_features`.
    FeatureRange {
        /// The offending node.
        node: NodeId,
    },
    /// A split threshold is NaN.
    NanThreshold {
        /// The offending node.
        node: NodeId,
    },
    /// A leaf's class is `>= n_classes` or its counts length differs
    /// from `n_classes`.
    LeafClass {
        /// The offending node.
        node: NodeId,
    },
    /// A node is its own ancestor (cycle) or is visited twice (the
    /// arena does not encode a tree).
    NotATree {
        /// The node reached twice.
        node: NodeId,
    },
}

impl core::fmt::Display for ValidateTreeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Empty => write!(f, "tree has no nodes"),
            Self::DanglingChild { node } => write!(f, "node {node} has a dangling child pointer"),
            Self::FeatureRange { node } => write!(f, "node {node} tests an out-of-range feature"),
            Self::NanThreshold { node } => write!(f, "node {node} has a NaN split value"),
            Self::LeafClass { node } => write!(f, "leaf {node} has an invalid class or counts"),
            Self::NotATree { node } => write!(f, "node {node} is reachable twice (not a tree)"),
        }
    }
}

impl std::error::Error for ValidateTreeError {}

impl DecisionTree {
    /// Wraps an arena of nodes (root at index 0) after validating it.
    ///
    /// # Errors
    ///
    /// Any [`ValidateTreeError`] variant if the arena is empty, has
    /// dangling/duplicated children, out-of-range features or classes,
    /// or NaN thresholds.
    pub fn new(
        nodes: Vec<Node>,
        n_features: usize,
        n_classes: usize,
    ) -> Result<Self, ValidateTreeError> {
        let tree = Self {
            nodes,
            n_features,
            n_classes,
        };
        tree.validate()?;
        Ok(tree)
    }

    fn validate(&self) -> Result<(), ValidateTreeError> {
        if self.nodes.is_empty() {
            return Err(ValidateTreeError::Empty);
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId::ROOT];
        while let Some(id) = stack.pop() {
            let node = self
                .nodes
                .get(id.index())
                .ok_or(ValidateTreeError::DanglingChild { node: id })?;
            if seen[id.index()] {
                return Err(ValidateTreeError::NotATree { node: id });
            }
            seen[id.index()] = true;
            match node {
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    if *feature as usize >= self.n_features {
                        return Err(ValidateTreeError::FeatureRange { node: id });
                    }
                    if threshold.is_nan() {
                        return Err(ValidateTreeError::NanThreshold { node: id });
                    }
                    if left.index() >= self.nodes.len() || right.index() >= self.nodes.len() {
                        return Err(ValidateTreeError::DanglingChild { node: id });
                    }
                    stack.push(*left);
                    stack.push(*right);
                }
                Node::Leaf { class, counts } => {
                    if *class as usize >= self.n_classes || counts.len() != self.n_classes {
                        return Err(ValidateTreeError::LeafClass { node: id });
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of input features the tree expects.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes the tree predicts over.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The node arena.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf nodes.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Depth of the tree (a lone leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], id: NodeId) -> usize {
            match &nodes[id.index()] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        depth_of(&self.nodes, NodeId::ROOT)
    }

    /// Predicts the class of `features` via the paper's traversal rule.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features()`.
    pub fn predict(&self, features: &[f32]) -> u32 {
        assert_eq!(features.len(), self.n_features, "feature vector length");
        let mut id = NodeId::ROOT;
        loop {
            match &self.nodes[id.index()] {
                Node::Leaf { class, .. } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    id = if features[*feature as usize] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// The leaf reached by `features`, with its class counts — used for
    /// probability averaging in forests.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features()`.
    pub fn predict_leaf(&self, features: &[f32]) -> (NodeId, &[u32]) {
        assert_eq!(features.len(), self.n_features, "feature vector length");
        let mut id = NodeId::ROOT;
        loop {
            match &self.nodes[id.index()] {
                Node::Leaf { counts, .. } => return (id, counts),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    id = if features[*feature as usize] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// The root-to-leaf path taken by `features` (used by the CAGS
    /// profiler to collect empirical branch probabilities).
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features()`.
    pub fn trace(&self, features: &[f32]) -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut id = NodeId::ROOT;
        loop {
            path.push(id);
            match &self.nodes[id.index()] {
                Node::Leaf { .. } => return path,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    id = if features[*feature as usize] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// All split thresholds in the tree (for threshold statistics and
    /// codegen tests).
    pub fn thresholds(&self) -> impl Iterator<Item = f32> + '_ {
        self.nodes.iter().filter_map(|n| match n {
            Node::Split { threshold, .. } => Some(*threshold),
            Node::Leaf { .. } => None,
        })
    }

    /// Gini feature importances (scikit-learn's `feature_importances_`):
    /// per feature, the total impurity decrease of the splits testing
    /// it, weighted by the fraction of training samples reaching the
    /// split, normalized to sum to 1 (all-zero for a single-leaf tree).
    ///
    /// Node class counts are reconstructed bottom-up from the leaf
    /// counts stored at training time.
    pub fn feature_importances(&self) -> Vec<f64> {
        use crate::train::gini::gini;
        // Bottom-up class counts per node.
        fn counts_of(nodes: &[Node], id: NodeId, memo: &mut Vec<Option<Vec<u32>>>) -> Vec<u32> {
            if let Some(c) = &memo[id.index()] {
                return c.clone();
            }
            let c = match &nodes[id.index()] {
                Node::Leaf { counts, .. } => counts.clone(),
                Node::Split { left, right, .. } => {
                    let l = counts_of(nodes, *left, memo);
                    let r = counts_of(nodes, *right, memo);
                    l.iter().zip(&r).map(|(a, b)| a + b).collect()
                }
            };
            memo[id.index()] = Some(c.clone());
            c
        }
        let mut memo = vec![None; self.nodes.len()];
        let root_counts = counts_of(&self.nodes, NodeId::ROOT, &mut memo);
        let total: u64 = root_counts.iter().map(|&c| u64::from(c)).sum();
        let mut importances = vec![0.0f64; self.n_features];
        if total == 0 {
            return importances;
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Split {
                feature,
                left,
                right,
                ..
            } = node
            {
                let node_counts = memo[i].as_ref().expect("memoized");
                let left_counts = memo[left.index()].as_ref().expect("memoized");
                let right_counts = memo[right.index()].as_ref().expect("memoized");
                let n: u64 = node_counts.iter().map(|&c| u64::from(c)).sum();
                let nl: u64 = left_counts.iter().map(|&c| u64::from(c)).sum();
                let nr: u64 = right_counts.iter().map(|&c| u64::from(c)).sum();
                let decrease = n as f64 * gini(node_counts)
                    - nl as f64 * gini(left_counts)
                    - nr as f64 * gini(right_counts);
                importances[*feature as usize] += decrease / total as f64;
            }
        }
        let sum: f64 = importances.iter().sum();
        if sum > 0.0 {
            for v in &mut importances {
                *v /= sum;
            }
        }
        importances
    }
}

/// Builds the tiny example tree used across the workspace's unit tests:
///
/// ```text
/// root: x[0] <= 0.5 ? (x[1] <= -1.25 ? class 0 : class 1) : class 2
/// ```
pub fn example_tree() -> DecisionTree {
    DecisionTree::new(
        vec![
            Node::Split {
                feature: 0,
                threshold: 0.5,
                left: NodeId(1),
                right: NodeId(2),
            },
            Node::Split {
                feature: 1,
                threshold: -1.25,
                left: NodeId(3),
                right: NodeId(4),
            },
            Node::Leaf {
                class: 2,
                counts: vec![0, 0, 10],
            },
            Node::Leaf {
                class: 0,
                counts: vec![8, 2, 0],
            },
            Node::Leaf {
                class: 1,
                counts: vec![1, 9, 0],
            },
        ],
        2,
        3,
    )
    .expect("example tree is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_tree_predictions() {
        let t = example_tree();
        assert_eq!(t.predict(&[0.0, -2.0]), 0);
        assert_eq!(t.predict(&[0.0, 0.0]), 1);
        assert_eq!(t.predict(&[1.0, 0.0]), 2);
        // Boundary: <= goes left.
        assert_eq!(t.predict(&[0.5, -1.25]), 0);
    }

    #[test]
    fn structural_queries() {
        let t = example_tree();
        assert_eq!(t.n_nodes(), 5);
        assert_eq!(t.n_leaves(), 3);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.thresholds().collect::<Vec<_>>(), vec![0.5, -1.25]);
    }

    #[test]
    fn trace_follows_decisions() {
        let t = example_tree();
        assert_eq!(t.trace(&[0.0, 0.0]), vec![NodeId(0), NodeId(1), NodeId(4)]);
        assert_eq!(t.trace(&[1.0, 0.0]), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn predict_leaf_returns_counts() {
        let t = example_tree();
        let (id, counts) = t.predict_leaf(&[1.0, 0.0]);
        assert_eq!(id, NodeId(2));
        assert_eq!(counts, &[0, 0, 10]);
    }

    #[test]
    fn feature_importances_of_example_tree() {
        let t = example_tree();
        let imp = t.feature_importances();
        assert_eq!(imp.len(), 2);
        // Both features split somewhere, so both get positive weight,
        // normalized to 1.
        assert!(imp.iter().all(|&v| v > 0.0));
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Feature 0 splits at the root over all 30 samples and isolates
        // the pure class-2 leaf — it must dominate.
        assert!(imp[0] > imp[1], "{imp:?}");
    }

    #[test]
    fn feature_importances_of_single_leaf() {
        let t = DecisionTree::new(
            vec![Node::Leaf {
                class: 0,
                counts: vec![3, 1],
            }],
            2,
            2,
        )
        .expect("valid");
        assert_eq!(t.feature_importances(), vec![0.0, 0.0]);
    }

    #[test]
    fn validation_rejects_empty() {
        assert_eq!(
            DecisionTree::new(vec![], 1, 2).unwrap_err(),
            ValidateTreeError::Empty
        );
    }

    #[test]
    fn validation_rejects_dangling_child() {
        let err = DecisionTree::new(
            vec![Node::Split {
                feature: 0,
                threshold: 0.0,
                left: NodeId(7),
                right: NodeId(8),
            }],
            1,
            2,
        )
        .unwrap_err();
        assert_eq!(err, ValidateTreeError::DanglingChild { node: NodeId(0) });
    }

    #[test]
    fn validation_rejects_bad_feature_and_nan() {
        let leaf = Node::Leaf {
            class: 0,
            counts: vec![1, 0],
        };
        let err = DecisionTree::new(
            vec![
                Node::Split {
                    feature: 5,
                    threshold: 0.0,
                    left: NodeId(1),
                    right: NodeId(2),
                },
                leaf.clone(),
                leaf.clone(),
            ],
            1,
            2,
        )
        .unwrap_err();
        assert_eq!(err, ValidateTreeError::FeatureRange { node: NodeId(0) });

        let err = DecisionTree::new(
            vec![
                Node::Split {
                    feature: 0,
                    threshold: f32::NAN,
                    left: NodeId(1),
                    right: NodeId(2),
                },
                leaf.clone(),
                leaf,
            ],
            1,
            2,
        )
        .unwrap_err();
        assert_eq!(err, ValidateTreeError::NanThreshold { node: NodeId(0) });
    }

    #[test]
    fn validation_rejects_shared_child() {
        // Both children point at the same leaf: a DAG, not a tree.
        let err = DecisionTree::new(
            vec![
                Node::Split {
                    feature: 0,
                    threshold: 0.0,
                    left: NodeId(1),
                    right: NodeId(1),
                },
                Node::Leaf {
                    class: 0,
                    counts: vec![1, 0],
                },
            ],
            1,
            2,
        )
        .unwrap_err();
        assert_eq!(err, ValidateTreeError::NotATree { node: NodeId(1) });
    }

    #[test]
    fn validation_rejects_bad_leaf() {
        let err = DecisionTree::new(
            vec![Node::Leaf {
                class: 9,
                counts: vec![1, 0],
            }],
            1,
            2,
        )
        .unwrap_err();
        assert_eq!(err, ValidateTreeError::LeafClass { node: NodeId(0) });
        let err = DecisionTree::new(
            vec![Node::Leaf {
                class: 0,
                counts: vec![1],
            }],
            1,
            2,
        )
        .unwrap_err();
        assert_eq!(err, ValidateTreeError::LeafClass { node: NodeId(0) });
    }
}
