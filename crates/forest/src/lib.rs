//! # flint-forest — decision tree and random forest substrate
//!
//! The FLInt paper trains its models with scikit-learn; this crate is
//! the Rust replacement: CART decision trees (Gini criterion, midpoint
//! thresholds, depth caps) in [`train`], bootstrap-bagged random
//! forests in [`forest`], reference (naive float) inference on
//! [`tree::DecisionTree`], evaluation [`metrics`] and a text model
//! format in [`io`].
//!
//! Reference inference here uses plain `f32` comparisons — this is the
//! paper's *naive baseline*. The FLInt and CAGS execution backends live
//! in `flint-exec`, and all backends are tested to agree with this one
//! prediction-for-prediction.
//!
//! ```
//! use flint_forest::{ForestConfig, RandomForest};
//! use flint_data::synth::SynthSpec;
//!
//! # fn main() -> Result<(), flint_forest::train::TrainError> {
//! let data = SynthSpec::new(200, 4, 2).cluster_std(0.4).generate();
//! let forest = RandomForest::fit(&data, &ForestConfig::grid(10, 8))?;
//! let predicted = forest.predict(data.sample(0));
//! assert!(predicted < 2);
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod forest;
pub mod io;
pub mod metrics;
pub mod node;
pub mod train;
pub mod tree;
pub mod votes;

pub use forest::{plan_spans, ForestConfig, RandomForest};
pub use node::{Node, NodeId};
pub use tree::{example_tree, DecisionTree, ValidateTreeError};
