//! Classification metrics (accuracy parity between backends is the
//! paper's correctness claim: FLInt "keeps the model accuracy
//! unchanged").

/// Fraction of predictions equal to the true labels.
///
/// Returns 1.0 for empty inputs (vacuous truth keeps aggregate code
/// simple).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use flint_forest::metrics::accuracy;
///
/// assert_eq!(accuracy(&[0, 1, 1], &[0, 1, 0]), 2.0 / 3.0);
/// ```
pub fn accuracy(predictions: &[u32], labels: &[u32]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    if predictions.is_empty() {
        return 1.0;
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / predictions.len() as f64
}

/// Confusion matrix: `matrix[true][predicted]` counts.
///
/// # Panics
///
/// Panics on length mismatch or labels/predictions `>= n_classes`.
///
/// # Examples
///
/// ```
/// use flint_forest::metrics::confusion_matrix;
///
/// let m = confusion_matrix(&[0, 1, 1], &[0, 1, 0], 2);
/// assert_eq!(m[0][0], 1); // true 0 predicted 0
/// assert_eq!(m[0][1], 1); // true 0 predicted 1
/// assert_eq!(m[1][1], 1);
/// ```
pub fn confusion_matrix(predictions: &[u32], labels: &[u32], n_classes: usize) -> Vec<Vec<u32>> {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let mut matrix = vec![vec![0u32; n_classes]; n_classes];
    for (&p, &l) in predictions.iter().zip(labels) {
        matrix[l as usize][p as usize] += 1;
    }
    matrix
}

/// Per-class recall: `matrix[c][c] / Σ_k matrix[c][k]` (NaN-free: empty
/// classes report 0).
pub fn per_class_recall(matrix: &[Vec<u32>]) -> Vec<f64> {
    matrix
        .iter()
        .enumerate()
        .map(|(c, row)| {
            let total: u32 = row.iter().sum();
            if total == 0 {
                0.0
            } else {
                f64::from(row[c]) / f64::from(total)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_bounds() {
        assert_eq!(accuracy(&[1, 1], &[1, 1]), 1.0);
        assert_eq!(accuracy(&[0, 0], &[1, 1]), 0.0);
        assert_eq!(accuracy(&[], &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_check() {
        let _ = accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn confusion_matrix_diagonal() {
        let m = confusion_matrix(&[0, 1, 2], &[0, 1, 2], 3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[i][j], u32::from(i == j));
            }
        }
    }

    #[test]
    fn recall_handles_empty_classes() {
        let m = confusion_matrix(&[0, 0], &[0, 0], 2);
        let r = per_class_recall(&m);
        assert_eq!(r, vec![1.0, 0.0]);
    }
}
