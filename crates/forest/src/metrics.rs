//! Classification metrics (accuracy parity between backends is the
//! paper's correctness claim: FLInt "keeps the model accuracy
//! unchanged").

/// Majority vote over a per-class count histogram, ties broken to the
/// lower class index.
///
/// This is **the** canonical vote aggregation of the workspace: every
/// ensemble execution path (reference forest, the `flint-exec` scalar
/// and batch backends, QuickScorer, the codegen VM) must use it, so
/// that "bit-identical predictions across backends" can never be
/// broken by two copies of the tie-break drifting apart.
///
/// # Panics
///
/// Panics if `votes` is empty.
///
/// # Examples
///
/// ```
/// use flint_forest::metrics::majority_vote;
///
/// assert_eq!(majority_vote(&[2, 5, 1]), 1);
/// assert_eq!(majority_vote(&[3, 3, 1]), 0); // tie -> lower index
/// ```
#[inline]
pub fn majority_vote(votes: &[u32]) -> u32 {
    votes
        .iter()
        .enumerate()
        .max_by_key(|&(i, &v)| (v, core::cmp::Reverse(i)))
        .map(|(i, _)| i as u32)
        .expect("majority_vote requires at least one class")
}

/// Fraction of predictions equal to the true labels.
///
/// Returns 1.0 for empty inputs (vacuous truth keeps aggregate code
/// simple).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use flint_forest::metrics::accuracy;
///
/// assert_eq!(accuracy(&[0, 1, 1], &[0, 1, 0]), 2.0 / 3.0);
/// ```
pub fn accuracy(predictions: &[u32], labels: &[u32]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    if predictions.is_empty() {
        return 1.0;
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / predictions.len() as f64
}

/// Confusion matrix: `matrix[true][predicted]` counts.
///
/// # Panics
///
/// Panics on length mismatch or labels/predictions `>= n_classes`.
///
/// # Examples
///
/// ```
/// use flint_forest::metrics::confusion_matrix;
///
/// let m = confusion_matrix(&[0, 1, 1], &[0, 1, 0], 2);
/// assert_eq!(m[0][0], 1); // true 0 predicted 0
/// assert_eq!(m[0][1], 1); // true 0 predicted 1
/// assert_eq!(m[1][1], 1);
/// ```
pub fn confusion_matrix(predictions: &[u32], labels: &[u32], n_classes: usize) -> Vec<Vec<u32>> {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let mut matrix = vec![vec![0u32; n_classes]; n_classes];
    for (&p, &l) in predictions.iter().zip(labels) {
        matrix[l as usize][p as usize] += 1;
    }
    matrix
}

/// Per-class recall: `matrix[c][c] / Σ_k matrix[c][k]` (NaN-free: empty
/// classes report 0).
pub fn per_class_recall(matrix: &[Vec<u32>]) -> Vec<f64> {
    matrix
        .iter()
        .enumerate()
        .map(|(c, row)| {
            let total: u32 = row.iter().sum();
            if total == 0 {
                0.0
            } else {
                f64::from(row[c]) / f64::from(total)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_bounds() {
        assert_eq!(accuracy(&[1, 1], &[1, 1]), 1.0);
        assert_eq!(accuracy(&[0, 0], &[1, 1]), 0.0);
        assert_eq!(accuracy(&[], &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_check() {
        let _ = accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn confusion_matrix_diagonal() {
        let m = confusion_matrix(&[0, 1, 2], &[0, 1, 2], 3);
        for (i, row) in m.iter().enumerate() {
            for (j, &cell) in row.iter().enumerate() {
                assert_eq!(cell, u32::from(i == j));
            }
        }
    }

    #[test]
    fn recall_handles_empty_classes() {
        let m = confusion_matrix(&[0, 0], &[0, 0], 2);
        let r = per_class_recall(&m);
        assert_eq!(r, vec![1.0, 0.0]);
    }
}
