//! Random forest ensembles: bootstrap bagging over CART trees.

use crate::train::{train_tree, MaxFeatures, TrainConfig, TrainError};
use crate::tree::DecisionTree;
use flint_data::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random forest hyperparameters.
///
/// Defaults mirror scikit-learn's `RandomForestClassifier` with the
/// paper's sweeps layered on top: `n_trees` from
/// {1, 5, 10, 15, 20, 30, 50, 80, 100} and `max_depth` from
/// {1, 5, 10, 15, 20, 30, 50}.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestConfig {
    /// Ensemble size.
    pub n_trees: usize,
    /// Depth cap per tree (`None` = unbounded).
    pub max_depth: Option<usize>,
    /// Bootstrap resampling of the training set per tree.
    pub bootstrap: bool,
    /// Features considered per split ([`MaxFeatures::Sqrt`] is the
    /// sklearn default).
    pub max_features: MaxFeatures,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples per child.
    pub min_samples_leaf: usize,
    /// Master seed; per-tree seeds derive from it.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 10,
            max_depth: None,
            bootstrap: true,
            max_features: MaxFeatures::Sqrt,
            min_samples_split: 2,
            min_samples_leaf: 1,
            seed: 0,
        }
    }
}

impl ForestConfig {
    /// The paper's grid point: `n_trees` trees capped at `max_depth`.
    #[must_use]
    pub fn grid(n_trees: usize, max_depth: usize) -> Self {
        Self {
            n_trees,
            max_depth: Some(max_depth),
            ..Self::default()
        }
    }
}

/// A trained random forest.
///
/// Prediction averages the per-leaf class distributions of all trees
/// (scikit-learn's soft voting), breaking ties toward the lower class
/// index.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_features: usize,
    n_classes: usize,
}

impl RandomForest {
    /// Trains a forest on `data`.
    ///
    /// # Errors
    ///
    /// Propagates [`TrainError`] from tree training (empty data, NaN
    /// features).
    ///
    /// # Examples
    ///
    /// ```
    /// use flint_forest::forest::{ForestConfig, RandomForest};
    /// use flint_data::synth::SynthSpec;
    ///
    /// # fn main() -> Result<(), flint_forest::train::TrainError> {
    /// let data = SynthSpec::new(150, 4, 2).cluster_std(0.3).generate();
    /// let forest = RandomForest::fit(&data, &ForestConfig::grid(5, 8))?;
    /// assert_eq!(forest.n_trees(), 5);
    /// let class = forest.predict(data.sample(0));
    /// assert!(class < 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn fit(data: &Dataset, config: &ForestConfig) -> Result<Self, TrainError> {
        if data.n_samples() == 0 {
            return Err(TrainError::EmptyDataset);
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut trees = Vec::with_capacity(config.n_trees);
        for t in 0..config.n_trees {
            let tree_seed = rng.gen::<u64>() ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let tree_cfg = TrainConfig {
                max_depth: config.max_depth,
                min_samples_split: config.min_samples_split,
                min_samples_leaf: config.min_samples_leaf,
                max_features: config.max_features,
                seed: tree_seed,
            };
            let tree = if config.bootstrap {
                let indices: Vec<usize> = (0..data.n_samples())
                    .map(|_| rng.gen_range(0..data.n_samples()))
                    .collect();
                train_tree(&data.subset(&indices), &tree_cfg)?
            } else {
                train_tree(data, &tree_cfg)?
            };
            trees.push(tree);
        }
        Ok(Self {
            trees,
            n_features: data.n_features(),
            n_classes: data.n_classes(),
        })
    }

    /// Wraps pre-trained trees into a forest.
    ///
    /// # Panics
    ///
    /// Panics if `trees` is empty or trees disagree on
    /// feature/class counts.
    pub fn from_trees(trees: Vec<DecisionTree>) -> Self {
        assert!(!trees.is_empty(), "a forest needs at least one tree");
        let n_features = trees[0].n_features();
        let n_classes = trees[0].n_classes();
        for t in &trees {
            assert_eq!(t.n_features(), n_features, "inconsistent feature counts");
            assert_eq!(t.n_classes(), n_classes, "inconsistent class counts");
        }
        Self {
            trees,
            n_features,
            n_classes,
        }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Expected feature vector length.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The trees of the ensemble.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Total node count across all trees.
    pub fn n_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.n_nodes()).sum()
    }

    /// Maximum tree depth in the ensemble.
    pub fn depth(&self) -> usize {
        self.trees.iter().map(|t| t.depth()).max().unwrap_or(0)
    }

    /// Averaged class probabilities over all trees.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features()`.
    pub fn predict_proba(&self, features: &[f32]) -> Vec<f64> {
        let mut probs = vec![0.0f64; self.n_classes];
        for tree in &self.trees {
            let (_, counts) = tree.predict_leaf(features);
            let total: u32 = counts.iter().sum();
            if total > 0 {
                for (p, &c) in probs.iter_mut().zip(counts) {
                    *p += f64::from(c) / f64::from(total);
                }
            }
        }
        for p in &mut probs {
            *p /= self.trees.len() as f64;
        }
        probs
    }

    /// Predicted class: argmax of [`predict_proba`](Self::predict_proba).
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features()`.
    pub fn predict(&self, features: &[f32]) -> u32 {
        let probs = self.predict_proba(features);
        probs
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("probabilities are finite"))
            .map(|(i, _)| i as u32)
            .expect("n_classes >= 1")
    }

    /// Batch prediction over a dataset.
    pub fn predict_dataset(&self, data: &Dataset) -> Vec<u32> {
        (0..data.n_samples())
            .map(|i| self.predict(data.sample(i)))
            .collect()
    }

    /// Majority vote over the per-tree predicted classes, ties broken
    /// to the lower class index.
    ///
    /// This is the aggregation every compiled inference engine in the
    /// workspace implements (if-else backends, the batch engine,
    /// QuickScorer, the codegen VM), so it is the reference for their
    /// bit-identical-predictions differential tests. It can differ from
    /// [`predict`](Self::predict), which argmaxes *averaged leaf class
    /// distributions* rather than counting one vote per tree.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features()`.
    pub fn predict_majority(&self, features: &[f32]) -> u32 {
        crate::metrics::majority_vote(&self.predict_votes(features))
    }

    /// Per-class vote histogram over the per-tree predicted classes:
    /// `votes[c]` trees predicted class `c`, summing to
    /// [`n_trees`](Self::n_trees).
    ///
    /// This is the partial result a forest *shard* contributes in
    /// distributed inference: histograms from disjoint tree spans (see
    /// [`tree_span`](Self::tree_span)) merge by element-wise addition
    /// into exactly the histogram the whole forest would have produced,
    /// so `majority_vote(merged)` is bit-identical to single-node
    /// [`predict_majority`](Self::predict_majority). Merging shard
    /// *classes* instead of histograms would not be: two shards can
    /// disagree in a way the summed histogram settles differently than
    /// any per-shard winner.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features()`.
    pub fn predict_votes(&self, features: &[f32]) -> Vec<u32> {
        let mut votes = vec![0u32; self.n_classes];
        for tree in &self.trees {
            votes[tree.predict(features) as usize] += 1;
        }
        votes
    }

    /// The sub-forest holding trees `start..end` of this ensemble, for
    /// sharded serving: each shard loads the same model file and keeps
    /// only its span, so disjoint covering spans partition the vote.
    ///
    /// # Panics
    ///
    /// Panics if the span is empty or out of bounds.
    pub fn tree_span(&self, start: usize, end: usize) -> Self {
        assert!(
            start < end && end <= self.trees.len(),
            "tree span {start}..{end} invalid for {} trees",
            self.trees.len()
        );
        Self::from_trees(self.trees[start..end].to_vec())
    }

    /// Partitions this forest's trees into at most `n_shards`
    /// contiguous `(start, end)` spans for
    /// [`tree_span`](Self::tree_span) — the same `div_ceil` span
    /// template the batch scorer uses for worker spans. The spans
    /// cover every tree exactly once and are never empty, so the
    /// returned count can be below `n_shards` when there are more
    /// shards than trees (or the ceiling division leaves a trailing
    /// span nothing falls into).
    pub fn plan_spans(&self, n_shards: usize) -> Vec<(usize, usize)> {
        plan_spans(self.trees.len(), n_shards)
    }

    /// Batch [`predict_majority`](Self::predict_majority) over a
    /// dataset.
    pub fn predict_dataset_majority(&self, data: &Dataset) -> Vec<u32> {
        (0..data.n_samples())
            .map(|i| self.predict_majority(data.sample(i)))
            .collect()
    }

    /// Mean Gini feature importances across the ensemble, normalized to
    /// sum to 1 (scikit-learn semantics).
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut sums = vec![0.0f64; self.n_features];
        for tree in &self.trees {
            for (s, v) in sums.iter_mut().zip(tree.feature_importances()) {
                *s += v;
            }
        }
        let total: f64 = sums.iter().sum();
        if total > 0.0 {
            for s in &mut sums {
                *s /= total;
            }
        }
        sums
    }
}

/// Partitions `n_trees` into at most `n_shards` contiguous
/// `(start, end)` spans: ceiling-divided so earlier spans are never
/// smaller than later ones, covering every tree exactly once with no
/// empty spans. This is the shard-assignment side of the workspace's
/// one span-partitioning template (the batch scorer applies the same
/// shape to output rows).
///
/// # Panics
///
/// Panics when `n_trees` is zero — there is nothing to shard.
pub fn plan_spans(n_trees: usize, n_shards: usize) -> Vec<(usize, usize)> {
    assert!(n_trees > 0, "cannot shard an empty forest");
    let shards = n_shards.clamp(1, n_trees);
    let span = n_trees.div_ceil(shards);
    (0..shards)
        .map(|s| (s * span, ((s + 1) * span).min(n_trees)))
        .filter(|(start, end)| start < end)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use flint_data::synth::SynthSpec;
    use flint_data::train_test_split;

    fn data() -> Dataset {
        SynthSpec::new(300, 5, 3)
            .cluster_std(0.5)
            .seed(2)
            .generate()
    }

    #[test]
    fn plan_spans_covers_every_tree_exactly_once() {
        for (n_trees, n_shards) in [(5, 1), (5, 2), (5, 5), (5, 9), (10, 3), (10, 6), (1, 4)] {
            let spans = plan_spans(n_trees, n_shards);
            assert!(spans.len() <= n_shards.max(1), "{n_trees}/{n_shards}");
            assert_eq!(spans.first().map(|s| s.0), Some(0));
            assert_eq!(spans.last().map(|s| s.1), Some(n_trees));
            for pair in spans.windows(2) {
                assert_eq!(pair[0].1, pair[1].0, "spans must tile: {spans:?}");
            }
            for (start, end) in &spans {
                assert!(start < end, "no empty spans: {spans:?}");
            }
        }
        assert_eq!(plan_spans(5, 2), vec![(0, 3), (3, 5)]);
        assert_eq!(plan_spans(5, 0), vec![(0, 5)]);
    }

    #[test]
    fn forest_learns_separable_data() {
        let ds = data();
        let split = train_test_split(&ds, 0.25, 0);
        let forest =
            RandomForest::fit(&split.train, &ForestConfig::grid(10, 12)).expect("trainable");
        let preds = forest.predict_dataset(&split.test);
        let acc = accuracy(&preds, split.test.labels());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = data();
        let a = RandomForest::fit(&ds, &ForestConfig::grid(3, 5)).expect("trainable");
        let b = RandomForest::fit(&ds, &ForestConfig::grid(3, 5)).expect("trainable");
        assert_eq!(a, b);
        let c = RandomForest::fit(
            &ds,
            &ForestConfig {
                seed: 99,
                ..ForestConfig::grid(3, 5)
            },
        )
        .expect("trainable");
        assert_ne!(a, c);
    }

    #[test]
    fn bootstrap_trees_differ() {
        let ds = data();
        let forest = RandomForest::fit(&ds, &ForestConfig::grid(5, 10)).expect("trainable");
        let distinct = forest.trees().iter().any(|t| t != &forest.trees()[0]);
        assert!(distinct, "bootstrap should diversify trees");
    }

    #[test]
    fn majority_vote_counts_one_vote_per_tree() {
        let ds = data();
        let forest = RandomForest::fit(&ds, &ForestConfig::grid(7, 9)).expect("trainable");
        for i in 0..ds.n_samples() {
            let x = ds.sample(i);
            let mut votes = vec![0u32; forest.n_classes()];
            for tree in forest.trees() {
                votes[tree.predict(x) as usize] += 1;
            }
            let want = crate::metrics::majority_vote(&votes);
            assert_eq!(forest.predict_majority(x), want, "sample {i}");
        }
        assert_eq!(
            forest.predict_dataset_majority(&ds),
            (0..ds.n_samples())
                .map(|i| forest.predict_majority(ds.sample(i)))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn probabilities_sum_to_one() {
        let ds = data();
        let forest = RandomForest::fit(&ds, &ForestConfig::grid(4, 6)).expect("trainable");
        for i in 0..10 {
            let p = forest.predict_proba(ds.sample(i));
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn respects_depth_cap() {
        let ds = data();
        let forest = RandomForest::fit(&ds, &ForestConfig::grid(5, 3)).expect("trainable");
        assert!(forest.depth() <= 3);
    }

    #[test]
    fn from_trees_roundtrip() {
        let ds = data();
        let forest = RandomForest::fit(&ds, &ForestConfig::grid(3, 4)).expect("trainable");
        let rebuilt = RandomForest::from_trees(forest.trees().to_vec());
        assert_eq!(rebuilt.predict(ds.sample(0)), forest.predict(ds.sample(0)));
        assert_eq!(rebuilt.n_nodes(), forest.n_nodes());
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn from_trees_rejects_empty() {
        let _ = RandomForest::from_trees(vec![]);
    }

    #[test]
    fn sharded_votes_merge_to_the_single_node_answer() {
        let ds = data();
        let forest = RandomForest::fit(&ds, &ForestConfig::grid(7, 8)).expect("trainable");
        // Ragged split on purpose: spans 0..3, 3..4, 4..7.
        let spans = [(0, 3), (3, 4), (4, 7)];
        let shards: Vec<_> = spans.iter().map(|&(a, b)| forest.tree_span(a, b)).collect();
        for i in 0..ds.n_samples() {
            let x = ds.sample(i);
            let full = forest.predict_votes(x);
            assert_eq!(full.iter().sum::<u32>() as usize, forest.n_trees());
            let mut merged = vec![0u32; forest.n_classes()];
            for shard in &shards {
                crate::votes::merge_votes(&mut merged, &shard.predict_votes(x));
            }
            assert_eq!(merged, full, "sample {i}");
            assert_eq!(
                crate::metrics::majority_vote(&merged),
                forest.predict_majority(x)
            );
        }
    }

    #[test]
    #[should_panic(expected = "tree span")]
    fn tree_span_rejects_out_of_bounds() {
        let ds = data();
        let forest = RandomForest::fit(&ds, &ForestConfig::grid(3, 4)).expect("trainable");
        let _ = forest.tree_span(1, 5);
    }

    #[test]
    fn importances_find_the_informative_features() {
        // 2 informative + 3 noise features: the informative ones must
        // collect the bulk of the importance mass.
        let ds = SynthSpec::new(400, 5, 2)
            .informative(2)
            .cluster_std(0.5)
            .seed(9)
            .generate();
        let forest = RandomForest::fit(&ds, &ForestConfig::grid(10, 8)).expect("trainable");
        let imp = forest.feature_importances();
        assert_eq!(imp.len(), 5);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let informative: f64 = imp[..2].iter().sum();
        assert!(
            informative > 0.7,
            "informative mass {informative} of {imp:?}"
        );
    }

    #[test]
    fn empty_dataset_rejected() {
        let empty = Dataset::from_rows(1, 2, vec![]).expect("builds");
        assert_eq!(
            RandomForest::fit(&empty, &ForestConfig::default()).unwrap_err(),
            TrainError::EmptyDataset
        );
    }
}
