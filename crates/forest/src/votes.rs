//! Partial-vote wire serialization for sharded inference.
//!
//! A forest shard answers a request with its per-class vote histogram
//! (see [`RandomForest::predict_votes`](crate::RandomForest::predict_votes));
//! the router merges the shard histograms with [`merge_votes`] and
//! applies the canonical [`majority_vote`](crate::metrics::majority_vote)
//! tie-break, so the distributed answer is bit-identical to single-node
//! `predict_majority`. The wire format is the JSON array literal
//! (`[3,0,2]`) — the one fragment both the serve protocol's JSON
//! responses and this crate need to agree on, which is why it lives
//! here rather than in the server.

use core::fmt;

/// Renders a vote histogram as a JSON array literal: `[3,0,2]`.
///
/// # Examples
///
/// ```
/// use flint_forest::votes::render_votes;
///
/// assert_eq!(render_votes(&[3, 0, 2]), "[3,0,2]");
/// assert_eq!(render_votes(&[]), "[]");
/// ```
pub fn render_votes(votes: &[u32]) -> String {
    let mut out = String::with_capacity(2 + votes.len() * 3);
    out.push('[');
    for (i, v) in votes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
    out
}

/// Why a vote-histogram literal failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseVotesError {
    /// The text is not bracketed by `[` and `]`.
    NotAnArray,
    /// An element is not a `u32` count.
    BadCount(String),
}

impl fmt::Display for ParseVotesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotAnArray => write!(f, "votes must be a [..] array literal"),
            Self::BadCount(s) => write!(f, "bad vote count {s:?}"),
        }
    }
}

impl std::error::Error for ParseVotesError {}

/// Parses a [`render_votes`]-formatted histogram back into counts.
///
/// Accepts surrounding whitespace around the array and its elements;
/// an empty array parses to an empty histogram.
///
/// # Examples
///
/// ```
/// use flint_forest::votes::parse_votes;
///
/// assert_eq!(parse_votes("[3, 0, 2]").unwrap(), vec![3, 0, 2]);
/// assert!(parse_votes("3,0,2").is_err());
/// ```
pub fn parse_votes(text: &str) -> Result<Vec<u32>, ParseVotesError> {
    let inner = text
        .trim()
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or(ParseVotesError::NotAnArray)?;
    if inner.trim().is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|tok| {
            tok.trim()
                .parse::<u32>()
                .map_err(|_| ParseVotesError::BadCount(tok.trim().to_owned()))
        })
        .collect()
}

/// Element-wise sum of a shard's partial histogram into an accumulator.
///
/// # Panics
///
/// Panics if the histograms disagree on class count — shards serving
/// different models must never be merged.
///
/// # Examples
///
/// ```
/// use flint_forest::votes::merge_votes;
///
/// let mut acc = vec![3, 0, 2];
/// merge_votes(&mut acc, &[0, 4, 1]);
/// assert_eq!(acc, vec![3, 4, 3]);
/// ```
pub fn merge_votes(acc: &mut [u32], partial: &[u32]) {
    assert_eq!(
        acc.len(),
        partial.len(),
        "vote histograms disagree on class count"
    );
    for (a, p) in acc.iter_mut().zip(partial) {
        *a += p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::majority_vote;

    #[test]
    fn render_parse_round_trip() {
        for votes in [vec![], vec![7], vec![3, 0, 2], vec![0, 0, u32::MAX]] {
            let wire = render_votes(&votes);
            assert_eq!(parse_votes(&wire).unwrap(), votes, "{wire}");
        }
    }

    #[test]
    fn parse_tolerates_whitespace() {
        assert_eq!(parse_votes("  [ 1 , 2 ,3 ]\t").unwrap(), vec![1, 2, 3]);
        assert_eq!(parse_votes("[ ]").unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn parse_rejects_malformed() {
        assert_eq!(parse_votes("1,2,3"), Err(ParseVotesError::NotAnArray));
        assert_eq!(parse_votes("[1,2"), Err(ParseVotesError::NotAnArray));
        assert_eq!(
            parse_votes("[1,x]"),
            Err(ParseVotesError::BadCount("x".into()))
        );
        assert_eq!(
            parse_votes("[1,-2]"),
            Err(ParseVotesError::BadCount("-2".into()))
        );
        assert_eq!(
            parse_votes("[1,,2]"),
            Err(ParseVotesError::BadCount("".into()))
        );
    }

    #[test]
    fn merged_histogram_beats_merged_winners() {
        // Shard 1 votes {c0:3, c1:2}; shard 2 votes {c1:3, c2:2}. The
        // true merge picks c1 (5 votes); merging the per-shard winner
        // classes would tie 3-3 and break to c0 — the counterexample
        // that forces histogram (not class) merging for bit-identity.
        let mut acc = vec![3, 2, 0];
        merge_votes(&mut acc, &[0, 3, 2]);
        assert_eq!(acc, vec![3, 5, 2]);
        assert_eq!(majority_vote(&acc), 1);
        let winner_merge = majority_vote(&[1, 1, 0]); // one "vote" per shard winner
        assert_eq!(winner_merge, 0, "class merging breaks the tie differently");
    }

    #[test]
    #[should_panic(expected = "class count")]
    fn merge_rejects_mismatched_classes() {
        merge_votes(&mut [1, 2], &[1, 2, 3]);
    }
}
