//! Tree node representation (Section IV-A of the paper).
//!
//! The paper models a decision tree as a node set where every node
//! carries a feature index `FI(n)`, split value `SP(n)`, child pointers
//! `LC(n)`/`RC(n)` and (for leaves) a prediction `PR(n)`. We store the
//! nodes in an arena (`Vec<Node>`) addressed by [`NodeId`]; the
//! execution crates flatten this arena into cache-conscious layouts.

/// Index of a node within its tree's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The root node of every tree.
    pub const ROOT: NodeId = NodeId(0);

    /// The arena index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One decision tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Inner node: `feature <= threshold` goes left, else right.
    Split {
        /// Feature index `FI(n)` tested by this node.
        feature: u32,
        /// Split value `SP(n)` (an `f32`, as produced by training).
        threshold: f32,
        /// Left child `LC(n)` — taken when `x[feature] <= threshold`.
        left: NodeId,
        /// Right child `RC(n)` — taken otherwise.
        right: NodeId,
    },
    /// Leaf node carrying the class distribution of its training
    /// samples. The prediction `PR(n)` is the argmax class.
    Leaf {
        /// Majority class.
        class: u32,
        /// Per-class sample counts observed at training time (used for
        /// probability averaging across a forest).
        counts: Vec<u32>,
    },
}

impl Node {
    /// `true` for leaf nodes.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// The leaf's class, or `None` for split nodes.
    pub fn leaf_class(&self) -> Option<u32> {
        match self {
            Node::Leaf { class, .. } => Some(*class),
            Node::Split { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_basics() {
        assert_eq!(NodeId::ROOT.index(), 0);
        assert_eq!(NodeId(5).index(), 5);
        assert_eq!(NodeId(5).to_string(), "n5");
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    fn leaf_accessors() {
        let leaf = Node::Leaf {
            class: 2,
            counts: vec![0, 1, 5],
        };
        assert!(leaf.is_leaf());
        assert_eq!(leaf.leaf_class(), Some(2));
        let split = Node::Split {
            feature: 0,
            threshold: 1.5,
            left: NodeId(1),
            right: NodeId(2),
        };
        assert!(!split.is_leaf());
        assert_eq!(split.leaf_class(), None);
    }
}
