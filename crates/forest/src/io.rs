//! Plain-text model persistence.
//!
//! No serde *format* crate is in the sanctioned dependency set, so
//! models are stored in a small line-oriented text format. Thresholds
//! are written as the hexadecimal `f32` bit pattern, which both
//! round-trips exactly and matches how the paper's code generator
//! embeds split values as integer immediates.
//!
//! ```text
//! flint-forest v1
//! forest n_features=2 n_classes=3 n_trees=1
//! tree n_nodes=3
//! split feature=0 bits=3f000000 left=1 right=2
//! leaf class=0 counts=8,2,0
//! leaf class=2 counts=0,0,10
//! end
//! ```

use crate::node::{Node, NodeId};
use crate::tree::DecisionTree;
use crate::RandomForest;
use std::io::{BufRead, BufWriter, Write};

/// Error reading a model file.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReadModelError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or syntactic problem at a line.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// The reconstructed tree failed validation.
    InvalidTree(crate::tree::ValidateTreeError),
}

impl core::fmt::Display for ReadModelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error reading model: {e}"),
            Self::Syntax { line, message } => write!(f, "line {line}: {message}"),
            Self::InvalidTree(e) => write!(f, "model decodes to an invalid tree: {e}"),
        }
    }
}

impl std::error::Error for ReadModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::InvalidTree(e) => Some(e),
            Self::Syntax { .. } => None,
        }
    }
}

impl From<std::io::Error> for ReadModelError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Writes a forest in the v1 text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use flint_forest::{io, ForestConfig, RandomForest};
/// use flint_data::synth::SynthSpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = SynthSpec::new(80, 3, 2).generate();
/// let forest = RandomForest::fit(&data, &ForestConfig::grid(2, 4))?;
/// let mut buf = Vec::new();
/// io::write_forest(&forest, &mut buf)?;
/// let back = io::read_forest(&buf[..])?;
/// assert_eq!(back, forest);
/// # Ok(())
/// # }
/// ```
pub fn write_forest<W: Write>(forest: &RandomForest, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "flint-forest v1")?;
    writeln!(
        w,
        "forest n_features={} n_classes={} n_trees={}",
        forest.n_features(),
        forest.n_classes(),
        forest.n_trees()
    )?;
    for tree in forest.trees() {
        writeln!(w, "tree n_nodes={}", tree.n_nodes())?;
        for node in tree.nodes() {
            match node {
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => writeln!(
                    w,
                    "split feature={feature} bits={:08x} left={} right={}",
                    threshold.to_bits(),
                    left.0,
                    right.0
                )?,
                Node::Leaf { class, counts } => {
                    let counts_text: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
                    writeln!(w, "leaf class={class} counts={}", counts_text.join(","))?
                }
            }
        }
    }
    writeln!(w, "end")?;
    w.flush()
}

/// Reads a forest written by [`write_forest`].
///
/// # Errors
///
/// [`ReadModelError`] on I/O failure, malformed syntax, or trees that
/// fail structural validation.
pub fn read_forest<R: BufRead>(reader: R) -> Result<RandomForest, ReadModelError> {
    let mut lines = reader.lines().enumerate();
    let mut next_line = || -> Result<(usize, String), ReadModelError> {
        loop {
            match lines.next() {
                None => {
                    return Err(ReadModelError::Syntax {
                        line: 0,
                        message: "unexpected end of file".into(),
                    })
                }
                Some((i, line)) => {
                    let line = line?;
                    if !line.trim().is_empty() {
                        return Ok((i + 1, line));
                    }
                }
            }
        }
    };
    let syntax = |line: usize, message: &str| ReadModelError::Syntax {
        line,
        message: message.to_owned(),
    };

    let (ln, header) = next_line()?;
    if header.trim() != "flint-forest v1" {
        return Err(syntax(ln, "expected header `flint-forest v1`"));
    }
    let (ln, forest_line) = next_line()?;
    let fields = parse_fields(&forest_line, "forest").ok_or_else(|| {
        syntax(
            ln,
            "expected `forest n_features=.. n_classes=.. n_trees=..`",
        )
    })?;
    let n_features = get_usize(&fields, "n_features").ok_or_else(|| syntax(ln, "n_features"))?;
    let n_classes = get_usize(&fields, "n_classes").ok_or_else(|| syntax(ln, "n_classes"))?;
    let n_trees = get_usize(&fields, "n_trees").ok_or_else(|| syntax(ln, "n_trees"))?;

    let mut trees = Vec::with_capacity(n_trees);
    for _ in 0..n_trees {
        let (ln, tree_line) = next_line()?;
        let fields = parse_fields(&tree_line, "tree")
            .ok_or_else(|| syntax(ln, "expected `tree n_nodes=..`"))?;
        let n_nodes = get_usize(&fields, "n_nodes").ok_or_else(|| syntax(ln, "n_nodes"))?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let (ln, node_line) = next_line()?;
            let trimmed = node_line.trim();
            if let Some(fields) = parse_fields(trimmed, "split") {
                let feature =
                    get_usize(&fields, "feature").ok_or_else(|| syntax(ln, "feature"))? as u32;
                let bits = fields
                    .iter()
                    .find(|(k, _)| *k == "bits")
                    .and_then(|(_, v)| u32::from_str_radix(v, 16).ok())
                    .ok_or_else(|| syntax(ln, "bits"))?;
                let left = get_usize(&fields, "left").ok_or_else(|| syntax(ln, "left"))? as u32;
                let right = get_usize(&fields, "right").ok_or_else(|| syntax(ln, "right"))? as u32;
                nodes.push(Node::Split {
                    feature,
                    threshold: f32::from_bits(bits),
                    left: NodeId(left),
                    right: NodeId(right),
                });
            } else if let Some(fields) = parse_fields(trimmed, "leaf") {
                let class = get_usize(&fields, "class").ok_or_else(|| syntax(ln, "class"))? as u32;
                let counts_text = fields
                    .iter()
                    .find(|(k, _)| *k == "counts")
                    .map(|(_, v)| *v)
                    .ok_or_else(|| syntax(ln, "counts"))?;
                let counts: Option<Vec<u32>> =
                    counts_text.split(',').map(|c| c.parse().ok()).collect();
                let counts = counts.ok_or_else(|| syntax(ln, "counts must be integers"))?;
                nodes.push(Node::Leaf { class, counts });
            } else {
                return Err(syntax(ln, "expected `split ...` or `leaf ...`"));
            }
        }
        trees.push(
            DecisionTree::new(nodes, n_features, n_classes).map_err(ReadModelError::InvalidTree)?,
        );
    }
    let (ln, end) = next_line()?;
    if end.trim() != "end" {
        return Err(syntax(ln, "expected trailing `end`"));
    }
    if trees.is_empty() {
        return Err(syntax(ln, "a forest needs at least one tree"));
    }
    Ok(RandomForest::from_trees(trees))
}

/// Parses `tag k1=v1 k2=v2 ...` into key/value pairs; `None` if the tag
/// doesn't match.
fn parse_fields<'a>(line: &'a str, tag: &str) -> Option<Vec<(&'a str, &'a str)>> {
    let mut parts = line.split_whitespace();
    if parts.next()? != tag {
        return None;
    }
    let mut fields = Vec::new();
    for part in parts {
        let (k, v) = part.split_once('=')?;
        fields.push((k, v));
    }
    Some(fields)
}

fn get_usize(fields: &[(&str, &str)], key: &str) -> Option<usize> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;
    use flint_data::synth::SynthSpec;

    fn forest() -> RandomForest {
        let data = SynthSpec::new(120, 4, 3).seed(1).generate();
        RandomForest::fit(&data, &ForestConfig::grid(3, 6)).expect("trainable")
    }

    #[test]
    fn round_trip_exact() {
        let f = forest();
        let mut buf = Vec::new();
        write_forest(&f, &mut buf).expect("write");
        let back = read_forest(&buf[..]).expect("read");
        assert_eq!(back, f);
    }

    #[test]
    fn negative_and_special_thresholds_round_trip() {
        // Hand-built tree with a negative and a subnormal threshold.
        let tree = DecisionTree::new(
            vec![
                Node::Split {
                    feature: 0,
                    threshold: -2.935417,
                    left: NodeId(1),
                    right: NodeId(2),
                },
                Node::Split {
                    feature: 0,
                    threshold: f32::from_bits(1),
                    left: NodeId(3),
                    right: NodeId(4),
                },
                Node::Leaf {
                    class: 1,
                    counts: vec![0, 5],
                },
                Node::Leaf {
                    class: 0,
                    counts: vec![5, 0],
                },
                Node::Leaf {
                    class: 1,
                    counts: vec![1, 2],
                },
            ],
            1,
            2,
        )
        .expect("valid");
        let f = RandomForest::from_trees(vec![tree]);
        let mut buf = Vec::new();
        write_forest(&f, &mut buf).expect("write");
        let back = read_forest(&buf[..]).expect("read");
        assert_eq!(back, f);
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_forest("not a model\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadModelError::Syntax { line: 1, .. }));
    }

    #[test]
    fn rejects_truncated_file() {
        let f = forest();
        let mut buf = Vec::new();
        write_forest(&f, &mut buf).expect("write");
        let cut = buf.len() / 2;
        let err = read_forest(&buf[..cut]).unwrap_err();
        assert!(matches!(err, ReadModelError::Syntax { .. }));
    }

    #[test]
    fn rejects_garbage_node_line() {
        let text = "flint-forest v1\nforest n_features=1 n_classes=2 n_trees=1\ntree n_nodes=1\nbogus stuff\nend\n";
        let err = read_forest(text.as_bytes()).unwrap_err();
        assert!(matches!(err, ReadModelError::Syntax { line: 4, .. }));
    }

    #[test]
    fn rejects_structurally_invalid_tree() {
        // Dangling child pointer.
        let text = "flint-forest v1\nforest n_features=1 n_classes=2 n_trees=1\ntree n_nodes=1\nsplit feature=0 bits=3f800000 left=5 right=6\nend\n";
        let err = read_forest(text.as_bytes()).unwrap_err();
        assert!(matches!(err, ReadModelError::InvalidTree(_)));
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let text = "flint-forest v1\nforest n_features=1 n_classes=2 n_trees=1\ntree n_nodes=1\nleaf class=0 counts=a,b\nend\n";
        let err = read_forest(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 4"), "{err}");
    }
}
