//! Property-based tests of the training substrate: structural
//! invariants that must hold for every trained tree and forest.

use flint_data::synth::SynthSpec;
use flint_data::Dataset;
use flint_forest::train::{train_tree, MaxFeatures, TrainConfig};
use flint_forest::{io, ForestConfig, Node, RandomForest};
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..5, 2usize..4, 40usize..160, 0u64..1000).prop_map(|(nf, nc, n, seed)| {
        SynthSpec::new(n, nf, nc)
            .cluster_std(1.0)
            .negative_fraction(0.5)
            .seed(seed)
            .generate()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Depth caps hold for every dataset and every cap.
    #[test]
    fn trained_depth_never_exceeds_cap(data in dataset_strategy(), cap in 0usize..12) {
        let tree = train_tree(&data, &TrainConfig::with_max_depth(cap)).expect("trains");
        prop_assert!(tree.depth() <= cap, "depth {} > cap {cap}", tree.depth());
    }

    /// Every leaf's class-count histogram sums to a partition of the
    /// training set: total across leaves equals the sample count.
    #[test]
    fn leaf_counts_partition_the_training_set(data in dataset_strategy()) {
        let tree = train_tree(&data, &TrainConfig::with_max_depth(6)).expect("trains");
        let total: u32 = tree
            .nodes()
            .iter()
            .filter_map(|n| match n {
                Node::Leaf { counts, .. } => Some(counts.iter().sum::<u32>()),
                Node::Split { .. } => None,
            })
            .sum();
        prop_assert_eq!(total as usize, data.n_samples());
    }

    /// Thresholds always lie strictly between two observed feature
    /// values (no degenerate splits), and are never NaN.
    #[test]
    fn thresholds_are_finite_and_separating(data in dataset_strategy()) {
        let tree = train_tree(&data, &TrainConfig::with_max_depth(8)).expect("trains");
        for t in tree.thresholds() {
            prop_assert!(!t.is_nan());
            prop_assert!(t.is_finite());
        }
        // The root split must route at least one training sample each way.
        if let Node::Split { feature, threshold, .. } = &tree.nodes()[0] {
            let f = *feature as usize;
            let left = (0..data.n_samples())
                .filter(|&i| data.sample(i)[f] <= *threshold)
                .count();
            prop_assert!(left > 0 && left < data.n_samples());
        }
    }

    /// Predictions are always valid class indices, for arbitrary
    /// (non-NaN) inputs — not just training-distribution inputs.
    #[test]
    fn predictions_are_valid_classes(
        data in dataset_strategy(),
        raw in proptest::collection::vec(any::<u32>(), 8),
    ) {
        let forest = RandomForest::fit(&data, &ForestConfig::grid(3, 6)).expect("trains");
        let features: Vec<f32> = raw
            .iter()
            .take(data.n_features())
            .map(|&b| {
                let v = f32::from_bits(b);
                if v.is_nan() { 0.0 } else { v }
            })
            .chain(std::iter::repeat(0.0))
            .take(data.n_features())
            .collect();
        let class = forest.predict(&features);
        prop_assert!((class as usize) < data.n_classes());
    }

    /// The text model format round-trips every trained forest exactly.
    #[test]
    fn model_io_round_trips(data in dataset_strategy(), n_trees in 1usize..5) {
        let forest = RandomForest::fit(&data, &ForestConfig::grid(n_trees, 5)).expect("trains");
        let mut buf = Vec::new();
        io::write_forest(&forest, &mut buf).expect("writes");
        let back = io::read_forest(&buf[..]).expect("reads");
        prop_assert_eq!(back, forest);
    }

    /// Feature subsampling (sqrt) still yields working trees.
    #[test]
    fn sqrt_features_trains_valid_trees(data in dataset_strategy(), seed in 0u64..100) {
        let cfg = TrainConfig {
            max_depth: Some(6),
            max_features: MaxFeatures::Sqrt,
            seed,
            ..TrainConfig::default()
        };
        let tree = train_tree(&data, &cfg).expect("trains");
        // Every feature index within range is enforced by validation,
        // which `train_tree` runs; reaching here is the assertion.
        prop_assert!(tree.n_nodes() >= 1);
    }
}
