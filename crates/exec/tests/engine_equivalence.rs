//! Cross-engine differential suite: every engine of the registry —
//! scalar and blocked if-else backends, QuickScorer in both comparison
//! modes, the three codegen VM variants — must return **bit-identical**
//! labels to the forest's own majority vote, on every dataset, for
//! every batch shape and thread count.
//!
//! This is the workspace-wide generalization of the paper's claim: not
//! only is FLInt a drop-in replacement for float comparison inside one
//! traversal, but *every* registered execution strategy is a drop-in
//! replacement for every other.
//!
//! The reference is [`RandomForest::predict_majority`] (one vote per
//! tree, ties to the lower class index) — the aggregation every engine
//! implements. `RandomForest::predict` is *not* the reference: it
//! argmaxes averaged leaf class distributions, which is a different
//! (probability-weighted) aggregation and can legitimately disagree
//! with a vote count on close calls.

use flint_data::synth::SynthSpec;
use flint_data::uci::{Scale, UciDataset};
use flint_data::FeatureMatrix;
use flint_exec::{BatchOptions, EngineBuilder};
use flint_forest::{ForestConfig, RandomForest};
use proptest::prelude::*;

#[test]
fn all_registered_engines_agree_on_all_uci_datasets() {
    for ds in UciDataset::ALL {
        let data = ds.generate(Scale::Tiny);
        let forest = RandomForest::fit(&data, &ForestConfig::grid(5, 10)).expect("trainable");
        let matrix = FeatureMatrix::from_dataset(&data);
        let reference = forest.predict_dataset_majority(&data);
        let builder = EngineBuilder::new(&forest).profile_data(&data);
        for engine in builder.build_all().expect("all engines build") {
            assert_eq!(
                engine.predict_matrix(&matrix),
                reference,
                "{} diverges on {}",
                engine.name(),
                ds.name()
            );
        }
    }
}

#[test]
fn all_registered_engines_agree_across_batch_shapes_and_threads() {
    let data = SynthSpec::new(230, 5, 3)
        .cluster_std(1.0)
        .negative_fraction(0.5)
        .seed(13)
        .generate();
    let forest = RandomForest::fit(&data, &ForestConfig::grid(6, 9)).expect("trainable");
    let matrix = FeatureMatrix::from_dataset(&data);
    let reference = forest.predict_dataset_majority(&data);
    let builder = EngineBuilder::new(&forest).profile_data(&data);
    for engine in builder.build_all().expect("all engines build") {
        // 10_000 exceeds the dataset; 1 degenerates to per-sample spans.
        for block in [1usize, 7, 64, 10_000] {
            for threads in [1usize, 4] {
                let opts = BatchOptions::default()
                    .block_samples(block)
                    .threads(threads);
                assert_eq!(
                    engine.predict_batch(&matrix, &opts),
                    reference,
                    "{} block {block} threads {threads}",
                    engine.name()
                );
            }
        }
    }
}

#[test]
fn predict_one_matches_predict_batch_for_every_engine() {
    let data = SynthSpec::new(160, 4, 3).seed(7).generate();
    let forest = RandomForest::fit(&data, &ForestConfig::grid(5, 8)).expect("trainable");
    let matrix = FeatureMatrix::from_dataset(&data);
    let builder = EngineBuilder::new(&forest).profile_data(&data);
    for engine in builder.build_all().expect("all engines build") {
        let batch = engine.predict_matrix(&matrix);
        for (i, &label) in batch.iter().enumerate() {
            assert_eq!(
                engine.predict_one(data.sample(i)),
                label,
                "{} sample {i}",
                engine.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any forest, any dataset, any batch options in the practical
    /// envelope: every registered engine is indistinguishable from the
    /// forest's majority vote.
    #[test]
    fn every_engine_is_bit_identical_under_random_options(
        seed in 0u64..64,
        depth in 1usize..9,
        n_trees in 1usize..8,
        block in 1usize..200,
        block_trees in 1usize..9,
        threads in 1usize..6,
    ) {
        let data = SynthSpec::new(90, 4, 3)
            .cluster_std(1.1)
            .negative_fraction(0.5)
            .seed(seed)
            .generate();
        let forest =
            RandomForest::fit(&data, &ForestConfig::grid(n_trees, depth)).expect("trainable");
        let matrix = FeatureMatrix::from_dataset(&data);
        let reference = forest.predict_dataset_majority(&data);
        let opts = BatchOptions {
            block_samples: block,
            block_trees,
            threads,
        };
        let builder = EngineBuilder::new(&forest).profile_data(&data).options(opts);
        for engine in builder.build_all().expect("all engines build") {
            prop_assert_eq!(
                engine.predict_matrix(&matrix),
                reference.clone(),
                "{}",
                engine.name()
            );
        }
    }

    /// Adversarial bit patterns (both zeros, denormals, infinities):
    /// engines agree sample-for-sample through `predict_one`.
    #[test]
    fn engines_agree_on_adversarial_bit_patterns(
        seed in 0u64..32,
        raw in proptest::collection::vec(any::<u32>(), 4),
    ) {
        let features: Vec<f32> = raw
            .iter()
            .map(|&b| {
                let v = f32::from_bits(b);
                if v.is_nan() { 0.0 } else { v }
            })
            .collect();
        let data = SynthSpec::new(100, 4, 3)
            .negative_fraction(0.6)
            .seed(seed)
            .generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(4, 10)).expect("trainable");
        let want = forest.predict_majority(&features);
        let builder = EngineBuilder::new(&forest).profile_data(&data);
        for engine in builder.build_all().expect("all engines build") {
            prop_assert_eq!(engine.predict_one(&features), want, "{}", engine.name());
        }
    }
}
