//! Cross-engine differential suite: every engine of the registry —
//! scalar and blocked if-else backends, QuickScorer in both comparison
//! modes, the three codegen VM variants, the SIMD lane engines (f32
//! and binary16), and the tiered template JIT — must return
//! **bit-identical** labels to its comparison family's scalar
//! reference, on every dataset, for every batch shape and thread
//! count.
//!
//! This is the workspace-wide generalization of the paper's claim: not
//! only is FLInt a drop-in replacement for float comparison inside one
//! traversal, but *every* registered execution strategy is a drop-in
//! replacement for every other of the same precision.
//!
//! For the full-precision engines ([`EngineKind::is_exact`]) the
//! reference is [`RandomForest::predict_majority`] (one vote per tree,
//! ties to the lower class index) — the aggregation every engine
//! implements. `RandomForest::predict` is *not* the reference: it
//! argmaxes averaged leaf class distributions, which is a different
//! (probability-weighted) aggregation and can legitimately disagree
//! with a vote count on close calls. The binary16 engines quantize
//! thresholds and features to half precision, so their reference is an
//! independently compiled [`HalfForest`] walked scalar node by node —
//! the same per-family pattern the NaN suites below established.

use flint_codegen::VmVariant;
use flint_data::synth::SynthSpec;
use flint_data::uci::{Scale, UciDataset};
use flint_data::{Dataset, FeatureMatrix};
use flint_exec::{
    BackendKind, BatchOptions, EngineBuilder, EngineKind, HalfCompare, HalfForest, JitCompare,
    SimdCompare,
};
use flint_forest::{ForestConfig, RandomForest};
use proptest::prelude::*;

/// The scalar reference of `kind`'s comparison family over explicit
/// rows: the f32 majority vote for exact engines, a freshly compiled
/// binary16 forest's scalar walk for the f16 engines.
fn family_reference(forest: &RandomForest, kind: EngineKind, rows: &[Vec<f32>]) -> Vec<u32> {
    match kind {
        EngineKind::SimdF16(compare) => {
            let half = HalfForest::compile(forest, compare).expect("compiles");
            rows.iter().map(|r| half.predict(r)).collect()
        }
        _ => rows.iter().map(|r| forest.predict_majority(r)).collect(),
    }
}

/// [`family_reference`] over a dataset's samples.
fn family_reference_dataset(forest: &RandomForest, kind: EngineKind, data: &Dataset) -> Vec<u32> {
    let rows: Vec<Vec<f32>> = (0..data.n_samples())
        .map(|i| data.sample(i).to_vec())
        .collect();
    family_reference(forest, kind, &rows)
}

#[test]
fn all_registered_engines_agree_on_all_uci_datasets() {
    for ds in UciDataset::ALL {
        let data = ds.generate(Scale::Tiny);
        let forest = RandomForest::fit(&data, &ForestConfig::grid(5, 10)).expect("trainable");
        let matrix = FeatureMatrix::from_dataset(&data);
        let builder = EngineBuilder::new(&forest).profile_data(&data);
        for engine in builder.build_all().expect("all engines build") {
            let reference = family_reference_dataset(&forest, engine.kind(), &data);
            assert_eq!(
                engine.predict_matrix(&matrix),
                reference,
                "{} diverges on {}",
                engine.name(),
                ds.name()
            );
        }
    }
}

#[test]
fn all_registered_engines_agree_across_batch_shapes_and_threads() {
    let data = SynthSpec::new(230, 5, 3)
        .cluster_std(1.0)
        .negative_fraction(0.5)
        .seed(13)
        .generate();
    let forest = RandomForest::fit(&data, &ForestConfig::grid(6, 9)).expect("trainable");
    let matrix = FeatureMatrix::from_dataset(&data);
    let builder = EngineBuilder::new(&forest).profile_data(&data);
    for engine in builder.build_all().expect("all engines build") {
        let reference = family_reference_dataset(&forest, engine.kind(), &data);
        // 10_000 exceeds the dataset; 1 degenerates to per-sample spans.
        for block in [1usize, 7, 64, 10_000] {
            for threads in [1usize, 4] {
                let opts = BatchOptions::default()
                    .block_samples(block)
                    .threads(threads);
                assert_eq!(
                    engine.predict_batch(&matrix, &opts),
                    reference,
                    "{} block {block} threads {threads}",
                    engine.name()
                );
            }
        }
    }
}

#[test]
fn predict_one_matches_predict_batch_for_every_engine() {
    let data = SynthSpec::new(160, 4, 3).seed(7).generate();
    let forest = RandomForest::fit(&data, &ForestConfig::grid(5, 8)).expect("trainable");
    let matrix = FeatureMatrix::from_dataset(&data);
    let builder = EngineBuilder::new(&forest).profile_data(&data);
    for engine in builder.build_all().expect("all engines build") {
        let batch = engine.predict_matrix(&matrix);
        for (i, &label) in batch.iter().enumerate() {
            assert_eq!(
                engine.predict_one(data.sample(i)),
                label,
                "{} sample {i}",
                engine.name()
            );
        }
    }
}

/// A model whose split values are harvested below for threshold-equal
/// probing, trained on data that spans both signs so negative (flipped)
/// FLInt thresholds are present.
fn adversarial_model(seed: u64) -> (Dataset, RandomForest) {
    let data = SynthSpec::new(140, 4, 3)
        .cluster_std(1.1)
        .negative_fraction(0.5)
        .seed(seed)
        .generate();
    let forest = RandomForest::fit(&data, &ForestConfig::grid(5, 9)).expect("trainable");
    (data, forest)
}

/// Builds a row-major [`FeatureMatrix`] from explicit rows.
fn matrix_of(rows: &[Vec<f32>], n_features: usize) -> FeatureMatrix {
    let flat: Vec<f32> = rows.iter().flatten().copied().collect();
    FeatureMatrix::from_row_major(rows.len(), n_features, &flat)
}

/// Every non-NaN adversarial bit pattern — ±inf, both zeros, boundary
/// subnormals, extreme magnitudes, and every harvested split value with
/// its ±1-ulp neighbours — injected into every feature column. FLInt's
/// Theorem 2 covers the whole non-NaN f32 line, so **every** registered
/// engine (lane-parallel SIMD included) must route these bit-identically
/// to the forest's own majority vote, at every block size.
#[test]
fn engines_agree_on_non_nan_adversarial_columns() {
    let (data, forest) = adversarial_model(41);
    let n_features = forest.n_features();
    let mut specials: Vec<f32> = vec![
        f32::INFINITY,
        f32::NEG_INFINITY,
        0.0,
        -0.0,
        f32::from_bits(1),           // smallest positive subnormal
        -f32::from_bits(1),          // smallest negative subnormal
        f32::from_bits(0x007f_ffff), // largest subnormal
        f32::MIN_POSITIVE,
        -f32::MIN_POSITIVE,
        f32::MAX,
        f32::MIN,
        1.0e-40, // mid-range subnormal
    ];
    // Exact split values and their one-ulp neighbours: the boundary the
    // `<=` decision pivots on, where a lane kernel that computed `<`
    // or an unordered compare would flip a child selection.
    for t in forest.trees().iter().flat_map(|t| t.thresholds()).take(24) {
        specials.push(t);
        specials.push(f32::from_bits(t.to_bits().wrapping_add(1)));
        specials.push(f32::from_bits(t.to_bits().wrapping_sub(1)));
    }
    specials.retain(|v| !v.is_nan());

    // One row per (special, column): a clean baseline row with the
    // special planted in exactly one column, plus rows that are the
    // special in every column.
    let mut rows: Vec<Vec<f32>> = Vec::new();
    for (i, &s) in specials.iter().enumerate() {
        let mut row = data.sample(i % data.n_samples()).to_vec();
        row[i % n_features] = s;
        rows.push(row);
        rows.push(vec![s; n_features]);
    }
    let matrix = matrix_of(&rows, n_features);

    let builder = EngineBuilder::new(&forest).profile_data(&data);
    for engine in builder.build_all().expect("all engines build") {
        let reference = family_reference(&forest, engine.kind(), &rows);
        for block in [1usize, 8, 64] {
            let opts = BatchOptions::default().block_samples(block);
            assert_eq!(
                engine.predict_batch(&matrix, &opts),
                reference,
                "{} diverges on non-NaN adversarial columns at block {block}",
                engine.name()
            );
        }
    }
}

/// The scalar engine whose decisions are the NaN reference for `kind`,
/// or `None` where no registered engine shares its NaN contract.
///
/// NaN sits outside FLInt's ordering theorem: IEEE `<=` is false for
/// every NaN operand, while the integer order ranks negative-NaN bit
/// patterns below everything — so FLInt engines legitimately route NaN
/// differently from float engines, and `predict_majority` cannot be a
/// universal reference. What *must* hold is that every execution
/// strategy agrees with the scalar walk of its own comparison family —
/// exactly the property a lane kernel with subtly different compare
/// semantics (`_CMP_LE_OQ` vs `_CMP_LE_OS` vs `!(>)`) would break.
/// QuickScorer maps to `None` because its NaN contract has a single
/// implementation, so there is nothing to diff against: its per-feature
/// `threshold < x` scan treats unordered compares as "stop scanning"
/// (and its FLInt mode debug-asserts NaN away entirely). `vm-float`
/// faithfully models the hardware `fcmp; b.gt` idiom of the paper's
/// assembly backend, whose GT flag is false on unordered operands — NaN
/// falls through to the *left* child, unlike the IEEE `<=`-is-false
/// walk; `jit-float`'s `ucomiss; ja` encodes exactly the same contract
/// (`ja` is never taken on unordered operands), so those two check each
/// other. The JIT integer family executes the same FLInt order-key
/// compare as every other FLInt engine. The binary16 engines map to
/// `None` here because their family reference is not a registered
/// scalar engine but the [`HalfForest`] walk — the dedicated
/// `f16_engines_match_their_scalar_walk_on_adversarial_and_nan_columns`
/// suite below diffs them (NaN columns included) against it.
fn nan_reference(kind: EngineKind) -> Option<EngineKind> {
    match kind {
        EngineKind::Scalar(b) | EngineKind::Blocked(b) => Some(EngineKind::Scalar(b)),
        EngineKind::Simd(SimdCompare::Flint) => Some(EngineKind::Scalar(BackendKind::Flint)),
        EngineKind::Simd(SimdCompare::Float) => Some(EngineKind::Scalar(BackendKind::Naive)),
        EngineKind::Vm(VmVariant::Flint) => Some(EngineKind::Scalar(BackendKind::Flint)),
        EngineKind::Vm(VmVariant::SoftFloat) => Some(EngineKind::Scalar(BackendKind::SoftFloat)),
        EngineKind::Jit(JitCompare::Flint) => Some(EngineKind::Scalar(BackendKind::Flint)),
        EngineKind::Jit(JitCompare::Float) => Some(EngineKind::Vm(VmVariant::NativeFloat)),
        EngineKind::Vm(VmVariant::NativeFloat)
        | EngineKind::QuickScorer(_)
        | EngineKind::SimdF16(_) => None,
    }
}

/// NaN feature columns (quiet, signalling, negative, all-ones): every
/// engine stays bit-identical to the scalar engine of its comparison
/// family, at every block size and thread count.
#[test]
fn nan_features_stay_bit_identical_within_each_compare_family() {
    let (data, forest) = adversarial_model(43);
    let n_features = forest.n_features();
    let nans = [
        f32::NAN,
        f32::from_bits(0x7f80_0001), // signalling NaN
        f32::from_bits(0xffc0_0000), // negative quiet NaN
        f32::from_bits(0xffff_ffff), // all-ones payload
    ];
    let mut rows: Vec<Vec<f32>> = Vec::new();
    for (i, &s) in nans.iter().enumerate() {
        for f in 0..n_features {
            let mut row = data
                .sample((i * n_features + f) % data.n_samples())
                .to_vec();
            row[f] = s;
            rows.push(row);
        }
        rows.push(vec![s; n_features]);
    }
    let matrix = matrix_of(&rows, n_features);

    let builder = EngineBuilder::new(&forest).profile_data(&data);
    for kind in EngineKind::ALL {
        let Some(reference_kind) = nan_reference(kind) else {
            continue;
        };
        let engine = builder.build(kind).expect("builds");
        let reference = builder
            .build(reference_kind)
            .expect("builds")
            .predict_matrix(&matrix);
        for block in [1usize, 7, 64] {
            for threads in [1usize, 2] {
                let opts = BatchOptions::default()
                    .block_samples(block)
                    .threads(threads);
                assert_eq!(
                    engine.predict_batch(&matrix, &opts),
                    reference,
                    "{} diverges from {} on NaN columns (block {block}, threads {threads})",
                    engine.name(),
                    reference_kind.name()
                );
            }
        }
    }
}

/// The binary16 engines' own adversarial battery: harvested split
/// values with ±1-ulp f32 neighbours (which straddle f16 rounding
/// boundaries), signed zeros, subnormals (all of which quantize to
/// f16 zero), infinities, f16-overflow magnitudes, and four NaN
/// payloads — planted column-wise. The lane walk (portable or AVX2,
/// whatever dispatch chose) must stay bit-identical to the family's
/// scalar reference, the [`HalfForest`] walk, at every block size and
/// thread count. This is the f16 mirror of the per-family NaN suite
/// above: quantization happens through the identical `Half::from_f32`
/// on both sides, so any divergence is a kernel bug, not rounding.
#[test]
fn f16_engines_match_their_scalar_walk_on_adversarial_and_nan_columns() {
    let (data, forest) = adversarial_model(59);
    let n_features = forest.n_features();
    let mut specials: Vec<f32> = vec![
        f32::INFINITY,
        f32::NEG_INFINITY,
        0.0,
        -0.0,
        f32::from_bits(1),
        -f32::from_bits(1),
        f32::MIN_POSITIVE,
        65504.0,  // f16::MAX
        65520.0,  // rounds to f16 infinity
        -65520.0, // rounds to f16 -infinity
        6.104e-5, // just above the f16 normal/subnormal boundary
        5.96e-8,  // smallest positive f16 subnormal, roughly
        f32::NAN,
        f32::from_bits(0x7f80_0001), // signalling NaN
        f32::from_bits(0xffc0_0000), // negative quiet NaN
        f32::from_bits(0xffff_ffff), // all-ones payload
    ];
    for t in forest.trees().iter().flat_map(|t| t.thresholds()).take(24) {
        specials.push(t);
        specials.push(f32::from_bits(t.to_bits().wrapping_add(1)));
        specials.push(f32::from_bits(t.to_bits().wrapping_sub(1)));
    }
    let mut rows: Vec<Vec<f32>> = Vec::new();
    for (i, &s) in specials.iter().enumerate() {
        let mut row = data.sample(i % data.n_samples()).to_vec();
        row[i % n_features] = s;
        rows.push(row);
        rows.push(vec![s; n_features]);
    }
    let matrix = matrix_of(&rows, n_features);

    let builder = EngineBuilder::new(&forest).profile_data(&data);
    for compare in [HalfCompare::Flint, HalfCompare::Float] {
        let half = HalfForest::compile(&forest, compare).expect("compiles");
        let reference: Vec<u32> = rows.iter().map(|r| half.predict(r)).collect();
        let engine = builder.build(EngineKind::SimdF16(compare)).expect("builds");
        for block in [1usize, 7, 64] {
            for threads in [1usize, 2] {
                let opts = BatchOptions::default()
                    .block_samples(block)
                    .threads(threads);
                assert_eq!(
                    engine.predict_batch(&matrix, &opts),
                    reference,
                    "{} diverges from its scalar f16 walk (block {block}, threads {threads})",
                    engine.name()
                );
            }
        }
    }
}

/// Ragged-tail coverage at every lane boundary: sample counts straddling
/// multiples of the 8-wide lane group × block sizes {1, 8, 64} drive the
/// zero-padded `FeatureMatrix::gather_lanes` path through every live-lane
/// count. All registered engines run (the SIMD kinds are the target; the
/// rest prove the reference labels are shape-independent).
#[test]
fn tail_blocks_agree_at_every_lane_boundary() {
    let (data, forest) = adversarial_model(47);
    let n_features = forest.n_features();
    let builder = EngineBuilder::new(&forest).profile_data(&data);
    let engines = builder.build_all().expect("all engines build");
    for n_samples in [1usize, 7, 8, 9, 15, 16, 17] {
        let rows: Vec<Vec<f32>> = (0..n_samples).map(|i| data.sample(i).to_vec()).collect();
        let matrix = matrix_of(&rows, n_features);
        for engine in &engines {
            let reference = family_reference(&forest, engine.kind(), &rows);
            for block in [1usize, 8, 64] {
                for threads in [1usize, 2] {
                    let opts = BatchOptions::default()
                        .block_samples(block)
                        .threads(threads);
                    assert_eq!(
                        engine.predict_batch(&matrix, &opts),
                        reference,
                        "{} diverges at n={n_samples} block={block} threads={threads}",
                        engine.name()
                    );
                }
            }
        }
    }
}

/// The two JIT registry kinds, targeted explicitly below. The generic
/// registry-driven tests above already cover them; these tests add the
/// JIT's own failure surfaces: rel32 patch distances, page-boundary
/// crossings, degenerate programs, and the cold→hot tier transition.
const JIT_KINDS: [EngineKind; 2] = [
    EngineKind::Jit(JitCompare::Flint),
    EngineKind::Jit(JitCompare::Float),
];

/// Deep model: thousands of split nodes, so emitted programs run far
/// past 255 instructions, rel32 branch fixups span whole subtrees, and
/// the packed forest code crosses 4 KiB page boundaries.
fn deep_model(seed: u64) -> (Dataset, RandomForest) {
    let data = SynthSpec::new(700, 6, 4)
        .cluster_std(1.6)
        .negative_fraction(0.5)
        .seed(seed)
        .generate();
    let forest = RandomForest::fit(&data, &ForestConfig::grid(8, 14)).expect("trainable");
    (data, forest)
}

/// Deep unbalanced programs, scored twice: the first pass starts on the
/// cold interpreter tier and crosses the hot threshold mid-batch; the
/// second pass runs entirely hot (native code under `jit-x86` on
/// x86-64, interpreter fallback elsewhere). Both passes must be
/// bit-identical to the forest's majority vote, and the engine must
/// report it left the cold tier.
#[test]
fn jit_kinds_agree_on_deep_programs_cold_and_hot() {
    let (data, forest) = deep_model(51);
    let total_nodes: usize = forest.trees().iter().map(|t| t.nodes().len()).sum();
    assert!(
        total_nodes > 255,
        "model too small to cross instruction/page boundaries: {total_nodes} nodes"
    );
    let matrix = FeatureMatrix::from_dataset(&data);
    let reference = forest.predict_dataset_majority(&data);
    let builder = EngineBuilder::new(&forest).profile_data(&data);
    for kind in JIT_KINDS {
        let engine = builder.build(kind).expect("builds");
        assert!(
            engine.describe().contains("cold tier"),
            "{} should start cold: {}",
            engine.name(),
            engine.describe()
        );
        let cold_pass = engine.predict_matrix(&matrix);
        assert_eq!(cold_pass, reference, "{} cold→hot pass", engine.name());
        assert!(
            !engine.describe().contains("cold tier"),
            "{} should have crossed the hot threshold: {}",
            engine.name(),
            engine.describe()
        );
        let hot_pass = engine.predict_matrix(&matrix);
        assert_eq!(hot_pass, reference, "{} hot pass", engine.name());
    }
}

/// Single-node, leaf-only trees: training data whose every label is
/// the same class leaves no split with gain, so every tree collapses to
/// a bare `Ret` program — the smallest emittable function (no loads, no
/// compares, no branches to patch).
#[test]
fn jit_kinds_handle_leaf_only_trees() {
    let rows: Vec<(Vec<f32>, u32)> = (0..60)
        .map(|i| (vec![i as f32, -(i as f32), 0.5 * i as f32], 1))
        .collect();
    let one_class = Dataset::from_rows(3, 2, rows).expect("consistent rows");
    let forest = RandomForest::fit(&one_class, &ForestConfig::grid(3, 4)).expect("trainable");
    assert!(
        forest.trees().iter().all(|t| t.nodes().len() == 1),
        "pure training data must collapse to leaf-only trees"
    );
    let matrix = FeatureMatrix::from_dataset(&one_class);
    let reference = forest.predict_dataset_majority(&one_class);
    let builder = EngineBuilder::new(&forest).profile_data(&one_class);
    for kind in JIT_KINDS {
        // Hot from the first sample (scored repeatedly to pass the
        // default threshold), still bit-identical.
        let engine = builder.build(kind).expect("builds");
        for _ in 0..3 {
            assert_eq!(
                engine.predict_matrix(&matrix),
                reference,
                "{}",
                engine.name()
            );
        }
    }
}

/// The adversarial-column battery aimed at the hot JIT tier: threshold
/// ±1-ulp neighbours, signed zeros, subnormals and infinities scored
/// *after* the engine has compiled, so the emitted compare/branch
/// templates (not the interpreter) decide every boundary.
#[test]
fn jit_kinds_agree_on_adversarial_columns_when_hot() {
    let (data, forest) = adversarial_model(53);
    let n_features = forest.n_features();
    let mut specials: Vec<f32> = vec![
        f32::INFINITY,
        f32::NEG_INFINITY,
        0.0,
        -0.0,
        f32::from_bits(1),
        -f32::from_bits(1),
        f32::MIN_POSITIVE,
        -f32::MIN_POSITIVE,
        f32::MAX,
        f32::MIN,
    ];
    for t in forest.trees().iter().flat_map(|t| t.thresholds()).take(32) {
        specials.push(t);
        specials.push(f32::from_bits(t.to_bits().wrapping_add(1)));
        specials.push(f32::from_bits(t.to_bits().wrapping_sub(1)));
    }
    specials.retain(|v| !v.is_nan());
    let mut rows: Vec<Vec<f32>> = Vec::new();
    for (i, &s) in specials.iter().enumerate() {
        let mut row = data.sample(i % data.n_samples()).to_vec();
        row[i % n_features] = s;
        rows.push(row);
        rows.push(vec![s; n_features]);
    }
    let matrix = matrix_of(&rows, n_features);
    let reference: Vec<u32> = rows.iter().map(|r| forest.predict_majority(r)).collect();
    let builder = EngineBuilder::new(&forest).profile_data(&data);
    for kind in JIT_KINDS {
        let engine = builder.build(kind).expect("builds");
        // Warm past the hot threshold on plain data first.
        let warmup = FeatureMatrix::from_dataset(&data);
        engine.predict_matrix(&warmup);
        assert!(
            !engine.describe().contains("cold tier"),
            "{}",
            engine.name()
        );
        for block in [1usize, 8, 64] {
            let opts = BatchOptions::default().block_samples(block);
            assert_eq!(
                engine.predict_batch(&matrix, &opts),
                reference,
                "{} diverges hot at block {block}",
                engine.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any forest, any dataset, any batch options in the practical
    /// envelope: every registered engine is indistinguishable from the
    /// forest's majority vote.
    #[test]
    fn every_engine_is_bit_identical_under_random_options(
        seed in 0u64..64,
        depth in 1usize..9,
        n_trees in 1usize..8,
        block in 1usize..200,
        block_trees in 1usize..9,
        threads in 1usize..6,
    ) {
        let data = SynthSpec::new(90, 4, 3)
            .cluster_std(1.1)
            .negative_fraction(0.5)
            .seed(seed)
            .generate();
        let forest =
            RandomForest::fit(&data, &ForestConfig::grid(n_trees, depth)).expect("trainable");
        let matrix = FeatureMatrix::from_dataset(&data);
        let opts = BatchOptions {
            block_samples: block,
            block_trees,
            threads,
        };
        let builder = EngineBuilder::new(&forest).profile_data(&data).options(opts);
        for engine in builder.build_all().expect("all engines build") {
            let reference = family_reference_dataset(&forest, engine.kind(), &data);
            prop_assert_eq!(
                engine.predict_matrix(&matrix),
                reference,
                "{}",
                engine.name()
            );
        }
    }

    /// Adversarial bit patterns (both zeros, denormals, infinities):
    /// engines agree sample-for-sample through `predict_one`.
    #[test]
    fn engines_agree_on_adversarial_bit_patterns(
        seed in 0u64..32,
        raw in proptest::collection::vec(any::<u32>(), 4),
    ) {
        let features: Vec<f32> = raw
            .iter()
            .map(|&b| {
                let v = f32::from_bits(b);
                if v.is_nan() { 0.0 } else { v }
            })
            .collect();
        let data = SynthSpec::new(100, 4, 3)
            .negative_fraction(0.6)
            .seed(seed)
            .generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(4, 10)).expect("trainable");
        let want = forest.predict_majority(&features);
        let builder = EngineBuilder::new(&forest).profile_data(&data);
        for engine in builder.build_all().expect("all engines build") {
            // `predict_one` on the f16 engines *is* the family's
            // scalar reference, so diffing it against itself proves
            // nothing — the exact engines are the ones under test.
            if engine.kind().is_exact() {
                prop_assert_eq!(engine.predict_one(&features), want, "{}", engine.name());
            }
        }
    }

    /// Features biased toward *exact split values* (and their ±1-ulp
    /// neighbours): every sample lands on or next to a comparison
    /// boundary, so an engine whose compare is `<` instead of `<=` —
    /// or whose lane blend picks the wrong child on equality — cannot
    /// hide. The whole batch goes through `predict_batch` (the SIMD
    /// engines' `predict_one` is the scalar fallback; only the batch
    /// path runs the lane kernels).
    #[test]
    fn engines_agree_on_threshold_equal_batches(
        seed in 0u64..12,
        picks in proptest::collection::vec(
            proptest::collection::vec((0usize..1_000_000, -1i32..=1), 4),
            1..24,
        ),
    ) {
        let (data, forest) = adversarial_model(seed);
        let thresholds: Vec<f32> = forest
            .trees()
            .iter()
            .flat_map(|t| t.thresholds())
            .collect();
        prop_assume!(!thresholds.is_empty());
        let rows: Vec<Vec<f32>> = picks
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&(i, ulp)| {
                        let t = thresholds[i % thresholds.len()];
                        let v = f32::from_bits(t.to_bits().wrapping_add_signed(ulp));
                        // A ulp step off ±MAX or a subnormal edge can
                        // land on inf (fine) but never on NaN here; keep
                        // the guard anyway so the reference stays IEEE.
                        if v.is_nan() { t } else { v }
                    })
                    .collect()
            })
            .collect();
        let matrix = matrix_of(&rows, forest.n_features());
        let builder = EngineBuilder::new(&forest).profile_data(&data);
        for engine in builder.build_all().expect("all engines build") {
            let reference = family_reference(&forest, engine.kind(), &rows);
            for block in [1usize, 8] {
                let opts = BatchOptions::default().block_samples(block);
                prop_assert_eq!(
                    engine.predict_batch(&matrix, &opts),
                    reference.clone(),
                    "{} at block {}",
                    engine.name(),
                    block
                );
            }
        }
    }
}
