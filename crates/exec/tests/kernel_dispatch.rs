//! End-to-end `FLINT_KERNEL` override suite: the environment variable
//! steers every dispatch-aware engine to the requested kernel path (or
//! portable, never a *different* accelerated path), the chosen path
//! shows up in `describe()`, and — the property everything else rests
//! on — predictions are bit-identical across every path an engine
//! family can dispatch to.
//!
//! The process environment is global, so **all** scenarios live in one
//! `#[test]`: the default harness runs tests in parallel threads, and
//! two tests racing on `FLINT_KERNEL` would make path expectations
//! flap.

use flint_data::synth::SynthSpec;
use flint_data::FeatureMatrix;
use flint_exec::{
    f16_policy, lane_policy, BatchOptions, EngineBuilder, EngineKind, HalfCompare, KernelPath,
    KERNEL_ENV,
};
use flint_forest::{ForestConfig, RandomForest};

/// The engine kinds that consult the dispatch layer, with the policy
/// governing each.
fn dispatch_aware() -> Vec<(EngineKind, flint_exec::KernelPolicy)> {
    vec![
        (
            EngineKind::Simd(flint_exec::SimdCompare::Flint),
            lane_policy(),
        ),
        (
            EngineKind::Simd(flint_exec::SimdCompare::Float),
            lane_policy(),
        ),
        (
            EngineKind::SimdF16(HalfCompare::Flint),
            f16_policy(HalfCompare::Flint),
        ),
        (
            EngineKind::SimdF16(HalfCompare::Float),
            f16_policy(HalfCompare::Float),
        ),
    ]
}

#[test]
fn kernel_env_overrides_are_honored_and_bit_identical() {
    let data = SynthSpec::new(160, 6, 3)
        .cluster_std(1.0)
        .negative_fraction(0.5)
        .seed(77)
        .generate();
    let forest = RandomForest::fit(&data, &ForestConfig::grid(12, 8)).expect("trains");
    let matrix = FeatureMatrix::from_dataset(&data);
    let opts = BatchOptions::default().block_samples(16).threads(2);

    let build_and_run = |kind: EngineKind| {
        let engine = EngineBuilder::new(&forest)
            .options(opts)
            .build(kind)
            .expect("builds");
        (
            engine.predict_batch(&matrix, &opts),
            engine.describe().to_owned(),
        )
    };
    let suffix_of = |describe: &str| {
        let start = describe.rfind("[kernel ").unwrap_or_else(|| {
            panic!("dispatch-aware describe() lacks a kernel suffix: {describe}")
        });
        describe[start..].to_owned()
    };

    // Baseline: auto dispatch with the variable unset.
    std::env::remove_var(KERNEL_ENV);
    let auto: Vec<(Vec<u32>, String)> = dispatch_aware()
        .iter()
        .map(|&(kind, policy)| {
            let (predictions, describe) = build_and_run(kind);
            assert_eq!(
                suffix_of(&describe),
                format!(
                    "[kernel {}]",
                    policy.select_with(flint_exec::KernelCaps::get(), None)
                ),
                "{kind}: describe() must report the auto-selected path"
            );
            (predictions, describe)
        })
        .collect();

    // Every expressible request: the engine lands on the requested
    // path when its policy+CPU allow it, portable otherwise — and the
    // predictions never change. `quantum` exercises the unknown-value
    // fallback; the uppercase form pins case-insensitivity.
    for requested in ["portable", "avx2", "AVX2", "neon", "quantum", ""] {
        std::env::set_var(KERNEL_ENV, requested);
        for (&(kind, policy), (auto_predictions, _)) in dispatch_aware().iter().zip(&auto) {
            let expected = policy.select_with(flint_exec::KernelCaps::get(), Some(requested));
            if !matches!(KernelPath::parse(requested), Some(p) if p == expected) {
                assert_eq!(
                    expected,
                    KernelPath::Portable,
                    "{kind}: an unsatisfied request must degrade to portable, \
                     never a different accelerated path"
                );
            }
            let (predictions, describe) = build_and_run(kind);
            assert_eq!(
                suffix_of(&describe),
                format!("[kernel {expected}]"),
                "{kind} with {KERNEL_ENV}={requested}: {describe}"
            );
            assert_eq!(
                &predictions, auto_predictions,
                "{kind} with {KERNEL_ENV}={requested}: kernel paths diverge"
            );
        }
    }
    std::env::remove_var(KERNEL_ENV);
}
