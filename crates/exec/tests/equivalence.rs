//! The paper's central correctness claim, tested at forest scale:
//! replacing float comparisons with FLInt integer comparisons (and
//! re-laying out nodes with CAGS) changes **no prediction**, on any
//! input, including adversarial bit patterns.

use flint_data::synth::SynthSpec;
use flint_data::uci::{Scale, UciDataset};
use flint_exec::{BackendKind, CompiledForest, EngineBuilder, EngineKind};
use flint_forest::{ForestConfig, RandomForest};
use proptest::prelude::*;

#[test]
fn paper_backends_agree_on_all_uci_datasets() {
    // The paper's Fig. 3 configurations plus the softfloat baseline,
    // selected from the engine registry (the full-registry sweep,
    // including blocked/QuickScorer/VM engines, lives in
    // `tests/engine_equivalence.rs`).
    for ds in UciDataset::ALL {
        let data = ds.generate(Scale::Tiny);
        let forest = RandomForest::fit(&data, &ForestConfig::grid(5, 10)).expect("trainable");
        let builder = EngineBuilder::new(&forest).profile_data(&data);
        let reference = forest.predict_dataset_majority(&data);
        for kind in EngineKind::PAPER_SET
            .into_iter()
            .chain([EngineKind::Scalar(BackendKind::SoftFloat)])
        {
            let engine = builder.build(kind).expect("builds");
            assert_eq!(
                engine.predict_dataset(&data),
                reference,
                "{} diverges on {}",
                engine.name(),
                ds.name()
            );
        }
    }
}

#[test]
fn accuracy_is_bit_identical_across_backends() {
    use flint_forest::metrics::accuracy;
    let data = UciDataset::Magic.generate(Scale::Tiny);
    let split = flint_data::train_test_split(&data, 0.25, 0);
    let forest = RandomForest::fit(&split.train, &ForestConfig::grid(10, 15)).expect("trainable");
    let builder = EngineBuilder::new(&forest).profile_data(&split.train);
    let mut accs = Vec::new();
    for kind in EngineKind::PAPER_SET {
        let engine = builder.build(kind).expect("builds");
        let preds = engine.predict_dataset(&split.test);
        accs.push(accuracy(&preds, split.test.labels()));
    }
    assert!(accs.windows(2).all(|w| w[0] == w[1]), "accuracies {accs:?}");
}

/// Feature vectors drawn over raw bit patterns (excluding NaN): zeros of
/// both signs, denormals and infinities all appear.
fn bit_level_features(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(
        any::<u32>()
            .prop_map(f32::from_bits)
            .prop_filter("NaN", |v| !v.is_nan()),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn backends_agree_on_adversarial_bit_patterns(
        seed in 0u64..32,
        features in bit_level_features(4),
    ) {
        let data = SynthSpec::new(120, 4, 3)
            .negative_fraction(0.6)
            .seed(seed)
            .generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(4, 12)).expect("trainable");
        let naive = CompiledForest::compile(&forest, BackendKind::Naive, None).expect("compilable");
        let flint = CompiledForest::compile(&forest, BackendKind::Flint, None).expect("compilable");
        let cags_flint =
            CompiledForest::compile(&forest, BackendKind::CagsFlint, Some(&data)).expect("compilable");
        let want = naive.predict(&features);
        prop_assert_eq!(flint.predict(&features), want);
        prop_assert_eq!(cags_flint.predict(&features), want);
    }

    /// The double-precision pair must agree with each other on
    /// arbitrary f64 bit patterns — the FLInt 64-bit instance against
    /// the native f64 comparison, same thresholds.
    #[test]
    fn f64_float_and_int_trees_agree(
        seed in 0u64..16,
        raw in proptest::collection::vec(any::<u64>(), 3),
    ) {
        use flint_exec::{FloatTree64, IntTree64};
        use flint_layout::{LayoutStrategy, TreeLayout, TreeProfile};
        let features: Vec<f64> = raw
            .iter()
            .map(|&b| {
                let v = f64::from_bits(b);
                if v.is_nan() { 0.0 } else { v }
            })
            .collect();
        let data = SynthSpec::new(90, 3, 2).negative_fraction(0.5).seed(seed).generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(1, 8)).expect("trainable");
        let tree = &forest.trees()[0];
        let layout = TreeLayout::compute(tree, &TreeProfile::uniform(tree), LayoutStrategy::ArenaOrder);
        let ft = FloatTree64::compile(tree, &layout);
        let it = IntTree64::compile(tree, &layout).expect("compilable");
        prop_assert_eq!(ft.predict(&features), it.predict(&features));
    }

    #[test]
    fn per_tree_decisions_agree_with_arena_reference(
        seed in 0u64..16,
        features in bit_level_features(3),
    ) {
        use flint_exec::{FloatTree, IntTree};
        use flint_layout::{LayoutStrategy, TreeLayout, TreeProfile};
        let data = SynthSpec::new(90, 3, 2).seed(seed).generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(1, 10)).expect("trainable");
        let tree = &forest.trees()[0];
        let profile = TreeProfile::collect(tree, &data);
        for strategy in [
            LayoutStrategy::ArenaOrder,
            LayoutStrategy::BreadthFirst,
            LayoutStrategy::HotPathDfs,
            LayoutStrategy::Cags { block_nodes: 4 },
        ] {
            let layout = TreeLayout::compute(tree, &profile, strategy);
            let ft = FloatTree::compile(tree, &layout);
            let it = IntTree::compile(tree, &layout).expect("compilable");
            let want = tree.predict(&features);
            prop_assert_eq!(ft.predict(&features), want);
            prop_assert_eq!(it.predict(&features), want);
            prop_assert_eq!(ft.predict_softfloat(&features), want);
        }
    }
}
