//! Fallback-path suite for the template JIT (satellite of the JIT
//! engine work): whatever prevents emitted code from running — the
//! `jit-x86` feature being off, a non-x86-64 target, or the executable
//! mapping failing at runtime — the `jit`/`jit-float` engines must
//! still build and answer **bit-identically** through the interpreter
//! fallback tier, and say so through `describe()`.
//!
//! The runtime-failure leg is driven by the [`FORCE_FALLBACK_ENV`]
//! knob, which makes the W^X `mmap` allocation report failure. Setting
//! process environment races sibling tests, so this file is its own
//! test binary: every test here runs with the knob set, and no other
//! suite shares the process.

use flint_data::{synth::SynthSpec, FeatureMatrix};
use flint_exec::{
    jit_supported, EngineBuilder, EngineKind, JitCompare, JitForest, JitTier, TieredJit,
    FORCE_FALLBACK_ENV,
};
use flint_forest::{ForestConfig, RandomForest};

fn force_fallback() {
    // Safe in edition 2021; confined to this single-binary suite.
    std::env::set_var(FORCE_FALLBACK_ENV, "1");
}

fn model() -> (flint_data::Dataset, RandomForest) {
    let data = SynthSpec::new(220, 4, 3)
        .negative_fraction(0.5)
        .seed(17)
        .generate();
    let forest = RandomForest::fit(&data, &ForestConfig::grid(5, 8)).expect("trainable");
    (data, forest)
}

/// With compilation forced to fail, a hot engine lands on the fallback
/// tier — and every answer it ever gave is bit-identical to the
/// forest's majority vote.
#[test]
fn forced_fallback_serves_bit_identically_and_reports_its_tier() {
    force_fallback();
    let (data, forest) = model();
    let matrix = FeatureMatrix::from_dataset(&data);
    let reference = forest.predict_dataset_majority(&data);
    let builder = EngineBuilder::new(&forest).profile_data(&data);
    for kind in [
        EngineKind::Jit(JitCompare::Flint),
        EngineKind::Jit(JitCompare::Float),
    ] {
        let engine = builder
            .build(kind)
            .expect("builds even when the JIT cannot");
        assert!(
            engine.describe().contains("cold tier"),
            "{}: {}",
            engine.name(),
            engine.describe()
        );
        // 220 samples cross the default hot threshold mid-batch, so the
        // compile attempt fires — and fails — inside this call.
        assert_eq!(
            engine.predict_matrix(&matrix),
            reference,
            "{}",
            engine.name()
        );
        assert!(
            engine
                .describe()
                .contains("fallback tier: interpreter (JIT unavailable)"),
            "{} should report the fallback tier after a failed compile: {}",
            engine.name(),
            engine.describe()
        );
        // Still bit-identical once permanently on the fallback tier.
        assert_eq!(
            engine.predict_matrix(&matrix),
            reference,
            "{}",
            engine.name()
        );
    }
}

/// The tier state machine under forced failure: cold below the hot
/// threshold, a single (failed) compile attempt at the threshold, then
/// permanent fallback.
#[test]
fn forced_fallback_tier_transition_is_cold_then_fallback() {
    force_fallback();
    let (data, forest) = model();
    let tiered = TieredJit::with_hot_after(&forest, JitCompare::Flint, 3);
    assert_eq!(tiered.tier(), JitTier::Cold);
    for i in 0..8 {
        let class = tiered.predict(data.sample(i));
        assert_eq!(class, forest.predict_majority(data.sample(i)), "sample {i}");
        let expected = if i < 3 {
            JitTier::Cold
        } else {
            JitTier::Fallback
        };
        assert_eq!(tiered.tier(), expected, "after sample {i}");
    }
    assert_eq!(tiered.scored(), 8);
}

/// Direct `JitForest` compilation honours the knob (on supported
/// builds) or the platform gate (everywhere else) — either way, no
/// executable mapping is created.
#[test]
fn forced_fallback_refuses_direct_compilation() {
    force_fallback();
    let (_, forest) = model();
    let err = JitForest::compile(&forest, JitCompare::Flint).unwrap_err();
    if jit_supported() {
        assert_eq!(err, flint_exec::JitError::ForcedFallback);
    } else {
        assert_eq!(err, flint_exec::JitError::UnsupportedPlatform);
    }
}

/// `jit_supported()` is a build-time fact and must match the feature
/// and target this test binary was compiled with.
#[test]
fn jit_supported_reflects_the_build() {
    let expected = cfg!(all(
        feature = "jit-x86",
        target_arch = "x86_64",
        target_os = "linux"
    ));
    assert_eq!(jit_supported(), expected);
}
