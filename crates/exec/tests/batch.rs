//! Equivalence suite for the batch engine: for every backend
//! configuration, every block size (including degenerate and
//! larger-than-dataset) and every thread count, batched predictions
//! must be **bit-identical** to the scalar one-sample-at-a-time loop.
//! The QuickScorer batch path gets the same treatment for both of its
//! comparison modes.

use flint_data::synth::SynthSpec;
use flint_data::{Dataset, FeatureMatrix};
use flint_exec::{BackendKind, BatchEngine, BatchOptions, CompiledForest};
use flint_forest::{ForestConfig, RandomForest};
use flint_qscorer::{QsCompare, QsForest};
use proptest::prelude::*;

const BLOCKS: [usize; 4] = [1, 7, 64, 10_000]; // 10_000 > every test dataset
const THREADS: [usize; 2] = [1, 4];

fn trained(seed: u64, n: usize, depth: usize) -> (Dataset, RandomForest) {
    let data = SynthSpec::new(n, 5, 3)
        .cluster_std(1.1)
        .negative_fraction(0.5)
        .seed(seed)
        .generate();
    let forest = RandomForest::fit(&data, &ForestConfig::grid(6, depth)).expect("trainable");
    (data, forest)
}

#[test]
fn batched_equals_scalar_for_every_backend() {
    let (data, forest) = trained(5, 240, 9);
    for kind in [
        BackendKind::Naive,
        BackendKind::Cags,
        BackendKind::Flint,
        BackendKind::CagsFlint,
        BackendKind::SoftFloat,
    ] {
        let backend = CompiledForest::compile(&forest, kind, Some(&data)).expect("compilable");
        let want = backend.predict_dataset(&data);
        let matrix = FeatureMatrix::from_dataset(&data);
        for block in BLOCKS {
            for threads in THREADS {
                let opts = BatchOptions::default()
                    .block_samples(block)
                    .threads(threads);
                assert_eq!(
                    BatchEngine::new(&backend, opts).predict(&matrix),
                    want,
                    "{} block {block} threads {threads}",
                    kind.name()
                );
                assert_eq!(
                    backend.predict_dataset_batched(&data, opts),
                    want,
                    "{} wrapper block {block} threads {threads}",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn tree_block_size_never_changes_predictions() {
    let (data, forest) = trained(17, 150, 7);
    let backend = CompiledForest::compile(&forest, BackendKind::Flint, None).expect("compilable");
    let want = backend.predict_dataset(&data);
    for block_trees in [1usize, 2, 5, 100] {
        let opts = BatchOptions::default().block_trees(block_trees);
        assert_eq!(
            backend.predict_dataset_batched(&data, opts),
            want,
            "block_trees {block_trees}"
        );
    }
}

#[test]
fn quickscorer_batch_equals_single_for_both_modes() {
    let (data, forest) = trained(23, 180, 8);
    let qs = QsForest::build(&forest);
    let matrix = FeatureMatrix::from_dataset(&data);
    for compare in [QsCompare::Float, QsCompare::Flint] {
        let batch = qs.predict_batch(&matrix, compare);
        let rows = qs.predict_rows((0..data.n_samples()).map(|i| data.sample(i)), compare);
        for (i, &label) in batch.iter().enumerate() {
            assert_eq!(
                label,
                qs.predict(data.sample(i), compare),
                "sample {i} ({compare:?})"
            );
        }
        assert_eq!(batch, rows, "({compare:?})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any forest, any dataset, any options in the practical envelope:
    /// the batch engine is indistinguishable from the scalar loop.
    #[test]
    fn batched_equals_scalar_under_random_options(
        seed in 0u64..64,
        depth in 1usize..9,
        block in 1usize..300,
        block_trees in 1usize..9,
        threads in 1usize..6,
    ) {
        let (data, forest) = trained(seed, 120, depth);
        let backend = CompiledForest::compile(&forest, BackendKind::CagsFlint, Some(&data))
            .expect("compilable");
        let opts = BatchOptions {
            block_samples: block,
            block_trees,
            threads,
        };
        prop_assert_eq!(
            backend.predict_dataset_batched(&data, opts),
            backend.predict_dataset(&data)
        );
    }
}
