//! Double-precision flat trees (Section IV-C: the generator "supports
//! single precision (float) and double precision (double) datatypes").
//!
//! Models are trained on `f32` data; widening both features and
//! thresholds to `f64` is exact and order-preserving, so these backends
//! serve `f64` feature vectors (the common case when the data source
//! emits doubles) with predictions identical to the `f32` pipeline.

use crate::compile::{CompileTreeError, FLIP_BIT, LEAF_MARKER};
use flint_core::{FloatBits, PreparedThreshold};
use flint_forest::{DecisionTree, Node};
use flint_layout::TreeLayout;

/// A flat node with a native `f64` threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloatNode64 {
    /// Feature index, or [`LEAF_MARKER`] for leaves.
    pub feature: u32,
    /// Flat position of the left child; for leaves, the class.
    pub left: u32,
    /// Flat position of the right child (unused for leaves).
    pub right: u32,
    /// Split value widened to `f64` (unused for leaves).
    pub threshold: f64,
}

/// A flat node with the FLInt-prepared 64-bit integer threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntNode64 {
    /// Feature index with [`FLIP_BIT`] possibly set, or [`LEAF_MARKER`].
    pub feature_and_flip: u32,
    /// Flat position of the left child; for leaves, the class.
    pub left: u32,
    /// Flat position of the right child (unused for leaves).
    pub right: u32,
    /// The prepared 64-bit integer immediate.
    pub key: i64,
}

/// A tree compiled to `f64` float comparisons.
#[derive(Debug, Clone, PartialEq)]
pub struct FloatTree64 {
    nodes: Vec<FloatNode64>,
}

/// A tree compiled to FLInt 64-bit integer comparisons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntTree64 {
    nodes: Vec<IntNode64>,
}

impl FloatTree64 {
    /// Compiles `tree` in layout order with thresholds widened to `f64`.
    ///
    /// # Panics
    ///
    /// Panics if `layout` does not cover `tree`.
    pub fn compile(tree: &DecisionTree, layout: &TreeLayout) -> Self {
        assert_eq!(layout.len(), tree.n_nodes(), "layout must cover the tree");
        let nodes = (0..layout.len())
            .map(|k| match &tree.nodes()[layout.node_at(k).index()] {
                Node::Leaf { class, .. } => FloatNode64 {
                    feature: LEAF_MARKER,
                    threshold: 0.0,
                    left: *class,
                    right: 0,
                },
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => FloatNode64 {
                    feature: *feature,
                    threshold: f64::from(*threshold),
                    left: layout.position_of(*left),
                    right: layout.position_of(*right),
                },
            })
            .collect();
        Self { nodes }
    }

    /// Predicts the class of an `f64` feature vector.
    #[inline]
    pub fn predict(&self, features: &[f64]) -> u32 {
        let mut idx = 0u32;
        loop {
            let node = &self.nodes[idx as usize];
            if node.feature == LEAF_MARKER {
                return node.left;
            }
            idx = if features[node.feature as usize] <= node.threshold {
                node.left
            } else {
                node.right
            };
        }
    }

    /// The flat node array.
    pub fn nodes(&self) -> &[FloatNode64] {
        &self.nodes
    }
}

impl IntTree64 {
    /// Compiles `tree` in layout order, resolving each widened
    /// threshold offline per Theorem 2 (64-bit instance).
    ///
    /// # Errors
    ///
    /// [`CompileTreeError`] as in the 32-bit pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `layout` does not cover `tree`.
    pub fn compile(tree: &DecisionTree, layout: &TreeLayout) -> Result<Self, CompileTreeError> {
        assert_eq!(layout.len(), tree.n_nodes(), "layout must cover the tree");
        let mut nodes = Vec::with_capacity(layout.len());
        for k in 0..layout.len() {
            let id = layout.node_at(k);
            let node = match &tree.nodes()[id.index()] {
                Node::Leaf { class, .. } => IntNode64 {
                    feature_and_flip: LEAF_MARKER,
                    key: 0,
                    left: *class,
                    right: 0,
                },
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    if feature & FLIP_BIT != 0 {
                        return Err(CompileTreeError::FeatureTooLarge { node: id });
                    }
                    let prepared = PreparedThreshold::new(f64::from(*threshold))
                        .map_err(|_| CompileTreeError::NanThreshold { node: id })?;
                    let flip = if prepared.flips_sign() { FLIP_BIT } else { 0 };
                    IntNode64 {
                        feature_and_flip: feature | flip,
                        key: prepared.key(),
                        left: layout.position_of(*left),
                        right: layout.position_of(*right),
                    }
                }
            };
            nodes.push(node);
        }
        Ok(Self { nodes })
    }

    /// Predicts the class of an `f64` feature vector using 64-bit
    /// integer comparisons only.
    #[inline]
    pub fn predict(&self, features: &[f64]) -> u32 {
        let mut idx = 0u32;
        loop {
            let node = &self.nodes[idx as usize];
            if node.feature_and_flip == LEAF_MARKER {
                return node.left;
            }
            let feature = (node.feature_and_flip & !FLIP_BIT) as usize;
            let bits = features[feature].to_signed_bits();
            let go_left = if node.feature_and_flip & FLIP_BIT != 0 {
                node.key <= (bits ^ i64::MIN)
            } else {
                bits <= node.key
            };
            idx = if go_left { node.left } else { node.right };
        }
    }

    /// The flat node array.
    pub fn nodes(&self) -> &[IntNode64] {
        &self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_forest::example_tree;
    use flint_layout::{LayoutStrategy, TreeLayout, TreeProfile};

    fn layout_of(tree: &DecisionTree) -> TreeLayout {
        TreeLayout::compute(
            tree,
            &TreeProfile::uniform(tree),
            LayoutStrategy::ArenaOrder,
        )
    }

    #[test]
    fn f64_trees_match_f32_reference() {
        let tree = example_tree();
        let layout = layout_of(&tree);
        let ft = FloatTree64::compile(&tree, &layout);
        let it = IntTree64::compile(&tree, &layout).expect("compiles");
        let inputs = [
            [0.0f32, -2.0],
            [0.0, 0.0],
            [1.0, 0.0],
            [0.5, -1.25],
            [-3.0, 7.0],
            [0.5, -0.0],
        ];
        for input in inputs {
            let wide: Vec<f64> = input.iter().map(|&v| f64::from(v)).collect();
            let want = tree.predict(&input);
            assert_eq!(ft.predict(&wide), want, "{input:?}");
            assert_eq!(it.predict(&wide), want, "{input:?}");
        }
    }

    #[test]
    fn f64_inputs_between_f32_values_resolve_correctly() {
        // The widened threshold is exact, so an f64 feature strictly
        // between two adjacent f32 values must compare exactly.
        let tree = example_tree(); // root split 0.5
        let layout = layout_of(&tree);
        let it = IntTree64::compile(&tree, &layout).expect("compiles");
        let just_above = 0.5f64 + f64::EPSILON; // > 0.5 in f64, rounds to 0.5 in f32
        assert_eq!(it.predict(&[just_above, 0.0]), 2); // goes right
        let just_below = 0.5f64 - f64::EPSILON;
        assert_ne!(it.predict(&[just_below, 0.0]), 2); // goes left subtree
    }

    #[test]
    fn negative_threshold_flips_in_64_bits() {
        let tree = example_tree(); // contains -1.25
        let layout = layout_of(&tree);
        let it = IntTree64::compile(&tree, &layout).expect("compiles");
        let flip_keys: Vec<i64> = it
            .nodes()
            .iter()
            .filter(|n| n.feature_and_flip != LEAF_MARKER && n.feature_and_flip & FLIP_BIT != 0)
            .map(|n| n.key)
            .collect();
        assert_eq!(flip_keys, vec![1.25f64.to_bits() as i64]);
    }

    #[test]
    fn node_layout_is_dense() {
        assert_eq!(core::mem::size_of::<FloatNode64>(), 24);
        assert_eq!(core::mem::size_of::<IntNode64>(), 24);
    }
}
