//! The four measured forest inference configurations of the paper's
//! evaluation (Section V-A), plus the software float baseline.

use crate::compile::{CompileTreeError, FloatTree, IntTree};
use flint_data::Dataset;
use flint_forest::RandomForest;
use flint_layout::{LayoutStrategy, TreeLayout, TreeProfile};

/// Which comparison the compiled trees execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareMode {
    /// Native hardware float `<=` (the paper's baseline trees).
    NativeFloat,
    /// FLInt integer comparison with offline-resolved thresholds.
    Flint,
    /// Software float comparison (unpack-and-branch) — the no-FPU
    /// fallback FLInt renders unnecessary.
    SoftFloat,
}

/// One of the evaluation's backend configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Standard if-else trees with float comparisons ("Naive").
    Naive,
    /// CAGS-laid-out trees with float comparisons ("CAGS").
    Cags,
    /// Standard layout with FLInt comparisons ("FLInt").
    Flint,
    /// CAGS layout with FLInt comparisons ("CAGS (FLInt)").
    CagsFlint,
    /// Standard layout with software float comparisons (motivational
    /// baseline for FPU-less systems; not in the paper's figures).
    SoftFloat,
}

impl BackendKind {
    /// The four configurations of Fig. 3, in the paper's legend order.
    pub const PAPER_SET: [BackendKind; 4] = [
        BackendKind::Naive,
        BackendKind::Cags,
        BackendKind::Flint,
        BackendKind::CagsFlint,
    ];

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Naive => "Naive",
            BackendKind::Cags => "CAGS",
            BackendKind::Flint => "FLInt",
            BackendKind::CagsFlint => "CAGS (FLInt)",
            BackendKind::SoftFloat => "SoftFloat",
        }
    }

    /// The comparison mode this configuration uses.
    pub fn compare_mode(self) -> CompareMode {
        match self {
            BackendKind::Naive | BackendKind::Cags => CompareMode::NativeFloat,
            BackendKind::Flint | BackendKind::CagsFlint => CompareMode::Flint,
            BackendKind::SoftFloat => CompareMode::NativeFloat,
        }
    }

    /// The layout strategy this configuration uses.
    pub fn layout_strategy(self) -> LayoutStrategy {
        match self {
            BackendKind::Naive | BackendKind::Flint | BackendKind::SoftFloat => {
                LayoutStrategy::ArenaOrder
            }
            BackendKind::Cags | BackendKind::CagsFlint => LayoutStrategy::Cags { block_nodes: 4 },
        }
    }
}

pub(crate) enum Trees {
    Float(Vec<FloatTree>),
    Int(Vec<IntTree>),
    Soft(Vec<FloatTree>),
}

impl core::fmt::Debug for Trees {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Trees::Float(ts) => write!(f, "Float({} trees)", ts.len()),
            Trees::Int(ts) => write!(f, "Int({} trees)", ts.len()),
            Trees::Soft(ts) => write!(f, "Soft({} trees)", ts.len()),
        }
    }
}

/// A random forest compiled for one backend configuration.
///
/// Prediction is a majority vote over per-tree leaf classes (ties break
/// to the lower class index) — the aggregation an if-else-tree code
/// generator emits, identical across all backends so the paper's
/// "accuracy unchanged" claim is checkable prediction-for-prediction.
///
/// # Examples
///
/// ```
/// use flint_data::synth::SynthSpec;
/// use flint_exec::{BackendKind, CompiledForest};
/// use flint_forest::{ForestConfig, RandomForest};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = SynthSpec::new(150, 4, 2).cluster_std(0.4).generate();
/// let forest = RandomForest::fit(&data, &ForestConfig::grid(5, 6))?;
/// let naive = CompiledForest::compile(&forest, BackendKind::Naive, None)?;
/// let flint = CompiledForest::compile(&forest, BackendKind::Flint, None)?;
/// for i in 0..data.n_samples() {
///     assert_eq!(naive.predict(data.sample(i)), flint.predict(data.sample(i)));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CompiledForest {
    kind: BackendKind,
    trees: Trees,
    n_classes: usize,
    n_features: usize,
}

impl CompiledForest {
    /// Compiles `forest` for the given backend. CAGS configurations
    /// profile branch probabilities on `profile_data` (pass the
    /// training set, as the paper does); `None` falls back to uniform
    /// probabilities.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileTreeError`] from FLInt threshold
    /// preparation.
    pub fn compile(
        forest: &RandomForest,
        kind: BackendKind,
        profile_data: Option<&Dataset>,
    ) -> Result<Self, CompileTreeError> {
        let strategy = kind.layout_strategy();
        let mut float_trees = Vec::new();
        let mut int_trees = Vec::new();
        for tree in forest.trees() {
            let profile = match profile_data {
                Some(data) => TreeProfile::collect(tree, data),
                None => TreeProfile::uniform(tree),
            };
            let layout = TreeLayout::compute(tree, &profile, strategy);
            match kind.compare_mode() {
                CompareMode::Flint => int_trees.push(IntTree::compile(tree, &layout)?),
                CompareMode::NativeFloat | CompareMode::SoftFloat => {
                    float_trees.push(FloatTree::compile(tree, &layout))
                }
            }
        }
        let trees = match kind {
            BackendKind::Flint | BackendKind::CagsFlint => Trees::Int(int_trees),
            BackendKind::SoftFloat => Trees::Soft(float_trees),
            BackendKind::Naive | BackendKind::Cags => Trees::Float(float_trees),
        };
        Ok(Self {
            kind,
            trees,
            n_classes: forest.n_classes(),
            n_features: forest.n_features(),
        })
    }

    /// The backend configuration.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Expected feature vector length.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of compiled trees.
    pub fn n_trees(&self) -> usize {
        match &self.trees {
            Trees::Float(t) | Trees::Soft(t) => t.len(),
            Trees::Int(t) => t.len(),
        }
    }

    /// The compiled per-tree arrays, for the batch engine's
    /// tree-blocked traversal.
    pub(crate) fn trees(&self) -> &Trees {
        &self.trees
    }

    /// Predicts the majority-vote class of `features`.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features()`.
    pub fn predict(&self, features: &[f32]) -> u32 {
        flint_forest::metrics::majority_vote(&self.predict_votes(features))
    }

    /// The per-class vote histogram behind [`predict`](Self::predict):
    /// one vote per compiled tree, the partial a forest shard reports
    /// for distributed merge.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features()`.
    pub fn predict_votes(&self, features: &[f32]) -> Vec<u32> {
        assert_eq!(features.len(), self.n_features, "feature vector length");
        let mut votes = vec![0u32; self.n_classes];
        match &self.trees {
            Trees::Float(trees) => {
                for t in trees {
                    votes[t.predict(features) as usize] += 1;
                }
            }
            Trees::Soft(trees) => {
                for t in trees {
                    votes[t.predict_softfloat(features) as usize] += 1;
                }
            }
            Trees::Int(trees) => {
                for t in trees {
                    votes[t.predict(features) as usize] += 1;
                }
            }
        }
        votes
    }

    /// Batch prediction over a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset's feature count differs from the model's.
    pub fn predict_dataset(&self, data: &Dataset) -> Vec<u32> {
        (0..data.n_samples())
            .map(|i| self.predict(data.sample(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_data::synth::SynthSpec;
    use flint_forest::ForestConfig;

    fn setup() -> (Dataset, RandomForest) {
        let data = SynthSpec::new(250, 5, 3)
            .cluster_std(1.0)
            .negative_fraction(0.5)
            .seed(4)
            .generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(7, 8)).expect("trainable");
        (data, forest)
    }

    #[test]
    fn all_backends_agree_on_every_sample() {
        let (data, forest) = setup();
        let backends: Vec<CompiledForest> = [
            BackendKind::Naive,
            BackendKind::Cags,
            BackendKind::Flint,
            BackendKind::CagsFlint,
            BackendKind::SoftFloat,
        ]
        .iter()
        .map(|&k| CompiledForest::compile(&forest, k, Some(&data)).expect("compilable"))
        .collect();
        let reference = backends[0].predict_dataset(&data);
        for backend in &backends[1..] {
            assert_eq!(
                backend.predict_dataset(&data),
                reference,
                "{} diverges from Naive",
                backend.kind().name()
            );
        }
    }

    #[test]
    fn backend_metadata() {
        let (data, forest) = setup();
        let b = CompiledForest::compile(&forest, BackendKind::CagsFlint, Some(&data))
            .expect("compilable");
        assert_eq!(b.kind(), BackendKind::CagsFlint);
        assert_eq!(b.n_trees(), 7);
        assert_eq!(b.n_classes(), 3);
        assert_eq!(b.n_features(), 5);
    }

    #[test]
    fn paper_set_names() {
        let names: Vec<&str> = BackendKind::PAPER_SET.iter().map(|b| b.name()).collect();
        assert_eq!(names, ["Naive", "CAGS", "FLInt", "CAGS (FLInt)"]);
    }

    #[test]
    fn cags_without_profile_data_still_works() {
        let (data, forest) = setup();
        let with =
            CompiledForest::compile(&forest, BackendKind::Cags, Some(&data)).expect("compilable");
        let without =
            CompiledForest::compile(&forest, BackendKind::Cags, None).expect("compilable");
        // Layouts differ but predictions must not.
        assert_eq!(with.predict_dataset(&data), without.predict_dataset(&data));
    }

    #[test]
    fn majority_tie_breaks_to_lower_class() {
        use flint_forest::{DecisionTree, Node};
        // Two single-leaf trees voting for different classes.
        let leaf = |class: u32| {
            DecisionTree::new(
                vec![Node::Leaf {
                    class,
                    counts: vec![1, 1],
                }],
                1,
                2,
            )
            .expect("valid")
        };
        let forest = RandomForest::from_trees(vec![leaf(1), leaf(0)]);
        let b = CompiledForest::compile(&forest, BackendKind::Naive, None).expect("compilable");
        assert_eq!(b.predict(&[0.0]), 0);
    }
}
