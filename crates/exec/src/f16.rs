//! Half-precision node slabs: the `simd-f16` / `simd-f16-float`
//! lane engines.
//!
//! The lane walk in [`crate::simd`] is bandwidth-bound on large
//! forests: every level gathers 16-byte nodes and 4-byte feature
//! lanes. This module halves both. Forests are re-compiled with
//! binary16 thresholds ([`flint_core::half::Half`], converted once per
//! model with monotone round-to-nearest-even) into **8-byte nodes**
//! ([`HalfFloatNode`] / [`HalfIntNode`] — four 16-bit fields), and
//! features are quantized once per sample block into `u16` lane slabs
//! ([`flint_data::FeatureMatrix::gather_lanes_f16`] — bulk-converted
//! by `VCVTPS2PH` on the AVX2+F16C path, bit-identically). Each
//! traversal level then moves half the node bytes and half the
//! feature bytes of the f32 walk — on the AVX2 path, one 64-bit
//! gather pair fetches all eight nodes whole where the f32 kernels
//! spend four 32-bit-word gathers.
//!
//! **f16 engines are their own comparison family.** Quantizing
//! thresholds and features to binary16 legitimately changes decisions
//! for samples within half an f16 ULP of a split, so these engines are
//! *not* bit-identical to the f32 majority vote (and
//! [`crate::EngineKind::is_exact`] says so). Their correctness
//! contract — the per-compare-family pattern the NaN suites
//! established — is instead:
//!
//! * bit-identical to their own scalar f16 walk
//!   ([`HalfForest::predict`]) across every batch shape, thread count,
//!   kernel path and adversarial column set;
//! * accuracy drift vs the f32 engines bounded on realistic data
//!   (measured in EXPERIMENTS.md).
//!
//! Both compare modes exist, mirroring the paper's split:
//! [`HalfCompare::Flint`] prepares each binary16 threshold offline
//! into an `i16` key + flip bit ([`flint_core::PreparedThreshold`] is
//! generic over the float width — Theorem 2 applies unchanged) and
//! compares feature *bit patterns* with 16-bit integer order;
//! [`HalfCompare::Float`] widens both sides to `f32` and uses IEEE
//! `<=` (on AVX2 via F16C `vcvtph2ps`, so that path additionally
//! requires the `f16c` CPU capability — [`f16_policy`] encodes this).
//!
//! ```
//! use flint_data::{synth::SynthSpec, FeatureMatrix};
//! use flint_exec::f16::{HalfCompare, HalfForest, SimdF16Engine};
//! use flint_exec::BatchOptions;
//! use flint_forest::{ForestConfig, RandomForest};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = SynthSpec::new(200, 4, 3).generate();
//! let forest = RandomForest::fit(&data, &ForestConfig::grid(5, 7))?;
//! let half = HalfForest::compile(&forest, HalfCompare::Flint)?;
//!
//! let matrix = FeatureMatrix::from_dataset(&data);
//! let engine = SimdF16Engine::new(half, BatchOptions::default());
//! let batch = engine.predict(&matrix);
//! // The engine's contract: bit-identical to its own scalar f16 walk.
//! for i in 0..data.n_samples() {
//!     assert_eq!(batch[i], engine.forest().predict(data.sample(i)));
//! }
//! # Ok(())
//! # }
//! ```

use crate::batch::{score_spans, BatchOptions};
use crate::compile::CompileTreeError;
use crate::dispatch::{KernelPath, KernelPolicy};
use crate::simd::{vote_group, F32x8, U32x8, WAVE};
use flint_core::half::Half;
use flint_core::PreparedThreshold;
use flint_data::{FeatureMatrix, LANES};
use flint_forest::{DecisionTree, Node, NodeId, RandomForest};
use flint_layout::{LayoutStrategy, TreeLayout, TreeProfile};

/// Marker stored in the feature field of half-precision leaf nodes.
pub const LEAF_MARKER_F16: u16 = u16::MAX;

/// Flip bit in [`HalfIntNode::feature_and_flip`] ("XOR the feature's
/// sign bit before comparing"). Feature indices must stay below it.
pub const FLIP_BIT_F16: u16 = 1 << 15;

// The AVX2 kernels fetch whole nodes with cursor-indexed 64-bit
// gathers and split them into two 32-bit words, which is only sound
// while both formats stay exactly eight bytes.
const _: () = assert!(core::mem::size_of::<HalfFloatNode>() == 8);
const _: () = assert!(core::mem::size_of::<HalfIntNode>() == 8);

/// An 8-byte node with a binary16 threshold and IEEE comparisons.
///
/// `repr(C)`: the AVX2 path gathers the node as two 32-bit words —
/// word 0 is `feature | threshold << 16`, word 1 is
/// `left | right << 16` (little-endian) — so the field order is
/// load-bearing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct HalfFloatNode {
    /// Feature index, or [`LEAF_MARKER_F16`] for leaves.
    pub feature: u16,
    /// Split value as raw binary16 bits (unused for leaves).
    pub threshold: u16,
    /// Flat position of the left child; for leaves, the class.
    pub left: u16,
    /// Flat position of the right child (unused for leaves).
    pub right: u16,
}

/// An 8-byte node with the FLInt-prepared binary16 threshold.
///
/// `repr(C)` for the same word-gather reason as [`HalfFloatNode`];
/// word 0 is `feature_and_flip | (key as u16) << 16`, so an
/// arithmetic right shift by 16 recovers the sign-extended key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct HalfIntNode {
    /// Feature index with [`FLIP_BIT_F16`] possibly set, or
    /// [`LEAF_MARKER_F16`] for leaves.
    pub feature_and_flip: u16,
    /// The prepared 16-bit integer immediate
    /// ([`PreparedThreshold::key`] over [`Half`]).
    pub key: i16,
    /// Flat position of the left child; for leaves, the class.
    pub left: u16,
    /// Flat position of the right child (unused for leaves).
    pub right: u16,
}

/// The f16 engines' comparison mode — the binary16 mirror of
/// [`crate::SimdCompare`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HalfCompare {
    /// FLInt 16-bit integer compares on prepared keys (registry name
    /// `simd-f16`).
    Flint,
    /// IEEE compares after widening both sides to `f32` (registry name
    /// `simd-f16-float`).
    Float,
}

/// The f16 families' dispatch policy: AVX2 kernels behind the
/// `simd-avx2` feature on x86-64 (the float family additionally needs
/// F16C for `vcvtph2ps`); portable elsewhere — including aarch64,
/// where the autovectorized walk is the NEON story for now.
pub fn f16_policy(compare: HalfCompare) -> KernelPolicy {
    KernelPolicy {
        avx2: cfg!(all(feature = "simd-avx2", target_arch = "x86_64")),
        f16c_required: matches!(compare, HalfCompare::Float),
        neon: false,
    }
}

/// A tree compiled to flat 8-byte float-comparison nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HalfFloatTree {
    nodes: Vec<HalfFloatNode>,
}

/// A tree compiled to flat 8-byte FLInt-comparison nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HalfIntTree {
    nodes: Vec<HalfIntNode>,
}

/// Converts a layout position to the 16-bit field width, or fails
/// compilation: f16 trees must stay under [`LEAF_MARKER_F16`] nodes.
fn pos16(position: u32, at: NodeId) -> Result<u16, CompileTreeError> {
    if position >= u32::from(LEAF_MARKER_F16) {
        return Err(CompileTreeError::IndexOverflow { node: at });
    }
    Ok(position as u16)
}

impl HalfFloatTree {
    /// Compiles `tree` in layout order, quantizing every threshold to
    /// binary16 once (round-to-nearest-even — monotone, so tree
    /// structure survives).
    ///
    /// # Errors
    ///
    /// [`CompileTreeError::FeatureTooLarge`] if a feature index
    /// collides with the leaf marker,
    /// [`CompileTreeError::IndexOverflow`] if a node position or class
    /// exceeds 16 bits.
    pub fn compile(tree: &DecisionTree, layout: &TreeLayout) -> Result<Self, CompileTreeError> {
        assert_eq!(layout.len(), tree.n_nodes(), "layout must cover the tree");
        let mut nodes = Vec::with_capacity(layout.len());
        for k in 0..layout.len() {
            let id = layout.node_at(k);
            let node = match &tree.nodes()[id.index()] {
                Node::Leaf { class, .. } => HalfFloatNode {
                    feature: LEAF_MARKER_F16,
                    threshold: 0,
                    left: pos16(*class, id)?,
                    right: 0,
                },
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    if *feature >= u32::from(LEAF_MARKER_F16) {
                        return Err(CompileTreeError::FeatureTooLarge { node: id });
                    }
                    HalfFloatNode {
                        feature: *feature as u16,
                        threshold: Half::from_f32(*threshold).to_bits(),
                        left: pos16(layout.position_of(*left), id)?,
                        right: pos16(layout.position_of(*right), id)?,
                    }
                }
            };
            nodes.push(node);
        }
        Ok(Self { nodes })
    }

    /// The scalar f16 reference walk: features quantize through the
    /// identical [`Half::from_f32`] the lane slabs use, then IEEE `<=`
    /// on the widened values (NaN goes right, like every float
    /// family).
    #[inline]
    pub fn predict(&self, features: &[f32]) -> u32 {
        let mut idx = 0u16;
        loop {
            let node = &self.nodes[idx as usize];
            if node.feature == LEAF_MARKER_F16 {
                return u32::from(node.left);
            }
            let x = Half::from_f32(features[node.feature as usize]).to_f32();
            let t = Half::from_bits(node.threshold).to_f32();
            idx = if x <= t { node.left } else { node.right };
        }
    }

    /// The flat node array.
    pub fn nodes(&self) -> &[HalfFloatNode] {
        &self.nodes
    }
}

impl HalfIntTree {
    /// Compiles `tree` in layout order: thresholds quantize to
    /// binary16, then [`PreparedThreshold`] resolves each one offline
    /// into an `i16` key + flip bit (Theorem 2 at 16-bit width).
    ///
    /// # Errors
    ///
    /// [`CompileTreeError::NanThreshold`] for NaN split values,
    /// [`CompileTreeError::FeatureTooLarge`] if a feature index
    /// collides with the flip bit,
    /// [`CompileTreeError::IndexOverflow`] if a node position or class
    /// exceeds 16 bits.
    pub fn compile(tree: &DecisionTree, layout: &TreeLayout) -> Result<Self, CompileTreeError> {
        assert_eq!(layout.len(), tree.n_nodes(), "layout must cover the tree");
        let mut nodes = Vec::with_capacity(layout.len());
        for k in 0..layout.len() {
            let id = layout.node_at(k);
            let node = match &tree.nodes()[id.index()] {
                Node::Leaf { class, .. } => HalfIntNode {
                    feature_and_flip: LEAF_MARKER_F16,
                    key: 0,
                    left: pos16(*class, id)?,
                    right: 0,
                },
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    if *feature >= u32::from(FLIP_BIT_F16) {
                        return Err(CompileTreeError::FeatureTooLarge { node: id });
                    }
                    let prepared = PreparedThreshold::new(Half::from_f32(*threshold))
                        .map_err(|_| CompileTreeError::NanThreshold { node: id })?;
                    let flip = if prepared.flips_sign() {
                        FLIP_BIT_F16
                    } else {
                        0
                    };
                    HalfIntNode {
                        feature_and_flip: *feature as u16 | flip,
                        key: prepared.key(),
                        left: pos16(layout.position_of(*left), id)?,
                        right: pos16(layout.position_of(*right), id)?,
                    }
                }
            };
            nodes.push(node);
        }
        Ok(Self { nodes })
    }

    /// The scalar f16 reference walk: the feature's binary16 bit
    /// pattern against the prepared key — one optional sign-bit XOR
    /// plus one signed 16-bit compare, exactly
    /// [`PreparedThreshold::le_bits`].
    #[inline]
    pub fn predict(&self, features: &[f32]) -> u32 {
        let mut idx = 0u16;
        loop {
            let node = &self.nodes[idx as usize];
            if node.feature_and_flip == LEAF_MARKER_F16 {
                return u32::from(node.left);
            }
            let feature = (node.feature_and_flip & !FLIP_BIT_F16) as usize;
            let bits = Half::from_f32(features[feature]).to_bits() as i16;
            let go_left = if node.feature_and_flip & FLIP_BIT_F16 != 0 {
                node.key <= (bits ^ i16::MIN)
            } else {
                bits <= node.key
            };
            idx = if go_left { node.left } else { node.right };
        }
    }

    /// The flat node array.
    pub fn nodes(&self) -> &[HalfIntNode] {
        &self.nodes
    }
}

/// The compiled trees of one compare mode.
#[derive(Debug, Clone)]
enum HalfTrees {
    Float(Vec<HalfFloatTree>),
    Int(Vec<HalfIntTree>),
}

/// A forest re-compiled with binary16 thresholds — the model the
/// `simd-f16` engines walk, and (through [`HalfForest::predict`]) the
/// scalar reference of the f16 comparison family.
#[derive(Debug, Clone)]
pub struct HalfForest {
    compare: HalfCompare,
    trees: HalfTrees,
    n_classes: usize,
    n_features: usize,
}

impl HalfForest {
    /// Compiles every tree of `forest` into 8-byte nodes (arena order;
    /// CAGS reordering buys nothing when all lanes move in lock-step).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileTreeError`] from per-tree compilation.
    pub fn compile(forest: &RandomForest, compare: HalfCompare) -> Result<Self, CompileTreeError> {
        let mut float_trees = Vec::new();
        let mut int_trees = Vec::new();
        for tree in forest.trees() {
            let profile = TreeProfile::uniform(tree);
            let layout = TreeLayout::compute(tree, &profile, LayoutStrategy::ArenaOrder);
            match compare {
                HalfCompare::Float => float_trees.push(HalfFloatTree::compile(tree, &layout)?),
                HalfCompare::Flint => int_trees.push(HalfIntTree::compile(tree, &layout)?),
            }
        }
        let trees = match compare {
            HalfCompare::Float => HalfTrees::Float(float_trees),
            HalfCompare::Flint => HalfTrees::Int(int_trees),
        };
        Ok(Self {
            compare,
            trees,
            n_classes: forest.n_classes(),
            n_features: forest.n_features(),
        })
    }

    /// The comparison mode the forest was compiled for.
    pub fn compare(&self) -> HalfCompare {
        self.compare
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The scalar reference prediction of the f16 family: per tree,
    /// the plain branchy walk with the same per-value quantization the
    /// lane slabs apply; majority vote across trees with the canonical
    /// tie-break.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features()`.
    pub fn predict(&self, features: &[f32]) -> u32 {
        flint_forest::metrics::majority_vote(&self.predict_votes(features))
    }

    /// Per-class vote histogram (one vote per quantized tree) behind
    /// [`predict`](Self::predict) — the partial a forest shard of the
    /// f16 family reports for distributed merge. Shard histograms sum
    /// to the full-forest f16 histogram because quantization is
    /// per-tree.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features()`.
    pub fn predict_votes(&self, features: &[f32]) -> Vec<u32> {
        assert_eq!(features.len(), self.n_features, "feature vector length");
        let mut votes = vec![0u32; self.n_classes];
        match &self.trees {
            HalfTrees::Float(trees) => {
                for tree in trees {
                    votes[tree.predict(features) as usize] += 1;
                }
            }
            HalfTrees::Int(trees) => {
                for tree in trees {
                    votes[tree.predict(features) as usize] += 1;
                }
            }
        }
        votes
    }
}

/// Deepest tree the 4-byte heap re-layout accepts: a full heap of
/// depth 15 is `2^16 - 1` words (256 KiB), past which the padding
/// overwhelms the gather savings and the engine stays on the 8-byte
/// explicit-child walk.
#[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
const HEAP_MAX_DEPTH: u32 = 15;

/// Max heap depth of `nodes` rooted at flat position 0, or `None` if
/// it exceeds [`HEAP_MAX_DEPTH`]. `child` maps a non-leaf node to its
/// (left, right) flat positions; leaves return `None`.
#[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
fn heap_depth<N>(nodes: &[N], child: impl Fn(&N) -> Option<(u16, u16)>) -> Option<u32> {
    let mut depth = 0;
    let mut stack = vec![(0u16, 0u32)];
    while let Some((flat, level)) = stack.pop() {
        if level > HEAP_MAX_DEPTH {
            return None;
        }
        depth = depth.max(level);
        if let Some((left, right)) = child(&nodes[flat as usize]) {
            stack.push((left, level + 1));
            stack.push((right, level + 1));
        }
    }
    Some(depth)
}

/// Re-lays a compiled tree into the implicit-child heap slab the AVX2
/// fast path walks: one `u32` word per heap position `p` — for splits
/// `feature | payload << 16` with children at `2p + 1` / `2p + 2`, for
/// leaves `LEAF_MARKER_F16 | class << 16`. Unreachable padding slots
/// hold a class-0 leaf word and are never gathered (cursors only ever
/// advance out of real split nodes). Returns `None` for trees deeper
/// than [`HEAP_MAX_DEPTH`].
#[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
fn heapify<N>(
    nodes: &[N],
    word: impl Fn(&N) -> u32,
    child: impl Fn(&N) -> Option<(u16, u16)>,
) -> Option<Vec<u32>> {
    let depth = heap_depth(nodes, &child)?;
    let mut heap = vec![u32::from(LEAF_MARKER_F16); (1usize << (depth + 1)) - 1];
    let mut stack = vec![(0u16, 0usize)];
    while let Some((flat, pos)) = stack.pop() {
        let node = &nodes[flat as usize];
        heap[pos] = word(node);
        if let Some((left, right)) = child(node) {
            stack.push((left, 2 * pos + 1));
            stack.push((right, 2 * pos + 2));
        }
    }
    Some(heap)
}

/// Builds the per-tree heap slabs for a compiled forest, or `None` if
/// any tree is too deep for the heap layout.
#[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
fn heapify_forest(trees: &HalfTrees) -> Option<Vec<Vec<u32>>> {
    match trees {
        HalfTrees::Float(trees) => trees
            .iter()
            .map(|t| {
                heapify(
                    t.nodes(),
                    |n| {
                        if n.feature == LEAF_MARKER_F16 {
                            u32::from(LEAF_MARKER_F16) | u32::from(n.left) << 16
                        } else {
                            u32::from(n.feature) | u32::from(n.threshold) << 16
                        }
                    },
                    |n| (n.feature != LEAF_MARKER_F16).then_some((n.left, n.right)),
                )
            })
            .collect(),
        HalfTrees::Int(trees) => trees
            .iter()
            .map(|t| {
                heapify(
                    t.nodes(),
                    |n| {
                        if n.feature_and_flip == LEAF_MARKER_F16 {
                            u32::from(LEAF_MARKER_F16) | u32::from(n.left) << 16
                        } else {
                            u32::from(n.feature_and_flip) | u32::from(n.key as u16) << 16
                        }
                    },
                    |n| (n.feature_and_flip != LEAF_MARKER_F16).then_some((n.left, n.right)),
                )
            })
            .collect(),
    }
}

/// The half-precision lane engine: the wave-interleaved branchless
/// walk of [`crate::simd`] over 8-byte nodes and `u16` feature slabs.
///
/// Owns its [`HalfForest`]; the kernel path is selected once at
/// construction through [`f16_policy`] (honoring the `FLINT_KERNEL`
/// override) and reported by the registry engine's `describe()`.
///
/// On the AVX2 path the engine additionally re-lays each tree into a
/// **4-byte implicit-child heap slab** (`heapify`): dropping the
/// stored child indices halves the node word again and removes one of
/// the two node gathers per level, so an AVX2 traversal level costs
/// two gathers (node word + feature) against the f32 kernels' five.
/// Trees deeper than `HEAP_MAX_DEPTH` (15) fall back to the 8-byte
/// explicit-child gather walk. Both walks are bit-identical to the
/// scalar reference — the heap slab stores the same binary16
/// threshold bits and prepared keys, only addressed differently.
#[derive(Debug, Clone)]
pub struct SimdF16Engine {
    forest: HalfForest,
    opts: BatchOptions,
    path: KernelPath,
    #[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
    heap: Option<Vec<Vec<u32>>>,
}

impl SimdF16Engine {
    /// Binds `forest` to the given options and selects the kernel
    /// path (building the heap slabs when that path is AVX2).
    pub fn new(forest: HalfForest, opts: BatchOptions) -> Self {
        let path = f16_policy(forest.compare()).select();
        #[allow(clippy::needless_update)]
        let mut engine = Self {
            forest,
            opts,
            path,
            #[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
            heap: None,
        };
        engine.rebuild_heap();
        engine
    }

    /// Overrides the dispatched kernel path (the differential suites
    /// pin accelerated paths against portable this way). Forcing a
    /// path that is not compiled in silently runs portable; forcing a
    /// compiled-in path on a CPU without the ISA panics at predict
    /// time.
    pub fn with_kernel(mut self, path: KernelPath) -> Self {
        self.path = path;
        self.rebuild_heap();
        self
    }

    /// (Re)builds the AVX2 heap slabs to match the current kernel
    /// path: present exactly when the engine dispatches to AVX2 and
    /// every tree fits the heap layout.
    fn rebuild_heap(&mut self) {
        #[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
        {
            self.heap = if self.path == KernelPath::Avx2 {
                heapify_forest(&self.forest.trees)
            } else {
                None
            };
        }
    }

    /// The kernel path this engine dispatches to.
    pub fn kernel_path(&self) -> KernelPath {
        self.path
    }

    /// The compiled binary16 forest (also the family's scalar
    /// reference via [`HalfForest::predict`]).
    pub fn forest(&self) -> &HalfForest {
        &self.forest
    }

    /// The bound options (clamping applied at use, not here).
    pub fn options(&self) -> BatchOptions {
        self.opts
    }

    /// Scores every sample of `matrix`, returning one class per
    /// sample. Bit-identical to [`HalfForest::predict`] per row.
    ///
    /// # Panics
    ///
    /// Panics if `matrix.n_features()` differs from the model's.
    pub fn predict(&self, matrix: &FeatureMatrix) -> Vec<u32> {
        self.predict_with(matrix, &self.opts)
    }

    /// [`predict`](Self::predict) under explicit batch options instead
    /// of the bound ones (the registry's `predict_batch` seam).
    ///
    /// # Panics
    ///
    /// Panics if `matrix.n_features()` differs from the model's.
    pub fn predict_with(&self, matrix: &FeatureMatrix, opts: &BatchOptions) -> Vec<u32> {
        assert_eq!(
            matrix.n_features(),
            self.forest.n_features,
            "feature matrix width"
        );
        let mut out = vec![0u32; matrix.n_samples()];
        score_spans(opts, &mut out, |start, span| {
            self.score_span(matrix, start, span, self.path, opts.block_samples);
        });
        out
    }

    fn score_span(
        &self,
        matrix: &FeatureMatrix,
        start: usize,
        out: &mut [u32],
        path: KernelPath,
        block_samples: usize,
    ) {
        let block = block_samples.max(1);
        let n_features = self.forest.n_features;
        let n_classes = self.forest.n_classes;
        let group_stride = n_features * LANES;
        let cap = block.min(out.len());
        // Per-worker scratch: quantized u16 lane slabs, an f32 staging
        // slab for the F16C bulk converter, and the flat vote
        // accumulator. The single trailing element backs the AVX2 u16
        // gathers, which read 4 bytes at the slab's last index — each
        // group's slab is carved one element past its stride.
        let mut lanes = vec![0u16; cap.div_ceil(LANES) * group_stride + 1];
        let mut scratch = vec![0f32; group_stride];
        let mut votes = vec![0u32; cap * n_classes];
        let mut offset = 0;
        while offset < out.len() {
            let len = block.min(out.len() - offset);
            let n_groups = len.div_ceil(LANES);
            for g in 0..n_groups {
                quantize_group(
                    matrix,
                    start + offset + g * LANES,
                    &mut scratch,
                    &mut lanes[g * group_stride..(g + 1) * group_stride],
                    path,
                );
            }
            let votes = &mut votes[..len * n_classes];
            votes.fill(0);
            // Heap slabs exist exactly when the engine dispatched to
            // AVX2 and every tree fits the implicit-child layout; a
            // heap-walked tree's leaf word carries the class in its
            // high half.
            #[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
            let heaps: &[Vec<u32>] = self.heap.as_deref().unwrap_or(&[]);
            #[cfg(not(all(feature = "simd-avx2", target_arch = "x86_64")))]
            let heaps: &[Vec<u32>] = &[];
            match &self.forest.trees {
                HalfTrees::Float(trees) => {
                    for (ti, tree) in trees.iter().enumerate() {
                        if let Some(heap) = heaps.get(ti) {
                            each_wave_f16(
                                &lanes,
                                n_groups,
                                group_stride,
                                |slabs, cursors| walk_float_heap(heap, slabs, cursors),
                                |g, cursor| {
                                    vote_group(votes, n_classes, len, g, |i| {
                                        heap[cursor.0[i] as usize] >> 16
                                    });
                                },
                            );
                            continue;
                        }
                        let nodes = tree.nodes();
                        each_wave_f16(
                            &lanes,
                            n_groups,
                            group_stride,
                            |slabs, cursors| walk_float(nodes, slabs, cursors, path),
                            |g, cursor| {
                                vote_group(votes, n_classes, len, g, |i| {
                                    u32::from(nodes[cursor.0[i] as usize].left)
                                });
                            },
                        );
                    }
                }
                HalfTrees::Int(trees) => {
                    for (ti, tree) in trees.iter().enumerate() {
                        if let Some(heap) = heaps.get(ti) {
                            each_wave_f16(
                                &lanes,
                                n_groups,
                                group_stride,
                                |slabs, cursors| walk_int_heap(heap, slabs, cursors),
                                |g, cursor| {
                                    vote_group(votes, n_classes, len, g, |i| {
                                        heap[cursor.0[i] as usize] >> 16
                                    });
                                },
                            );
                            continue;
                        }
                        let nodes = tree.nodes();
                        each_wave_f16(
                            &lanes,
                            n_groups,
                            group_stride,
                            |slabs, cursors| walk_int(nodes, slabs, cursors, path),
                            |g, cursor| {
                                vote_group(votes, n_classes, len, g, |i| {
                                    u32::from(nodes[cursor.0[i] as usize].left)
                                });
                            },
                        );
                    }
                }
            }
            for (k, slot) in out[offset..offset + len].iter_mut().enumerate() {
                *slot = flint_forest::metrics::majority_vote(
                    &votes[k * n_classes..(k + 1) * n_classes],
                );
            }
            offset += len;
        }
    }
}

/// Quantizes one sample group's features into its u16 lane slab — via
/// the F16C bulk converter when the engine dispatched to the AVX2 path
/// on a CPU with F16C, via the scalar
/// [`FeatureMatrix::gather_lanes_f16`] loop otherwise. The two routes
/// are bit-identical: [`Half::from_f32`] pins the `VCVTPS2PH` hardware
/// mapping (round-to-nearest-even, quiet-bit-forced NaN payloads).
#[inline]
fn quantize_group(
    matrix: &FeatureMatrix,
    first_sample: usize,
    scratch: &mut [f32],
    slab: &mut [u16],
    path: KernelPath,
) {
    #[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
    if path == KernelPath::Avx2 && crate::dispatch::KernelCaps::get().f16c {
        matrix.gather_lanes(first_sample, scratch);
        avx2::convert_lanes(scratch, slab);
        return;
    }
    #[cfg(not(all(feature = "simd-avx2", target_arch = "x86_64")))]
    let _ = (scratch, path);
    matrix.gather_lanes_f16(first_sample, slab);
}

/// The u16-slab counterpart of the f32 walk's wave carver: each
/// group's slab is `group_stride + 1` elements — one element past its
/// live lanes — so the AVX2 u16 gathers (4-byte reads at 2-byte
/// granularity) stay in bounds at the slab's final index.
#[inline]
fn each_wave_f16(
    lanes: &[u16],
    n_groups: usize,
    group_stride: usize,
    mut walk: impl FnMut(&[&[u16]], &mut [U32x8]),
    mut sink: impl FnMut(usize, U32x8),
) {
    for wave_start in (0..n_groups).step_by(WAVE) {
        let k = WAVE.min(n_groups - wave_start);
        let mut slabs: [&[u16]; WAVE] = [&[]; WAVE];
        for (j, slab) in slabs[..k].iter_mut().enumerate() {
            let g = wave_start + j;
            *slab = &lanes[g * group_stride..(g + 1) * group_stride + 1];
        }
        let mut cursors = [U32x8::ZERO; WAVE];
        walk(&slabs[..k], &mut cursors[..k]);
        for (j, &cursor) in cursors[..k].iter().enumerate() {
            sink(wave_start + j, cursor);
        }
    }
}

/// f16 float-comparison wave walk, dispatched on the engine's
/// [`KernelPath`].
#[inline]
fn walk_float(nodes: &[HalfFloatNode], slabs: &[&[u16]], cursors: &mut [U32x8], path: KernelPath) {
    match path {
        #[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
        KernelPath::Avx2 => avx2::walk_float(nodes, slabs, cursors),
        _ => walk_float_portable(nodes, slabs, cursors),
    }
}

/// f16 FLInt-comparison wave walk, dispatched on the engine's
/// [`KernelPath`].
#[inline]
fn walk_int(nodes: &[HalfIntNode], slabs: &[&[u16]], cursors: &mut [U32x8], path: KernelPath) {
    match path {
        #[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
        KernelPath::Avx2 => avx2::walk_int(nodes, slabs, cursors),
        _ => walk_int_portable(nodes, slabs, cursors),
    }
}

/// Float-family wave walk over a 4-byte implicit-child heap slab.
/// Only ever invoked with a heap present, which [`SimdF16Engine`]
/// builds exactly when it dispatched to AVX2.
fn walk_float_heap(heap: &[u32], slabs: &[&[u16]], cursors: &mut [U32x8]) {
    #[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
    {
        avx2::walk_float_heap(heap, slabs, cursors);
    }
    #[cfg(not(all(feature = "simd-avx2", target_arch = "x86_64")))]
    {
        let _ = (heap, slabs, cursors);
        unreachable!("heap slabs are only built on the AVX2 path");
    }
}

/// FLInt-family wave walk over a 4-byte implicit-child heap slab.
/// Only ever invoked with a heap present, which [`SimdF16Engine`]
/// builds exactly when it dispatched to AVX2.
fn walk_int_heap(heap: &[u32], slabs: &[&[u16]], cursors: &mut [U32x8]) {
    #[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
    {
        avx2::walk_int_heap(heap, slabs, cursors);
    }
    #[cfg(not(all(feature = "simd-avx2", target_arch = "x86_64")))]
    {
        let _ = (heap, slabs, cursors);
        unreachable!("heap slabs are only built on the AVX2 path");
    }
}

/// Portable f16 float walk: widen the u16 lane bits and the node's
/// binary16 threshold to `f32` (exact) and compare with IEEE `<=` —
/// the same per-level blend structure as the f32 walk.
#[inline]
fn walk_float_portable(nodes: &[HalfFloatNode], slabs: &[&[u16]], cursors: &mut [U32x8]) {
    debug_assert_eq!(slabs.len(), cursors.len());
    let mut done = [false; WAVE];
    loop {
        let mut remaining = false;
        for (gi, &slab) in slabs.iter().enumerate() {
            if done[gi] {
                continue;
            }
            let cursor = cursors[gi];
            let mut feature = [0u32; LANES];
            let mut threshold = [0.0f32; LANES];
            let mut left = [0u32; LANES];
            let mut right = [0u32; LANES];
            for i in 0..LANES {
                let node = &nodes[cursor.0[i] as usize];
                feature[i] = u32::from(node.feature);
                threshold[i] = Half::from_bits(node.threshold).to_f32();
                left[i] = u32::from(node.left);
                right[i] = u32::from(node.right);
            }
            let feature = U32x8(feature);
            let is_leaf = feature.eq_mask(U32x8::splat(u32::from(LEAF_MARKER_F16)));
            if is_leaf.all_set() {
                done[gi] = true;
                continue;
            }
            remaining = true;
            let fsafe = U32x8::blend(is_leaf, U32x8::ZERO, feature);
            let mut x = [0.0f32; LANES];
            for i in 0..LANES {
                x[i] = Half::from_bits(slab[fsafe.0[i] as usize * LANES + i]).to_f32();
            }
            let go_left = F32x8(x).le(F32x8(threshold));
            let next = U32x8::blend(go_left, U32x8(left), U32x8(right));
            cursors[gi] = U32x8::blend(is_leaf, cursor, next);
        }
        if !remaining {
            break;
        }
    }
}

/// Portable f16 FLInt walk: the 16-bit prepared test evaluated in
/// sign-extended 32-bit lanes (sign extension preserves `i16` order,
/// so the compare domain is unchanged). The XOR happens in the 16-bit
/// domain *before* widening — exactly [`PreparedThreshold::le_bits`].
#[inline]
fn walk_int_portable(nodes: &[HalfIntNode], slabs: &[&[u16]], cursors: &mut [U32x8]) {
    debug_assert_eq!(slabs.len(), cursors.len());
    let mut done = [false; WAVE];
    loop {
        let mut remaining = false;
        for (gi, &slab) in slabs.iter().enumerate() {
            if done[gi] {
                continue;
            }
            let cursor = cursors[gi];
            let mut ff = [0u32; LANES];
            let mut key = [0u32; LANES];
            let mut left = [0u32; LANES];
            let mut right = [0u32; LANES];
            for i in 0..LANES {
                let node = &nodes[cursor.0[i] as usize];
                ff[i] = u32::from(node.feature_and_flip);
                key[i] = node.key as i32 as u32; // sign-extended
                left[i] = u32::from(node.left);
                right[i] = u32::from(node.right);
            }
            let ffv = U32x8(ff);
            let is_leaf = ffv.eq_mask(U32x8::splat(u32::from(LEAF_MARKER_F16)));
            if is_leaf.all_set() {
                done[gi] = true;
                continue;
            }
            remaining = true;
            let mut flip = [0u32; LANES];
            let mut bx = [0u32; LANES];
            for i in 0..LANES {
                let flips = ff[i] & u32::from(FLIP_BIT_F16) != 0;
                flip[i] = if flips { u32::MAX } else { 0 };
                // Leaf lanes read slot 0 (their ff is the all-ones
                // marker); the step is blended away below.
                let f = if ff[i] == u32::from(LEAF_MARKER_F16) {
                    0
                } else {
                    (ff[i] & !u32::from(FLIP_BIT_F16)) as usize
                };
                let x16 = slab[f * LANES + i] ^ if flips { 0x8000 } else { 0 };
                bx[i] = x16 as i16 as i32 as u32; // sign-extended
            }
            let flip = U32x8(flip);
            let key = U32x8(key);
            let bx = U32x8(bx);
            // go right: flip ? key > bx : bx > key (signed) — the
            // negation of PreparedThreshold::le_bits at 16-bit width.
            let go_right = U32x8::blend(flip, key.gt_signed(bx), bx.gt_signed(key));
            let next = U32x8::blend(go_right, U32x8(right), U32x8(left));
            cursors[gi] = U32x8::blend(is_leaf, cursor, next);
        }
        if !remaining {
            break;
        }
    }
}

/// The `std::arch` AVX2 kernels for the 8-byte node formats: one
/// **64-bit gather pair** per level fetches all eight nodes whole
/// (half the gather µops of the f32 kernels' four 32-bit-word
/// gathers), plus one 2-byte-scaled feature gather — the bandwidth
/// halving this module exists for. The float path additionally bulk-
/// quantizes feature slabs with `VCVTPS2PH` ([`convert_lanes`]).
///
/// The heap walks ([`walk_float_heap`]/[`walk_int_heap`]) go further:
/// a tree heapified into 4-byte implicit-child words needs only **one
/// 32-bit node gather** per level — children live at `2p + 1`/`2p + 2`
/// and are reached by shift-add arithmetic instead of a second stored
/// word — cutting the per-level gather count to two (node + feature)
/// against the f32 kernels' five.
///
/// Soundness argument (this island mirrors `simd::avx2`):
///
/// * the entry wrappers assert the required CPU features before
///   entering the `#[target_feature]` functions;
/// * node gathers use scale 8 over the node base with the cursor as
///   the index, and `cursor` only ever holds root (0) or an in-tree
///   child index, so each lane reads exactly one in-bounds 8-byte
///   node (both formats are exactly eight bytes — statically asserted
///   at module top);
/// * heap gathers use scale 4 over a `(1 << (depth + 1)) - 1`-word
///   heap; cursor lanes hold heap positions of real nodes (root 0, or
///   a child slot of a split node at depth `< depth`), and a split
///   node's children `2p + 1`/`2p + 2` always fit because
///   [`super::heapify`] sizes the vector for the full depth;
/// * feature gathers use scale 2 over u16 elements at index
///   `feature * 8 + lane < group_stride`; each 4-byte read therefore
///   ends at byte `2 * (group_stride - 1) + 4` at most, which the
///   one-element slab overhang of [`each_wave_f16`] keeps in bounds;
/// * the F16C slab converter walks equal-length exact chunks of its
///   two slices.
#[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod avx2 {
    use super::{HalfFloatNode, HalfIntNode, U32x8, FLIP_BIT_F16, LEAF_MARKER_F16, WAVE};
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_and_si256, _mm256_andnot_si256, _mm256_blendv_epi8,
        _mm256_castps_si256, _mm256_castsi256_ps, _mm256_castsi256_si128, _mm256_cmp_ps,
        _mm256_cmpeq_epi32, _mm256_cmpgt_epi32, _mm256_cvtph_ps, _mm256_cvtps_ph,
        _mm256_extracti128_si256, _mm256_i32gather_epi32, _mm256_i32gather_epi64,
        _mm256_load_si256, _mm256_loadu_ps, _mm256_movemask_epi8, _mm256_permute4x64_epi64,
        _mm256_set1_epi32, _mm256_setr_epi32, _mm256_shuffle_ps, _mm256_slli_epi32,
        _mm256_srai_epi32, _mm256_srli_epi32, _mm256_store_si256, _mm256_sub_epi32,
        _mm256_xor_si256, _mm_packus_epi32, _mm_storeu_si128, _CMP_LE_OQ,
        _MM_FROUND_TO_NEAREST_INT,
    };

    /// Dispatch-checked entry for the f16 float wave walk (needs AVX2
    /// for the gathers *and* F16C for `vcvtph2ps`; [`super::f16_policy`]
    /// only hands out this path when both are present).
    #[inline]
    pub fn walk_float(nodes: &[HalfFloatNode], slabs: &[&[u16]], cursors: &mut [U32x8]) {
        assert!(
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("f16c"),
            "f16 AVX2 kernel entered without AVX2+F16C support"
        );
        debug_assert!(!nodes.is_empty());
        debug_assert_eq!(slabs.len(), cursors.len());
        // SAFETY: AVX2+F16C verified above; gather bounds per module
        // docs.
        unsafe { walk_float_avx2(nodes, slabs, cursors) }
    }

    /// Dispatch-checked entry for the f16 FLInt wave walk (integer
    /// compares only — AVX2 suffices, no F16C needed).
    #[inline]
    pub fn walk_int(nodes: &[HalfIntNode], slabs: &[&[u16]], cursors: &mut [U32x8]) {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "f16 AVX2 kernel entered without AVX2 support"
        );
        debug_assert!(!nodes.is_empty());
        debug_assert_eq!(slabs.len(), cursors.len());
        // SAFETY: AVX2 verified above; gather bounds per module docs.
        unsafe { walk_int_avx2(nodes, slabs, cursors) }
    }

    /// Dispatch-checked entry for the float wave walk over an
    /// implicit-child heap slab (AVX2 for the gathers, F16C for
    /// `vcvtph2ps`).
    #[inline]
    pub fn walk_float_heap(heap: &[u32], slabs: &[&[u16]], cursors: &mut [U32x8]) {
        assert!(
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("f16c"),
            "f16 AVX2 heap kernel entered without AVX2+F16C support"
        );
        debug_assert!(!heap.is_empty());
        debug_assert_eq!(slabs.len(), cursors.len());
        // SAFETY: AVX2+F16C verified above; gather bounds per module
        // docs.
        unsafe { walk_float_heap_avx2(heap, slabs, cursors) }
    }

    /// Dispatch-checked entry for the FLInt wave walk over an
    /// implicit-child heap slab (integer compares only — AVX2
    /// suffices).
    #[inline]
    pub fn walk_int_heap(heap: &[u32], slabs: &[&[u16]], cursors: &mut [U32x8]) {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "f16 AVX2 heap kernel entered without AVX2 support"
        );
        debug_assert!(!heap.is_empty());
        debug_assert_eq!(slabs.len(), cursors.len());
        // SAFETY: AVX2 verified above; gather bounds per module docs.
        unsafe { walk_int_heap_avx2(heap, slabs, cursors) }
    }

    /// Bulk-quantizes a gathered f32 lane slab into binary16 bit
    /// patterns with `VCVTPS2PH` (round-to-nearest-even) —
    /// bit-identical to the scalar
    /// [`Half::from_f32`](flint_core::half::Half::from_f32) loop in
    /// [`FeatureMatrix::gather_lanes_f16`](flint_data::FeatureMatrix::gather_lanes_f16),
    /// whose NaN payload mapping is pinned to the hardware rule.
    ///
    /// # Panics
    ///
    /// Panics if AVX2+F16C are unavailable, the slices differ in
    /// length, or the length is not a multiple of the lane width.
    #[inline]
    pub fn convert_lanes(src: &[f32], dst: &mut [u16]) {
        assert!(
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("f16c"),
            "f16 conversion kernel entered without AVX2+F16C support"
        );
        assert_eq!(src.len(), dst.len());
        assert_eq!(
            src.len() % 8,
            0,
            "lane slabs are a multiple of the lane width"
        );
        // SAFETY: AVX2+F16C verified above.
        unsafe { convert_lanes_f16c(src, dst) }
    }

    #[target_feature(enable = "avx2,f16c")]
    fn convert_lanes_f16c(src: &[f32], dst: &mut [u16]) {
        const RNE: i32 = _MM_FROUND_TO_NEAREST_INT;
        for (s, d) in src.chunks_exact(8).zip(dst.chunks_exact_mut(8)) {
            // SAFETY: each exact chunk is eight elements, so the
            // 32-byte load and 16-byte store stay inside them.
            unsafe {
                let v = _mm256_loadu_ps(s.as_ptr());
                _mm_storeu_si128(d.as_mut_ptr().cast(), _mm256_cvtps_ph::<RNE>(v));
            }
        }
    }

    /// Packs eight u32 lanes holding u16-range values into the
    /// `__m128i` shape `vcvtph2ps` consumes (packus is exact for
    /// values already in `0..=0xffff`).
    #[inline]
    #[target_feature(enable = "avx2")]
    fn pack_u16(v: __m256i) -> core::arch::x86_64::__m128i {
        _mm_packus_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v))
    }

    /// Fetches all eight 8-byte nodes of a wave group with two 64-bit
    /// gathers (four nodes each from the cursor's 128-bit halves) and
    /// deinterleaves them into the lane-ordered low words
    /// (`feature | payload << 16`) and high words
    /// (`left | right << 16`).
    ///
    /// The shuffle picks the even (resp. odd) dwords of both gathers
    /// — quads `[lo-even, hi-even, lo-odd, hi-odd]` per 128-bit lane —
    /// and the `0xD8` permute (0, 2, 1, 3) restores lane order.
    ///
    /// # Safety
    ///
    /// Every cursor lane must index a node inside `base`'s slice.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn gather_nodes(base: *const i64, cursor: __m256i) -> (__m256i, __m256i) {
        // SAFETY: scale 8 over the node base reads exactly one 8-byte
        // node per lane at the caller-guaranteed in-bounds index.
        let lo = unsafe { _mm256_i32gather_epi64::<8>(base, _mm256_castsi256_si128(cursor)) };
        let hi =
            unsafe { _mm256_i32gather_epi64::<8>(base, _mm256_extracti128_si256::<1>(cursor)) };
        let (lo, hi) = (_mm256_castsi256_ps(lo), _mm256_castsi256_ps(hi));
        let evens = _mm256_castps_si256(_mm256_shuffle_ps::<0b10_00_10_00>(lo, hi));
        let odds = _mm256_castps_si256(_mm256_shuffle_ps::<0b11_01_11_01>(lo, hi));
        (
            _mm256_permute4x64_epi64::<0xD8>(evens),
            _mm256_permute4x64_epi64::<0xD8>(odds),
        )
    }

    #[target_feature(enable = "avx2,f16c")]
    unsafe fn walk_float_avx2(nodes: &[HalfFloatNode], slabs: &[&[u16]], cursors: &mut [U32x8]) {
        let base = nodes.as_ptr().cast::<i64>();
        let low16 = _mm256_set1_epi32(0xffff);
        let leaf = _mm256_set1_epi32(i32::from(LEAF_MARKER_F16));
        let lane_off = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        let mut done = [false; WAVE];
        loop {
            let mut remaining = false;
            for (gi, &slab) in slabs.iter().enumerate() {
                if done[gi] {
                    continue;
                }
                // SAFETY: U32x8 is #[repr(align(32))], so the cursor
                // slot is a valid aligned 32-byte load source.
                let cursor = unsafe { _mm256_load_si256(cursors[gi].0.as_ptr().cast()) };
                // SAFETY: every cursor lane is root (0) or an in-tree
                // child index (per the module soundness argument).
                let (w0, w1) = unsafe { gather_nodes(base, cursor) };
                let feature = _mm256_and_si256(w0, low16);
                let is_leaf = _mm256_cmpeq_epi32(feature, leaf);
                if _mm256_movemask_epi8(is_leaf) == -1 {
                    done[gi] = true;
                    continue;
                }
                remaining = true;
                // word 0 high half: the binary16 threshold bits.
                let t16 = _mm256_srli_epi32::<16>(w0);
                let left = _mm256_and_si256(w1, low16);
                let right = _mm256_srli_epi32::<16>(w1);
                // Leaf lanes gather lane slot 0 (feature clamped by andnot).
                let fsafe = _mm256_andnot_si256(is_leaf, feature);
                let xidx = _mm256_add_epi32(_mm256_slli_epi32::<3>(fsafe), lane_off);
                // SAFETY: xidx = feature*8 + lane < group_stride over
                // u16 elements (scale 2); the 4-byte read at the
                // maximal index ends inside the slab's one-element
                // overhang (per the module soundness argument).
                let xg = unsafe { _mm256_i32gather_epi32::<2>(slab.as_ptr().cast(), xidx) };
                let x16 = _mm256_and_si256(xg, low16);
                // Widen both sides binary16 -> f32 (exact) and compare
                // with LE_OQ: false on NaN, identical to the scalar
                // reference walk.
                let xs = _mm256_cvtph_ps(pack_u16(x16));
                let ts = _mm256_cvtph_ps(pack_u16(t16));
                let go_left = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LE_OQ>(xs, ts));
                let next = _mm256_blendv_epi8(right, left, go_left);
                let next = _mm256_blendv_epi8(next, cursor, is_leaf);
                // SAFETY: same aligned cursor slot as the load above,
                // borrowed mutably — a valid 32-byte store target.
                unsafe { _mm256_store_si256(cursors[gi].0.as_mut_ptr().cast(), next) };
            }
            if !remaining {
                break;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn walk_int_avx2(nodes: &[HalfIntNode], slabs: &[&[u16]], cursors: &mut [U32x8]) {
        let base = nodes.as_ptr().cast::<i64>();
        let low16 = _mm256_set1_epi32(0xffff);
        let leaf = _mm256_set1_epi32(i32::from(LEAF_MARKER_F16));
        let sign16 = _mm256_set1_epi32(i32::from(FLIP_BIT_F16));
        let feat_mask = _mm256_set1_epi32(i32::from(!FLIP_BIT_F16));
        let lane_off = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        let mut done = [false; WAVE];
        loop {
            let mut remaining = false;
            for (gi, &slab) in slabs.iter().enumerate() {
                if done[gi] {
                    continue;
                }
                // SAFETY: U32x8 is #[repr(align(32))], so the cursor
                // slot is a valid aligned 32-byte load source.
                let cursor = unsafe { _mm256_load_si256(cursors[gi].0.as_ptr().cast()) };
                // SAFETY: every cursor lane is root (0) or an in-tree
                // child index (per the module soundness argument).
                let (w0, w1) = unsafe { gather_nodes(base, cursor) };
                let ff = _mm256_and_si256(w0, low16);
                let is_leaf = _mm256_cmpeq_epi32(ff, leaf);
                if _mm256_movemask_epi8(is_leaf) == -1 {
                    done[gi] = true;
                    continue;
                }
                remaining = true;
                // word 0 high half, arithmetic shift: the sign-extended
                // i16 prepared key.
                let key = _mm256_srai_epi32::<16>(w0);
                let left = _mm256_and_si256(w1, low16);
                let right = _mm256_srli_epi32::<16>(w1);
                // Flip mask: broadcast bit 15 of feature_and_flip.
                let flip = _mm256_srai_epi32::<31>(_mm256_slli_epi32::<16>(ff));
                let fsafe = _mm256_andnot_si256(is_leaf, _mm256_and_si256(ff, feat_mask));
                let xidx = _mm256_add_epi32(_mm256_slli_epi32::<3>(fsafe), lane_off);
                // SAFETY: xidx = feature*8 + lane < group_stride over
                // u16 elements (scale 2); the 4-byte read at the
                // maximal index ends inside the slab's one-element
                // overhang (per the module soundness argument).
                let xg = unsafe { _mm256_i32gather_epi32::<2>(slab.as_ptr().cast(), xidx) };
                let x16 = _mm256_and_si256(xg, low16);
                // XOR in the 16-bit domain, then sign-extend — exactly
                // the portable walk's order of operations.
                let bx16 = _mm256_xor_si256(x16, _mm256_and_si256(flip, sign16));
                let bx = _mm256_srai_epi32::<16>(_mm256_slli_epi32::<16>(bx16));
                // go right: flip ? key > bx : bx > key — the negation
                // of PreparedThreshold::le_bits, lane-wise.
                let go_right = _mm256_blendv_epi8(
                    _mm256_cmpgt_epi32(bx, key),
                    _mm256_cmpgt_epi32(key, bx),
                    flip,
                );
                let next = _mm256_blendv_epi8(left, right, go_right);
                let next = _mm256_blendv_epi8(next, cursor, is_leaf);
                // SAFETY: same aligned cursor slot as the load above,
                // borrowed mutably — a valid 32-byte store target.
                unsafe { _mm256_store_si256(cursors[gi].0.as_mut_ptr().cast(), next) };
            }
            if !remaining {
                break;
            }
        }
    }

    #[target_feature(enable = "avx2,f16c")]
    unsafe fn walk_float_heap_avx2(heap: &[u32], slabs: &[&[u16]], cursors: &mut [U32x8]) {
        let base = heap.as_ptr().cast::<i32>();
        let low16 = _mm256_set1_epi32(0xffff);
        let leaf = _mm256_set1_epi32(i32::from(LEAF_MARKER_F16));
        let lane_off = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        let one = _mm256_set1_epi32(1);
        let mut done = [false; WAVE];
        loop {
            let mut remaining = false;
            for (gi, &slab) in slabs.iter().enumerate() {
                if done[gi] {
                    continue;
                }
                // SAFETY: U32x8 is #[repr(align(32))], so the cursor
                // slot is a valid aligned 32-byte load source.
                let cursor = unsafe { _mm256_load_si256(cursors[gi].0.as_ptr().cast()) };
                // SAFETY: every cursor lane is a heap position of a
                // real node — root (0) or a child slot `2p + 1`/`2p + 2`
                // of a split node, which the full-depth heap always
                // allocates (per the module soundness argument) — so
                // each 4-byte gather at scale 4 stays in bounds.
                let w0 = unsafe { _mm256_i32gather_epi32::<4>(base, cursor) };
                let feature = _mm256_and_si256(w0, low16);
                let is_leaf = _mm256_cmpeq_epi32(feature, leaf);
                if _mm256_movemask_epi8(is_leaf) == -1 {
                    done[gi] = true;
                    continue;
                }
                remaining = true;
                // High half of the node word: the binary16 threshold.
                let t16 = _mm256_srli_epi32::<16>(w0);
                // Leaf lanes gather lane slot 0 (feature clamped by andnot).
                let fsafe = _mm256_andnot_si256(is_leaf, feature);
                let xidx = _mm256_add_epi32(_mm256_slli_epi32::<3>(fsafe), lane_off);
                // SAFETY: xidx = feature*8 + lane < group_stride over
                // u16 elements (scale 2); the 4-byte read at the
                // maximal index ends inside the slab's one-element
                // overhang (per the module soundness argument).
                let xg = unsafe { _mm256_i32gather_epi32::<2>(slab.as_ptr().cast(), xidx) };
                let x16 = _mm256_and_si256(xg, low16);
                let xs = _mm256_cvtph_ps(pack_u16(x16));
                let ts = _mm256_cvtph_ps(pack_u16(t16));
                let go_left = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LE_OQ>(xs, ts));
                // Implicit children: left at 2c+1, right one further.
                let lchild = _mm256_add_epi32(_mm256_slli_epi32::<1>(cursor), one);
                let next = _mm256_add_epi32(lchild, _mm256_andnot_si256(go_left, one));
                let next = _mm256_blendv_epi8(next, cursor, is_leaf);
                // SAFETY: same aligned cursor slot as the load above,
                // borrowed mutably — a valid 32-byte store target.
                unsafe { _mm256_store_si256(cursors[gi].0.as_mut_ptr().cast(), next) };
            }
            if !remaining {
                break;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn walk_int_heap_avx2(heap: &[u32], slabs: &[&[u16]], cursors: &mut [U32x8]) {
        let base = heap.as_ptr().cast::<i32>();
        let low16 = _mm256_set1_epi32(0xffff);
        let leaf = _mm256_set1_epi32(i32::from(LEAF_MARKER_F16));
        let sign16 = _mm256_set1_epi32(i32::from(FLIP_BIT_F16));
        let feat_mask = _mm256_set1_epi32(i32::from(!FLIP_BIT_F16));
        let lane_off = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        let one = _mm256_set1_epi32(1);
        let mut done = [false; WAVE];
        loop {
            let mut remaining = false;
            for (gi, &slab) in slabs.iter().enumerate() {
                if done[gi] {
                    continue;
                }
                // SAFETY: U32x8 is #[repr(align(32))], so the cursor
                // slot is a valid aligned 32-byte load source.
                let cursor = unsafe { _mm256_load_si256(cursors[gi].0.as_ptr().cast()) };
                // SAFETY: every cursor lane is a heap position of a
                // real node — root (0) or a child slot `2p + 1`/`2p + 2`
                // of a split node, which the full-depth heap always
                // allocates (per the module soundness argument) — so
                // each 4-byte gather at scale 4 stays in bounds.
                let w0 = unsafe { _mm256_i32gather_epi32::<4>(base, cursor) };
                let ff = _mm256_and_si256(w0, low16);
                let is_leaf = _mm256_cmpeq_epi32(ff, leaf);
                if _mm256_movemask_epi8(is_leaf) == -1 {
                    done[gi] = true;
                    continue;
                }
                remaining = true;
                // High half of the node word, arithmetic shift: the
                // sign-extended i16 prepared key.
                let key = _mm256_srai_epi32::<16>(w0);
                // Flip mask: broadcast bit 15 of feature_and_flip.
                let flip = _mm256_srai_epi32::<31>(_mm256_slli_epi32::<16>(ff));
                let fsafe = _mm256_andnot_si256(is_leaf, _mm256_and_si256(ff, feat_mask));
                let xidx = _mm256_add_epi32(_mm256_slli_epi32::<3>(fsafe), lane_off);
                // SAFETY: xidx = feature*8 + lane < group_stride over
                // u16 elements (scale 2); the 4-byte read at the
                // maximal index ends inside the slab's one-element
                // overhang (per the module soundness argument).
                let xg = unsafe { _mm256_i32gather_epi32::<2>(slab.as_ptr().cast(), xidx) };
                let x16 = _mm256_and_si256(xg, low16);
                // XOR in the 16-bit domain, then sign-extend — exactly
                // the portable walk's order of operations.
                let bx16 = _mm256_xor_si256(x16, _mm256_and_si256(flip, sign16));
                let bx = _mm256_srai_epi32::<16>(_mm256_slli_epi32::<16>(bx16));
                // go right: flip ? key > bx : bx > key — the negation
                // of PreparedThreshold::le_bits, lane-wise.
                let go_right = _mm256_blendv_epi8(
                    _mm256_cmpgt_epi32(bx, key),
                    _mm256_cmpgt_epi32(key, bx),
                    flip,
                );
                // Implicit children: left at 2c+1; subtracting the
                // all-ones go-right mask lands on 2c+2.
                let lchild = _mm256_add_epi32(_mm256_slli_epi32::<1>(cursor), one);
                let next = _mm256_sub_epi32(lchild, go_right);
                let next = _mm256_blendv_epi8(next, cursor, is_leaf);
                // SAFETY: same aligned cursor slot as the load above,
                // borrowed mutably — a valid 32-byte store target.
                unsafe { _mm256_store_si256(cursors[gi].0.as_mut_ptr().cast(), next) };
            }
            if !remaining {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_data::synth::SynthSpec;
    use flint_data::Dataset;
    use flint_forest::{ForestConfig, RandomForest};

    fn setup(compare: HalfCompare) -> (Dataset, HalfForest) {
        let data = SynthSpec::new(230, 5, 3)
            .cluster_std(1.0)
            .negative_fraction(0.5)
            .seed(11)
            .generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(6, 8)).expect("trainable");
        let half = HalfForest::compile(&forest, compare).expect("compiles");
        (data, half)
    }

    #[test]
    fn node_sizes_stay_compact() {
        assert_eq!(core::mem::size_of::<HalfFloatNode>(), 8);
        assert_eq!(core::mem::size_of::<HalfIntNode>(), 8);
    }

    #[test]
    fn lane_walk_matches_the_scalar_f16_reference() {
        for compare in [HalfCompare::Flint, HalfCompare::Float] {
            let (data, half) = setup(compare);
            let want: Vec<u32> = (0..data.n_samples())
                .map(|i| half.predict(data.sample(i)))
                .collect();
            let matrix = FeatureMatrix::from_dataset(&data);
            for block in [1usize, 7, 64, 1024] {
                for threads in [1usize, 4] {
                    let opts = BatchOptions::default()
                        .block_samples(block)
                        .threads(threads);
                    let engine = SimdF16Engine::new(half.clone(), opts);
                    assert_eq!(
                        engine.predict(&matrix),
                        want,
                        "{compare:?} block {block} threads {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn both_compare_families_agree_away_from_thresholds() {
        // The two f16 families quantize identically, so they decide
        // identically on every non-NaN input.
        let (data, flint) = setup(HalfCompare::Flint);
        let (_, float) = setup(HalfCompare::Float);
        for i in 0..data.n_samples() {
            let x = data.sample(i);
            assert_eq!(flint.predict(x), float.predict(x), "sample {i}");
        }
    }

    #[test]
    fn avx2_and_portable_f16_paths_agree() {
        if !crate::simd::avx2_enabled() {
            return; // feature off or CPU without AVX2
        }
        let caps = crate::dispatch::KernelCaps::get();
        for compare in [HalfCompare::Flint, HalfCompare::Float] {
            if matches!(compare, HalfCompare::Float) && !caps.f16c {
                continue; // the float kernel additionally needs F16C
            }
            let (data, half) = setup(compare);
            let matrix = FeatureMatrix::from_dataset(&data);
            let engine = SimdF16Engine::new(half, BatchOptions::default().block_samples(13));
            let accelerated = engine
                .clone()
                .with_kernel(KernelPath::Avx2)
                .predict(&matrix);
            let portable = engine.with_kernel(KernelPath::Portable).predict(&matrix);
            assert_eq!(accelerated, portable, "{compare:?}");
        }
    }

    #[test]
    fn empty_batch_and_wrong_width() {
        let (_, half) = setup(HalfCompare::Flint);
        let empty = FeatureMatrix::from_row_major(0, half.n_features(), &[]);
        let engine = SimdF16Engine::new(half, BatchOptions::default().threads(3));
        assert_eq!(engine.predict(&empty), Vec::<u32>::new());
    }

    #[test]
    #[should_panic(expected = "feature matrix width")]
    fn wrong_width_panics() {
        let (_, half) = setup(HalfCompare::Flint);
        let bad = FeatureMatrix::from_row_major(1, 2, &[0.0, 0.0]);
        let _ = SimdF16Engine::new(half, BatchOptions::default()).predict(&bad);
    }

    #[test]
    fn quantization_drift_is_small_on_realistic_data() {
        // The f16 engines may legitimately flip samples within half an
        // f16 ULP of a split; on well-separated clusters that must
        // stay a small minority of decisions.
        let (data, half) = setup(HalfCompare::Flint);
        let forest = RandomForest::fit(&data, &ForestConfig::grid(6, 8)).expect("trainable");
        let drift = (0..data.n_samples())
            .filter(|&i| half.predict(data.sample(i)) != forest.predict_majority(data.sample(i)))
            .count();
        assert!(
            drift * 50 <= data.n_samples(),
            "f16 drift {drift}/{} exceeds 2%",
            data.n_samples()
        );
    }
}
