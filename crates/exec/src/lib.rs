//! # flint-exec — random forest inference backends
//!
//! The paper's evaluation measures four configurations (Fig. 3):
//! standard if-else trees ("Naive"), cache-aware CAGS trees, FLInt
//! trees, and CAGS+FLInt trees. This crate compiles a trained
//! [`flint_forest::RandomForest`] into flat, layout-ordered node arrays
//! for each configuration and executes them:
//!
//! * [`compile::FloatTree`] / [`compile::IntNode`] — the 16-byte node
//!   formats (float threshold vs FLInt-prepared integer key + flip bit);
//! * [`backend::CompiledForest`] — the forest-level backends with
//!   majority-vote aggregation, identical across configurations so the
//!   "accuracy unchanged" claim is testable bit-for-bit;
//! * a software float backend as the no-FPU motivational baseline;
//! * [`batch::BatchEngine`] — throughput-oriented batch inference over
//!   a structure-of-arrays `FeatureMatrix`: tree-block × sample-block
//!   interleaved traversal, reusable per-worker scratch buffers, and
//!   scoped-thread data parallelism over sample blocks. Predictions
//!   are bit-identical to the scalar path for every [`BackendKind`];
//! * [`simd::SimdEngine`] — the 8-wide lane-parallel traversal:
//!   samples descend each tree in lane groups through branchless
//!   compare/blend steps ([`simd::F32x8`]/[`simd::U32x8`] portable
//!   vectors, plus `std::arch` AVX2 kernels behind the `simd-avx2`
//!   feature and NEON kernels on aarch64). Ragged tails read
//!   zero-padded lanes from [`flint_data::FeatureMatrix::gather_lanes`]
//!   instead of branching;
//! * [`dispatch`] — the unified kernel-dispatch layer: host
//!   capabilities ([`dispatch::KernelCaps`]) probed once per process,
//!   a per-engine-family [`dispatch::KernelPolicy`], the
//!   `FLINT_KERNEL` environment override, and a recorded
//!   [`dispatch::KernelPath`] that every dispatch-aware engine reports
//!   through [`engine::Predictor::describe`];
//! * [`mod@f16`] — half-precision node slabs: forests re-compiled with
//!   `f16` thresholds ([`flint_core::half::Half`], monotone
//!   round-to-nearest-even) into 8-byte nodes, walked by the
//!   `simd-f16`/`simd-f16-float` lane engines that move half the node
//!   bytes per wave. Quantization legitimately changes decisions near
//!   thresholds, so these engines form their own comparison family,
//!   pinned to their scalar f16 walk rather than the f32 majority
//!   vote;
//! * [`jit::TieredJit`] — the in-process template JIT: the same tree
//!   programs the VM interprets, emitted as x86-64 machine code into
//!   `mmap`'d W^X pages (`jit-x86` feature, x86-64 Linux) and called
//!   directly. Cold forests interpret; a forest compiles on first hot
//!   use; unsupported platforms fall back to the interpreter
//!   bit-identically;
//! * [`engine`] — the unified engine layer: the [`Predictor`] trait
//!   over **every** prediction path in the workspace (scalar and
//!   blocked if-else backends, the SIMD lane engine, QuickScorer, the
//!   codegen VM, the template JIT) plus the [`EngineKind`] registry and
//!   [`EngineBuilder`]. Consumers — CLI, benches, examples,
//!   differential tests — select engines by name from one registry
//!   instead of hand-wiring five APIs:
//!
//!   ```
//!   use flint_data::{synth::SynthSpec, FeatureMatrix};
//!   use flint_exec::{EngineBuilder, EngineKind};
//!   use flint_forest::{ForestConfig, RandomForest};
//!
//!   # fn main() -> Result<(), Box<dyn std::error::Error>> {
//!   let data = SynthSpec::new(100, 3, 2).generate();
//!   let forest = RandomForest::fit(&data, &ForestConfig::grid(3, 5))?;
//!   let engine = EngineBuilder::new(&forest)
//!       .build(EngineKind::parse("quickscorer").expect("registered"))?;
//!   let labels = engine.predict_matrix(&FeatureMatrix::from_dataset(&data));
//!   assert_eq!(labels, forest.predict_dataset_majority(&data));
//!   # Ok(())
//!   # }
//!   ```
//!
//! ```
//! use flint_data::synth::SynthSpec;
//! use flint_exec::{BackendKind, CompiledForest};
//! use flint_forest::{ForestConfig, RandomForest};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = SynthSpec::new(100, 3, 2).generate();
//! let forest = RandomForest::fit(&data, &ForestConfig::grid(3, 5))?;
//! let backend = CompiledForest::compile(&forest, BackendKind::Flint, None)?;
//! let class = backend.predict(data.sample(0));
//! assert!(class < 2);
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]
// The two unsafe islands (AVX2 kernels, JIT executable memory) opt in
// with `#[allow(unsafe_code)]`; inside them, every unsafe operation
// must still sit in an explicit `unsafe {}` block with its own SAFETY
// comment — an `unsafe fn` signature alone discharges nothing.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod backend;
pub mod batch;
pub mod compile;
pub mod compile64;
pub mod dispatch;
pub mod engine;
pub mod f16;
pub mod jit;
pub mod simd;

pub use backend::{BackendKind, CompareMode, CompiledForest};
pub use batch::{BatchEngine, BatchOptions};
pub use compile::{CompileTreeError, FloatNode, FloatTree, IntNode, IntTree};
pub use compile64::{FloatNode64, FloatTree64, IntNode64, IntTree64};
pub use dispatch::{KernelCaps, KernelPath, KernelPolicy, KERNEL_ENV};
pub use engine::{BuildEngineError, EngineBuilder, EngineKind, ParseEngineKindError, Predictor};
pub use f16::{f16_policy, HalfCompare, HalfForest, SimdF16Engine};
pub use jit::{
    jit_supported, EmittedCode, JitCompare, JitError, JitForest, JitTier, TieredJit,
    DEFAULT_HOT_AFTER, FORCE_FALLBACK_ENV,
};
pub use simd::{avx2_enabled, lane_policy, SimdCompare, SimdEngine, LANES};
