//! Batched, multi-threaded forest inference.
//!
//! The scalar path ([`CompiledForest::predict`]) walks every tree for
//! one sample, allocating a fresh vote vector per call; over a dataset
//! that means the whole forest's node arrays are streamed through the
//! cache once **per sample**. This module inverts the loop structure:
//!
//! * **sample blocking** — samples are processed in blocks (default
//!   64); a block is transposed out of the structure-of-arrays
//!   [`FeatureMatrix`] into a row-major scratch that stays resident in
//!   L1/L2 while every tree traverses it;
//! * **tree blocking** — trees are visited in small groups per sample
//!   block, so each tree's flat node array is loaded once per block of
//!   samples instead of once per sample;
//! * **scratch reuse** — the per-block row buffer and the vote
//!   accumulator are allocated once per worker and reused across
//!   blocks, removing every per-sample allocation;
//! * **data parallelism** — sample blocks are distributed over
//!   [`std::thread::scope`] workers (no runtime dependency, no unsafe
//!   code); each worker writes a disjoint span of the output, so
//!   results are deterministic regardless of scheduling.
//!
//! Votes, tie-breaking and traversal order per tree are byte-identical
//! to the scalar path, so predictions are **bit-identical** for every
//! [`BackendKind`](crate::BackendKind) — asserted by `tests/batch.rs`
//! across block sizes and thread counts.
//!
//! ```
//! use flint_data::{synth::SynthSpec, FeatureMatrix};
//! use flint_exec::{BackendKind, BatchEngine, BatchOptions, CompiledForest};
//! use flint_forest::{ForestConfig, RandomForest};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = SynthSpec::new(200, 4, 3).generate();
//! let forest = RandomForest::fit(&data, &ForestConfig::grid(5, 7))?;
//! let backend = CompiledForest::compile(&forest, BackendKind::Flint, None)?;
//!
//! let matrix = FeatureMatrix::from_dataset(&data);
//! let engine = BatchEngine::new(&backend, BatchOptions::default().threads(2));
//! assert_eq!(engine.predict(&matrix), backend.predict_dataset(&data));
//! # Ok(())
//! # }
//! ```

use crate::backend::{CompiledForest, Trees};
use crate::compile::{FloatNode, IntNode, FLIP_BIT, LEAF_MARKER};
use flint_core::FloatBits;
use flint_data::{Dataset, FeatureMatrix};

/// Tuning knobs for the batch engine. All values are clamped to at
/// least 1 when used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOptions {
    /// Samples per block (the unit of cache blocking and of thread
    /// work distribution).
    pub block_samples: usize,
    /// Trees per inner block.
    pub block_trees: usize,
    /// Worker threads. `1` runs inline on the calling thread.
    pub threads: usize,
}

impl Default for BatchOptions {
    /// 64-sample × 8-tree blocks, single-threaded.
    fn default() -> Self {
        Self {
            block_samples: 64,
            block_trees: 8,
            threads: 1,
        }
    }
}

impl BatchOptions {
    /// Sets the sample block size.
    #[must_use]
    pub fn block_samples(mut self, n: usize) -> Self {
        self.block_samples = n;
        self
    }

    /// Sets the tree block size.
    #[must_use]
    pub fn block_trees(mut self, n: usize) -> Self {
        self.block_trees = n;
        self
    }

    /// Sets the worker thread count.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }
}

/// Per-worker scratch: one transposed sample block, one flat vote
/// accumulator and the interleaved-traversal cursors, allocated once
/// and reused for every block the worker scores.
#[derive(Debug)]
struct BlockScratch {
    /// Row-major block: `block_samples * n_features`.
    rows: Vec<f32>,
    /// Flat votes: `block_samples * n_classes`.
    votes: Vec<u32>,
    /// Current node position per in-flight sample.
    cursor: Vec<u32>,
    /// Samples still traversing the current tree.
    active: Vec<u32>,
}

impl BlockScratch {
    fn new(block_samples: usize, n_features: usize, n_classes: usize) -> Self {
        Self {
            rows: vec![0.0; block_samples * n_features],
            votes: vec![0; block_samples * n_classes],
            cursor: vec![0; block_samples],
            active: Vec::with_capacity(block_samples),
        }
    }
}

/// A compiled forest bound to batch-execution options.
///
/// The engine borrows the forest; compile once, then score any number
/// of [`FeatureMatrix`] batches through it.
#[derive(Debug, Clone, Copy)]
pub struct BatchEngine<'f> {
    forest: &'f CompiledForest,
    opts: BatchOptions,
}

impl<'f> BatchEngine<'f> {
    /// Binds `forest` to the given options.
    pub fn new(forest: &'f CompiledForest, opts: BatchOptions) -> Self {
        Self { forest, opts }
    }

    /// The bound options (clamping applied at use, not here).
    pub fn options(&self) -> BatchOptions {
        self.opts
    }

    /// Scores every sample of `matrix`, returning one class per sample.
    ///
    /// Bit-identical to calling [`CompiledForest::predict`] per row.
    ///
    /// # Panics
    ///
    /// Panics if `matrix.n_features()` differs from the model's.
    pub fn predict(&self, matrix: &FeatureMatrix) -> Vec<u32> {
        assert_eq!(
            matrix.n_features(),
            self.forest.n_features(),
            "feature matrix width"
        );
        let mut out = vec![0u32; matrix.n_samples()];
        score_spans(&self.opts, &mut out, |start, span| {
            self.score_span(matrix, start, span)
        });
        out
    }

    /// Scores samples `start..start + out.len()` into `out`.
    fn score_span(&self, matrix: &FeatureMatrix, start: usize, out: &mut [u32]) {
        let block = self.opts.block_samples.max(1);
        let n_features = self.forest.n_features();
        let n_classes = self.forest.n_classes();
        let mut scratch = BlockScratch::new(block.min(out.len()), n_features, n_classes);
        let mut offset = 0;
        while offset < out.len() {
            let len = block.min(out.len() - offset);
            self.score_block(
                matrix,
                start + offset,
                len,
                &mut scratch,
                &mut out[offset..offset + len],
            );
            offset += len;
        }
    }

    /// Scores one sample block through every tree of the forest.
    fn score_block(
        &self,
        matrix: &FeatureMatrix,
        start: usize,
        len: usize,
        scratch: &mut BlockScratch,
        out: &mut [u32],
    ) {
        let n_features = self.forest.n_features();
        let n_classes = self.forest.n_classes();
        let block_trees = self.opts.block_trees.max(1);
        let rows = &mut scratch.rows[..len * n_features];
        matrix.gather_block(start, len, rows);
        let votes = &mut scratch.votes[..len * n_classes];
        votes.fill(0);
        // Tree-major within the block: each tree's node array stays hot
        // while it traverses all `len` resident samples, and the
        // interleaved walk below keeps `len` independent load chains in
        // flight instead of one.
        match self.forest.trees() {
            Trees::Float(trees) => {
                for group in trees.chunks(block_trees) {
                    for tree in group {
                        walk_float_interleaved(
                            tree.nodes(),
                            rows,
                            n_features,
                            n_classes,
                            votes,
                            &mut scratch.cursor,
                            &mut scratch.active,
                            |x, threshold| x <= threshold,
                        );
                    }
                }
            }
            Trees::Soft(trees) => {
                for group in trees.chunks(block_trees) {
                    for tree in group {
                        walk_float_interleaved(
                            tree.nodes(),
                            rows,
                            n_features,
                            n_classes,
                            votes,
                            &mut scratch.cursor,
                            &mut scratch.active,
                            flint_softfloat::soft_le,
                        );
                    }
                }
            }
            Trees::Int(trees) => {
                for group in trees.chunks(block_trees) {
                    for tree in group {
                        walk_int_interleaved(
                            tree.nodes(),
                            rows,
                            n_features,
                            n_classes,
                            votes,
                            &mut scratch.cursor,
                            &mut scratch.active,
                        );
                    }
                }
            }
        }
        for (k, slot) in out.iter_mut().enumerate() {
            *slot =
                flint_forest::metrics::majority_vote(&votes[k * n_classes..(k + 1) * n_classes]);
        }
    }
}

/// Splits `out` into contiguous spans of whole sample blocks and runs
/// `score(start, span)` on each — inline when one worker suffices,
/// otherwise over [`std::thread::scope`] workers. Every span is
/// disjoint, so workers never share output cells and results are
/// deterministic regardless of scheduling.
///
/// This is the one span-partitioning implementation in the crate: the
/// engine layer's row-wise adapters reuse it, so every registered
/// engine parallelizes over identical boundaries by construction.
pub(crate) fn score_spans(
    opts: &BatchOptions,
    out: &mut [u32],
    score: impl Fn(usize, &mut [u32]) + Sync,
) {
    let n = out.len();
    if n == 0 {
        return;
    }
    let block = opts.block_samples.max(1);
    let threads = opts.threads.max(1).min(n.div_ceil(block));
    if threads == 1 {
        score(0, out);
    } else {
        let span = n.div_ceil(block).div_ceil(threads) * block;
        std::thread::scope(|scope| {
            for (w, chunk) in out.chunks_mut(span).enumerate() {
                let score = &score;
                scope.spawn(move || score(w * span, chunk));
            }
        });
    }
}

/// Walks every sample of the block down one float-comparison tree
/// simultaneously: each round advances all still-traversing samples one
/// level, so up to `block` independent node loads are in flight at
/// once (memory-level parallelism the one-sample-at-a-time loop cannot
/// express). Samples that reach a leaf vote and drop out of the active
/// list. Identical decisions to [`crate::compile::FloatTree::predict`],
/// so vote counts — and therefore predictions — cannot diverge.
#[allow(clippy::too_many_arguments)]
#[inline]
fn walk_float_interleaved(
    nodes: &[FloatNode],
    rows: &[f32],
    n_features: usize,
    n_classes: usize,
    votes: &mut [u32],
    cursor: &mut [u32],
    active: &mut Vec<u32>,
    le: impl Fn(f32, f32) -> bool,
) {
    let len = votes.len() / n_classes.max(1);
    active.clear();
    active.extend(0..len as u32);
    for slot in cursor[..len].iter_mut() {
        *slot = 0;
    }
    while !active.is_empty() {
        let mut kept = 0;
        for r in 0..active.len() {
            let k = active[r] as usize;
            let node = &nodes[cursor[k] as usize];
            if node.feature == LEAF_MARKER {
                votes[k * n_classes + node.left as usize] += 1;
            } else {
                let x = rows[k * n_features + node.feature as usize];
                cursor[k] = if le(x, node.threshold) {
                    node.left
                } else {
                    node.right
                };
                active[kept] = k as u32;
                kept += 1;
            }
        }
        active.truncate(kept);
    }
}

/// The FLInt counterpart of [`walk_float_interleaved`]: the per-node
/// test is the offline-resolved integer comparison of
/// [`crate::compile::IntTree::predict`] (optional sign-bit XOR plus one
/// signed compare), applied to a whole block of in-flight samples.
#[inline]
fn walk_int_interleaved(
    nodes: &[IntNode],
    rows: &[f32],
    n_features: usize,
    n_classes: usize,
    votes: &mut [u32],
    cursor: &mut [u32],
    active: &mut Vec<u32>,
) {
    let len = votes.len() / n_classes.max(1);
    active.clear();
    active.extend(0..len as u32);
    for slot in cursor[..len].iter_mut() {
        *slot = 0;
    }
    while !active.is_empty() {
        let mut kept = 0;
        for r in 0..active.len() {
            let k = active[r] as usize;
            let node = &nodes[cursor[k] as usize];
            if node.feature_and_flip == LEAF_MARKER {
                votes[k * n_classes + node.left as usize] += 1;
            } else {
                let feature = (node.feature_and_flip & !FLIP_BIT) as usize;
                let bits = rows[k * n_features + feature].to_signed_bits();
                let go_left = if node.feature_and_flip & FLIP_BIT != 0 {
                    node.key <= (bits ^ i32::MIN)
                } else {
                    bits <= node.key
                };
                cursor[k] = if go_left { node.left } else { node.right };
                active[kept] = k as u32;
                kept += 1;
            }
        }
        active.truncate(kept);
    }
}

impl CompiledForest {
    /// Batch prediction over a dataset through the blocked,
    /// optionally multi-threaded engine. Convenience wrapper that
    /// transposes `data` and runs [`BatchEngine::predict`];
    /// bit-identical to [`CompiledForest::predict_dataset`].
    ///
    /// # Panics
    ///
    /// Panics if the dataset's feature count differs from the model's.
    pub fn predict_dataset_batched(&self, data: &Dataset, opts: BatchOptions) -> Vec<u32> {
        let matrix = FeatureMatrix::from_dataset(data);
        BatchEngine::new(self, opts).predict(&matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use flint_data::synth::SynthSpec;
    use flint_forest::{ForestConfig, RandomForest};

    fn setup() -> (Dataset, CompiledForest) {
        let data = SynthSpec::new(230, 5, 3)
            .cluster_std(1.0)
            .negative_fraction(0.5)
            .seed(11)
            .generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(6, 8)).expect("trainable");
        let backend = CompiledForest::compile(&forest, BackendKind::Flint, None).expect("compiles");
        (data, backend)
    }

    #[test]
    fn engine_matches_scalar_loop() {
        let (data, backend) = setup();
        let want = backend.predict_dataset(&data);
        let matrix = FeatureMatrix::from_dataset(&data);
        for block in [1usize, 7, 64, 1024] {
            for threads in [1usize, 4] {
                let opts = BatchOptions::default()
                    .block_samples(block)
                    .threads(threads);
                let engine = BatchEngine::new(&backend, opts);
                assert_eq!(
                    engine.predict(&matrix),
                    want,
                    "block {block} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn dataset_wrapper_matches() {
        let (data, backend) = setup();
        assert_eq!(
            backend.predict_dataset_batched(&data, BatchOptions::default()),
            backend.predict_dataset(&data),
        );
    }

    #[test]
    fn zero_and_degenerate_options_are_clamped() {
        let (data, backend) = setup();
        let want = backend.predict_dataset(&data);
        let opts = BatchOptions::default()
            .block_samples(0)
            .block_trees(0)
            .threads(0);
        assert_eq!(backend.predict_dataset_batched(&data, opts), want);
    }

    #[test]
    fn empty_batch_is_empty() {
        let (_, backend) = setup();
        let empty = FeatureMatrix::from_row_major(0, backend.n_features(), &[]);
        let engine = BatchEngine::new(&backend, BatchOptions::default().threads(3));
        assert_eq!(engine.predict(&empty), Vec::<u32>::new());
    }

    #[test]
    #[should_panic(expected = "feature matrix width")]
    fn wrong_width_panics() {
        let (_, backend) = setup();
        let bad = FeatureMatrix::from_row_major(1, 2, &[0.0, 0.0]);
        let _ = BatchEngine::new(&backend, BatchOptions::default()).predict(&bad);
    }
}
