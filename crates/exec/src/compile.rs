//! Compilation of arena trees into flat, layout-ordered node arrays.
//!
//! This is the runtime analog of arch-forest's code generation step:
//! every tree becomes a dense array of 16-byte nodes placed in the
//! order a [`TreeLayout`] dictates, with child pointers remapped to
//! positions in that order. The comparison mode decides what each node
//! stores:
//!
//! * [`FloatNode`] — the split value as `f32`; the runtime test is the
//!   native float `<=` (the paper's naive/CAGS configurations);
//! * [`IntNode`] — the split value preprocessed by
//!   [`flint_core::PreparedThreshold`] into an integer key plus a
//!   sign-flip bit (Theorem 2 resolved offline); the runtime test is a
//!   signed integer comparison, optionally preceded by one XOR (the
//!   paper's FLInt configurations).

use flint_core::{FloatBits, PreparedThreshold};
use flint_forest::{DecisionTree, Node, NodeId};
use flint_layout::TreeLayout;

/// Marker stored in the `feature` word of leaf nodes.
pub const LEAF_MARKER: u32 = u32::MAX;

/// Bit flagging "flip the feature's sign bit before comparing" in
/// [`IntNode::feature_and_flip`]. Real feature indices must stay below
/// this bit, which any practical model satisfies.
pub const FLIP_BIT: u32 = 1 << 31;

/// A flat node with a native float threshold (naive configurations).
///
/// `repr(C)`: the SIMD engine's AVX2 path gathers fields by 32-bit
/// word offset (`feature` at word 0, `threshold` at 1, `left` at 2,
/// `right` at 3), so the layout must be the declaration order.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C)]
pub struct FloatNode {
    /// Feature index, or [`LEAF_MARKER`] for leaves.
    pub feature: u32,
    /// Split value (unused for leaves).
    pub threshold: f32,
    /// Flat position of the left child; for leaves, the class.
    pub left: u32,
    /// Flat position of the right child (unused for leaves).
    pub right: u32,
}

/// A flat node with the FLInt-prepared integer threshold.
///
/// `repr(C)` for the same reason as [`FloatNode`]: the SIMD engine
/// gathers `feature_and_flip`/`key`/`left`/`right` by word offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct IntNode {
    /// Feature index with [`FLIP_BIT`] possibly set, or [`LEAF_MARKER`]
    /// for leaves.
    pub feature_and_flip: u32,
    /// The prepared integer immediate ([`PreparedThreshold::key`]).
    pub key: i32,
    /// Flat position of the left child; for leaves, the class.
    pub left: u32,
    /// Flat position of the right child (unused for leaves).
    pub right: u32,
}

/// A tree compiled to a flat float-comparison array.
#[derive(Debug, Clone, PartialEq)]
pub struct FloatTree {
    nodes: Vec<FloatNode>,
}

/// A tree compiled to a flat FLInt integer-comparison array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntTree {
    nodes: Vec<IntNode>,
}

/// Error compiling a tree.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileTreeError {
    /// A split value was NaN (cannot be FLInt-prepared; also rejected
    /// by tree validation, so this is defensive).
    NanThreshold {
        /// The offending node.
        node: NodeId,
    },
    /// A feature index collides with the flip bit encoding.
    FeatureTooLarge {
        /// The offending node.
        node: NodeId,
    },
    /// A node position or leaf class does not fit a 16-bit field of
    /// the half-precision node encoding ([`crate::f16`] trees must
    /// stay under 65 535 nodes).
    IndexOverflow {
        /// The offending node.
        node: NodeId,
    },
}

impl core::fmt::Display for CompileTreeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NanThreshold { node } => write!(f, "node {node} has a NaN split value"),
            Self::FeatureTooLarge { node } => {
                write!(
                    f,
                    "node {node} has a feature index colliding with the flip bit"
                )
            }
            Self::IndexOverflow { node } => {
                write!(
                    f,
                    "node {node} does not fit the 16-bit half-precision node encoding"
                )
            }
        }
    }
}

impl std::error::Error for CompileTreeError {}

impl FloatTree {
    /// Compiles `tree` in the order given by `layout`.
    ///
    /// # Panics
    ///
    /// Panics if `layout` does not cover `tree`.
    pub fn compile(tree: &DecisionTree, layout: &TreeLayout) -> Self {
        assert_eq!(layout.len(), tree.n_nodes(), "layout must cover the tree");
        let nodes = (0..layout.len())
            .map(|k| {
                let id = layout.node_at(k);
                match &tree.nodes()[id.index()] {
                    Node::Leaf { class, .. } => FloatNode {
                        feature: LEAF_MARKER,
                        threshold: 0.0,
                        left: *class,
                        right: 0,
                    },
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => FloatNode {
                        feature: *feature,
                        threshold: *threshold,
                        left: layout.position_of(*left),
                        right: layout.position_of(*right),
                    },
                }
            })
            .collect();
        Self { nodes }
    }

    /// Predicts the class of `features` with native float comparisons.
    #[inline]
    pub fn predict(&self, features: &[f32]) -> u32 {
        let mut idx = 0u32;
        loop {
            let node = &self.nodes[idx as usize];
            if node.feature == LEAF_MARKER {
                return node.left;
            }
            idx = if features[node.feature as usize] <= node.threshold {
                node.left
            } else {
                node.right
            };
        }
    }

    /// Predicts with *software float* comparisons (the no-FPU baseline;
    /// same decisions, much more per-node work).
    #[inline]
    pub fn predict_softfloat(&self, features: &[f32]) -> u32 {
        let mut idx = 0u32;
        loop {
            let node = &self.nodes[idx as usize];
            if node.feature == LEAF_MARKER {
                return node.left;
            }
            idx = if flint_softfloat::soft_le(features[node.feature as usize], node.threshold) {
                node.left
            } else {
                node.right
            };
        }
    }

    /// The flat node array.
    pub fn nodes(&self) -> &[FloatNode] {
        &self.nodes
    }
}

impl IntTree {
    /// Compiles `tree` in the order given by `layout`, resolving every
    /// threshold offline per Theorem 2.
    ///
    /// # Errors
    ///
    /// [`CompileTreeError::NanThreshold`] for NaN split values,
    /// [`CompileTreeError::FeatureTooLarge`] if a feature index would
    /// collide with the flip-bit encoding.
    ///
    /// # Panics
    ///
    /// Panics if `layout` does not cover `tree`.
    pub fn compile(tree: &DecisionTree, layout: &TreeLayout) -> Result<Self, CompileTreeError> {
        assert_eq!(layout.len(), tree.n_nodes(), "layout must cover the tree");
        let mut nodes = Vec::with_capacity(layout.len());
        for k in 0..layout.len() {
            let id = layout.node_at(k);
            let node = match &tree.nodes()[id.index()] {
                Node::Leaf { class, .. } => IntNode {
                    feature_and_flip: LEAF_MARKER,
                    key: 0,
                    left: *class,
                    right: 0,
                },
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    if feature & FLIP_BIT != 0 {
                        return Err(CompileTreeError::FeatureTooLarge { node: id });
                    }
                    let prepared = PreparedThreshold::new(*threshold)
                        .map_err(|_| CompileTreeError::NanThreshold { node: id })?;
                    let flip = if prepared.flips_sign() { FLIP_BIT } else { 0 };
                    IntNode {
                        feature_and_flip: feature | flip,
                        key: prepared.key(),
                        left: layout.position_of(*left),
                        right: layout.position_of(*right),
                    }
                }
            };
            nodes.push(node);
        }
        Ok(Self { nodes })
    }

    /// Predicts the class of `features` using integer comparisons only.
    ///
    /// Per node: one leaf check, one bit-pattern load, at most one XOR
    /// and exactly one signed integer comparison — the runtime shape of
    /// Listings 2 and 4.
    #[inline]
    pub fn predict(&self, features: &[f32]) -> u32 {
        let mut idx = 0u32;
        loop {
            let node = &self.nodes[idx as usize];
            if node.feature_and_flip == LEAF_MARKER {
                return node.left;
            }
            let feature = (node.feature_and_flip & !FLIP_BIT) as usize;
            let bits = features[feature].to_signed_bits();
            let go_left = if node.feature_and_flip & FLIP_BIT != 0 {
                node.key <= (bits ^ i32::MIN)
            } else {
                bits <= node.key
            };
            idx = if go_left { node.left } else { node.right };
        }
    }

    /// The flat node array.
    pub fn nodes(&self) -> &[IntNode] {
        &self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_forest::example_tree;
    use flint_layout::{LayoutStrategy, TreeProfile};

    fn layouts(tree: &DecisionTree) -> Vec<TreeLayout> {
        let profile = TreeProfile::uniform(tree);
        [
            LayoutStrategy::ArenaOrder,
            LayoutStrategy::BreadthFirst,
            LayoutStrategy::HotPathDfs,
            LayoutStrategy::Cags { block_nodes: 2 },
        ]
        .iter()
        .map(|&s| TreeLayout::compute(tree, &profile, s))
        .collect()
    }

    #[test]
    fn float_tree_matches_reference_under_all_layouts() {
        let tree = example_tree();
        let inputs = [
            [0.0f32, -2.0],
            [0.0, 0.0],
            [1.0, 0.0],
            [0.5, -1.25],
            [-3.0, 7.0],
        ];
        for layout in layouts(&tree) {
            let compiled = FloatTree::compile(&tree, &layout);
            for input in &inputs {
                assert_eq!(compiled.predict(input), tree.predict(input));
                assert_eq!(compiled.predict_softfloat(input), tree.predict(input));
            }
        }
    }

    #[test]
    fn int_tree_matches_reference_under_all_layouts() {
        let tree = example_tree();
        let inputs = [
            [0.0f32, -2.0],
            [0.0, 0.0],
            [1.0, 0.0],
            [0.5, -1.25],
            [-3.0, 7.0],
            [0.5, -0.0],
        ];
        for layout in layouts(&tree) {
            let compiled = IntTree::compile(&tree, &layout).expect("compilable");
            for input in &inputs {
                assert_eq!(compiled.predict(input), tree.predict(input), "{input:?}");
            }
        }
    }

    #[test]
    fn negative_thresholds_set_flip_bit() {
        let tree = example_tree(); // has threshold -1.25
        let profile = TreeProfile::uniform(&tree);
        let layout = TreeLayout::compute(&tree, &profile, LayoutStrategy::ArenaOrder);
        let compiled = IntTree::compile(&tree, &layout).expect("compilable");
        let flips: Vec<bool> = compiled
            .nodes()
            .iter()
            .filter(|n| n.feature_and_flip != LEAF_MARKER)
            .map(|n| n.feature_and_flip & FLIP_BIT != 0)
            .collect();
        assert_eq!(flips, vec![false, true]); // 0.5 direct, -1.25 flipped
    }

    #[test]
    fn node_sizes_stay_compact() {
        // The paper's point about memory layout only holds if nodes are
        // actually dense: both node types must stay 16 bytes.
        assert_eq!(core::mem::size_of::<FloatNode>(), 16);
        assert_eq!(core::mem::size_of::<IntNode>(), 16);
    }

    #[test]
    fn leaf_positions_encode_classes() {
        let tree = example_tree();
        let profile = TreeProfile::uniform(&tree);
        let layout = TreeLayout::compute(&tree, &profile, LayoutStrategy::ArenaOrder);
        let compiled = FloatTree::compile(&tree, &layout);
        let leaf_classes: Vec<u32> = compiled
            .nodes()
            .iter()
            .filter(|n| n.feature == LEAF_MARKER)
            .map(|n| n.left)
            .collect();
        assert_eq!(leaf_classes, vec![2, 0, 1]); // arena order of example_tree
    }
}
