//! 8-wide SIMD lane-parallel forest traversal.
//!
//! The blocked walk in [`crate::batch`] already keeps a block of
//! independent per-sample load chains in flight, but every
//! node-compare/child-select step is still scalar control flow: one
//! branchy `if le { left } else { right }` per sample per level. This
//! module lifts that step onto explicit 8-wide lanes:
//!
//! * [`F32x8`] / [`U32x8`] — fixed 8-lane vectors over `[f32; 8]` /
//!   `[u32; 8]`, written as plain lane loops that stable Rust
//!   autovectorizes reliably (no nightly `std::simd`), plus an
//!   `std::arch` AVX2 kernel behind the `simd-avx2` feature gate with
//!   runtime CPUID dispatch ([`avx2_enabled`]);
//! * **branchless select** — a lane group of 8 samples descends one
//!   tree together; each level gathers the 8 current nodes, compares
//!   all lanes at once and blends left/right child indices by mask.
//!   Lanes that reach a leaf hold position (a leaf blends to itself)
//!   until the whole group has landed, so the walk has **no per-lane
//!   branches at all** — the single loop exit is "all lanes at
//!   leaves";
//! * **padded gathers** — sample blocks come out of
//!   [`FeatureMatrix::gather_lanes`] as feature-major, zero-padded
//!   lane slabs, so ragged tail groups execute the identical
//!   branch-free code path and the pad lanes' results are simply never
//!   read back;
//! * **wave interleaving** — lane groups descend each tree in waves of
//!   eight: one lock-step group's per-level node loads form a single
//!   dependent chain (gather → compare → blend → next gather), so a
//!   lone group is bound by memory latency; round-robin stepping keeps
//!   several independent chains in flight per tree, the lane-engine
//!   analogue of the blocked walk's interleaved per-sample loads;
//! * **span parallelism** — [`SimdEngine::predict`] distributes sample
//!   blocks over the same `score_spans` partitioning (in
//!   [`crate::batch`]) every other engine uses, so thread boundaries
//!   (and therefore results) are identical by construction.
//!
//! Traversal decisions are bit-identical to the scalar backends for
//! every input: the float kernel uses the same IEEE `<=` (NaN compares
//! false, `-0.0 <= 0.0` true) and the FLInt kernel evaluates exactly
//! [`flint_core::PreparedThreshold::le_bits`] — one optional sign-bit
//! XOR plus one signed compare — lane-wise. The differential suites
//! (`tests/engine_equivalence.rs`, `flint-serve/tests/differential.rs`)
//! assert this across adversarial bit patterns and every tail shape.
//!
//! ```
//! use flint_data::{synth::SynthSpec, FeatureMatrix};
//! use flint_exec::{BackendKind, BatchOptions, CompiledForest, SimdEngine};
//! use flint_forest::{ForestConfig, RandomForest};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = SynthSpec::new(200, 4, 3).generate();
//! let forest = RandomForest::fit(&data, &ForestConfig::grid(5, 7))?;
//! let backend = CompiledForest::compile(&forest, BackendKind::Flint, None)?;
//!
//! let matrix = FeatureMatrix::from_dataset(&data);
//! let engine = SimdEngine::new(&backend, BatchOptions::default());
//! assert_eq!(engine.predict(&matrix), backend.predict_dataset(&data));
//! # Ok(())
//! # }
//! ```

use crate::backend::{BackendKind, CompiledForest, Trees};
use crate::batch::{score_spans, BatchOptions};
use crate::compile::{FloatNode, IntNode, FLIP_BIT, LEAF_MARKER};
use crate::dispatch::{KernelPath, KernelPolicy};
use flint_data::FeatureMatrix;
pub use flint_data::LANES;

// The AVX2 kernels gather node fields by 32-bit word offset, which is
// only sound while both node formats stay exactly four words.
const _: () = assert!(core::mem::size_of::<FloatNode>() == 16);
const _: () = assert!(core::mem::size_of::<IntNode>() == 16);

/// Eight `f32` lanes. The portable operations are plain lane loops —
/// the shape LLVM's autovectorizer turns into single 256-bit
/// instructions on any x86-64/AArch64 target — and the layout
/// (`repr(C)`, 32-byte aligned) is loadable as one AVX2 register.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C, align(32))]
pub struct F32x8(pub [f32; LANES]);

/// Eight `u32` lanes; doubles as the mask type (a lane is all-ones or
/// all-zeros) produced by compares and consumed by
/// [`U32x8::blend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C, align(32))]
pub struct U32x8(pub [u32; LANES]);

impl F32x8 {
    /// Lane-wise bit reinterpretation.
    #[inline]
    pub fn to_bits(self) -> U32x8 {
        let mut out = [0u32; LANES];
        for (slot, v) in out.iter_mut().zip(self.0) {
            *slot = v.to_bits();
        }
        U32x8(out)
    }

    /// Lane-wise IEEE `<=` mask (NaN lanes compare false, exactly like
    /// the scalar operator and AVX2's `_CMP_LE_OQ`).
    #[inline]
    pub fn le(self, rhs: Self) -> U32x8 {
        let mut out = [0u32; LANES];
        for (slot, (x, t)) in out.iter_mut().zip(self.0.into_iter().zip(rhs.0)) {
            *slot = if x <= t { u32::MAX } else { 0 };
        }
        U32x8(out)
    }
}

impl U32x8 {
    /// All lanes zero.
    pub const ZERO: U32x8 = U32x8([0; LANES]);

    /// Broadcasts `v` to every lane.
    #[inline]
    pub fn splat(v: u32) -> Self {
        Self([v; LANES])
    }

    /// Lane-wise equality mask.
    #[inline]
    pub fn eq_mask(self, rhs: Self) -> U32x8 {
        let mut out = [0u32; LANES];
        for (slot, (a, b)) in out.iter_mut().zip(self.0.into_iter().zip(rhs.0)) {
            *slot = if a == b { u32::MAX } else { 0 };
        }
        U32x8(out)
    }

    /// Lane-wise signed `>` mask (lanes reinterpreted as `i32` — the
    /// FLInt comparison domain and AVX2's `_mm256_cmpgt_epi32`).
    #[inline]
    pub fn gt_signed(self, rhs: Self) -> U32x8 {
        let mut out = [0u32; LANES];
        for (slot, (a, b)) in out.iter_mut().zip(self.0.into_iter().zip(rhs.0)) {
            *slot = if (a as i32) > (b as i32) { u32::MAX } else { 0 };
        }
        U32x8(out)
    }

    /// Lane-wise AND.
    #[inline]
    pub fn and(self, rhs: Self) -> U32x8 {
        let mut out = [0u32; LANES];
        for (slot, (a, b)) in out.iter_mut().zip(self.0.into_iter().zip(rhs.0)) {
            *slot = a & b;
        }
        U32x8(out)
    }

    /// Lane-wise XOR.
    #[inline]
    pub fn xor(self, rhs: Self) -> U32x8 {
        let mut out = [0u32; LANES];
        for (slot, (a, b)) in out.iter_mut().zip(self.0.into_iter().zip(rhs.0)) {
            *slot = a ^ b;
        }
        U32x8(out)
    }

    /// Per-lane sign mask: all-ones where the lane is negative as a
    /// signed value, else zero (AVX2's `_mm256_srai_epi32::<31>`).
    #[inline]
    pub fn sign_mask(self) -> U32x8 {
        let mut out = [0u32; LANES];
        for (slot, a) in out.iter_mut().zip(self.0) {
            *slot = ((a as i32) >> 31) as u32;
        }
        U32x8(out)
    }

    /// Branchless select: lane `i` of the result is `t` where `mask`
    /// lane `i` is all-ones, else `f` (AVX2's `blendv`).
    #[inline]
    pub fn blend(mask: U32x8, t: U32x8, f: U32x8) -> U32x8 {
        let mut out = [0u32; LANES];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = (t.0[i] & mask.0[i]) | (f.0[i] & !mask.0[i]);
        }
        U32x8(out)
    }

    /// Whether every lane is all-ones (the walk-termination test).
    #[inline]
    pub fn all_set(self) -> bool {
        self.0.iter().fold(u32::MAX, |acc, &v| acc & v) == u32::MAX
    }
}

/// Whether the AVX2 kernels are compiled in (`simd-avx2` feature on an
/// x86-64 target) **and** the CPU reports AVX2 at runtime. Kept as the
/// family's historical probe; engines now select a [`KernelPath`]
/// through [`lane_policy`] at build time instead of re-probing per
/// batch.
pub fn avx2_enabled() -> bool {
    #[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(feature = "simd-avx2", target_arch = "x86_64")))]
    {
        false
    }
}

/// The f32 lane family's dispatch policy: AVX2 kernels exist behind
/// the `simd-avx2` feature on x86-64, NEON kernels on aarch64, and the
/// portable autovectorized walk everywhere.
pub fn lane_policy() -> KernelPolicy {
    KernelPolicy {
        avx2: cfg!(all(feature = "simd-avx2", target_arch = "x86_64")),
        f16c_required: false,
        neon: cfg!(target_arch = "aarch64"),
    }
}

/// The SIMD engine's comparison mode — the lane-level mirror of the
/// paper's FLInt/float backend split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdCompare {
    /// FLInt integer compares: one optional sign-bit XOR plus one
    /// signed lane compare per node (registry name `simd`).
    Flint,
    /// Native IEEE float compares (registry name `simd-float`).
    Float,
}

impl SimdCompare {
    /// The backend configuration whose compiled trees this mode walks
    /// (arena layout in both cases; CAGS reordering buys nothing when
    /// all lanes move in lock-step).
    pub fn backend(self) -> BackendKind {
        match self {
            SimdCompare::Flint => BackendKind::Flint,
            SimdCompare::Float => BackendKind::Naive,
        }
    }
}

/// A compiled forest bound to the lane-parallel traversal.
///
/// The engine borrows the forest; compile once, then score any number
/// of [`FeatureMatrix`] batches through it. Prefer building through
/// the registry ([`crate::EngineKind::Simd`]) unless you already hold a
/// [`CompiledForest`].
#[derive(Debug, Clone, Copy)]
pub struct SimdEngine<'f> {
    forest: &'f CompiledForest,
    opts: BatchOptions,
    path: KernelPath,
}

impl<'f> SimdEngine<'f> {
    /// Binds `forest` to the given options. `block_samples` is the
    /// cache-blocking unit exactly as in the blocked engine; lane
    /// groups of [`LANES`] samples are carved out of each block. The
    /// kernel path is selected here, once, through [`lane_policy`]
    /// (honoring the `FLINT_KERNEL` override) and stays fixed for the
    /// engine's lifetime.
    pub fn new(forest: &'f CompiledForest, opts: BatchOptions) -> Self {
        Self {
            forest,
            opts,
            path: lane_policy().select(),
        }
    }

    /// Overrides the dispatched kernel path (differential tests pin
    /// the accelerated paths against portable this way).
    ///
    /// Forcing a path whose kernels are not compiled in silently runs
    /// portable; forcing a compiled-in path on a CPU without the ISA
    /// panics at predict time (the kernel entries re-assert support).
    pub fn with_kernel(mut self, path: KernelPath) -> Self {
        self.path = path;
        self
    }

    /// The kernel path this engine dispatches to.
    pub fn kernel_path(&self) -> KernelPath {
        self.path
    }

    /// The bound options (clamping applied at use, not here).
    pub fn options(&self) -> BatchOptions {
        self.opts
    }

    /// Scores every sample of `matrix`, returning one class per sample.
    ///
    /// Bit-identical to calling [`CompiledForest::predict`] per row.
    ///
    /// # Panics
    ///
    /// Panics if `matrix.n_features()` differs from the model's.
    pub fn predict(&self, matrix: &FeatureMatrix) -> Vec<u32> {
        assert_eq!(
            matrix.n_features(),
            self.forest.n_features(),
            "feature matrix width"
        );
        let mut out = vec![0u32; matrix.n_samples()];
        // The kernel decision was made once at engine build time.
        score_spans(&self.opts, &mut out, |start, span| {
            self.score_span(matrix, start, span, self.path);
        });
        out
    }

    /// Scores samples `start..start + out.len()` into `out`.
    /// `block_trees` is ignored: the wave walk already amortizes each
    /// tree's node array over every resident lane group, so there is
    /// no inner tree-blocking level to tune.
    fn score_span(&self, matrix: &FeatureMatrix, start: usize, out: &mut [u32], path: KernelPath) {
        let block = self.opts.block_samples.max(1);
        let n_features = self.forest.n_features();
        let n_classes = self.forest.n_classes();
        let group_stride = n_features * LANES;
        let cap = block.min(out.len());
        // Per-worker scratch, reused across blocks: the lane-gathered
        // sample slabs and the flat vote accumulator.
        let mut lanes = vec![0.0f32; cap.div_ceil(LANES) * group_stride];
        let mut votes = vec![0u32; cap * n_classes];
        let mut offset = 0;
        while offset < out.len() {
            let len = block.min(out.len() - offset);
            let n_groups = len.div_ceil(LANES);
            for g in 0..n_groups {
                matrix.gather_lanes(
                    start + offset + g * LANES,
                    &mut lanes[g * group_stride..(g + 1) * group_stride],
                );
            }
            let votes = &mut votes[..len * n_classes];
            votes.fill(0);
            // Tree-major within the block, as in the blocked engine:
            // each tree's node array stays hot while every resident
            // lane group descends it. Groups advance in *waves* of
            // [`WAVE`] so several independent gather chains are in
            // flight per level — one lock-step group alone is
            // latency-bound on its own dependent node loads.
            match self.forest.trees() {
                Trees::Float(trees) => {
                    for tree in trees {
                        let nodes = tree.nodes();
                        each_wave(
                            &lanes,
                            n_groups,
                            group_stride,
                            |slabs, cursors| walk_float(nodes, slabs, cursors, path),
                            |g, cursor| {
                                vote_group(votes, n_classes, len, g, |i| {
                                    nodes[cursor.0[i] as usize].left
                                });
                            },
                        );
                    }
                }
                Trees::Soft(trees) => {
                    for tree in trees {
                        let nodes = tree.nodes();
                        each_wave(
                            &lanes,
                            n_groups,
                            group_stride,
                            |slabs, cursors| {
                                walk_float_portable(nodes, slabs, cursors, soft_le_mask)
                            },
                            |g, cursor| {
                                vote_group(votes, n_classes, len, g, |i| {
                                    nodes[cursor.0[i] as usize].left
                                });
                            },
                        );
                    }
                }
                Trees::Int(trees) => {
                    for tree in trees {
                        let nodes = tree.nodes();
                        each_wave(
                            &lanes,
                            n_groups,
                            group_stride,
                            |slabs, cursors| walk_int(nodes, slabs, cursors, path),
                            |g, cursor| {
                                vote_group(votes, n_classes, len, g, |i| {
                                    nodes[cursor.0[i] as usize].left
                                });
                            },
                        );
                    }
                }
            }
            for (k, slot) in out[offset..offset + len].iter_mut().enumerate() {
                *slot = flint_forest::metrics::majority_vote(
                    &votes[k * n_classes..(k + 1) * n_classes],
                );
            }
            offset += len;
        }
    }
}

/// Records one vote per live lane of group `g` (pad lanes past `len`
/// are never read back — their traversal result is discarded here).
/// Shared with the f16 lane engine in [`crate::f16`].
#[inline]
pub(crate) fn vote_group(
    votes: &mut [u32],
    n_classes: usize,
    len: usize,
    g: usize,
    leaf_class: impl Fn(usize) -> u32,
) {
    let live = LANES.min(len - g * LANES);
    for i in 0..live {
        votes[(g * LANES + i) * n_classes + leaf_class(i) as usize] += 1;
    }
}

/// Lane-wise software-float `<=` mask — the no-FPU comparison for
/// [`Trees::Soft`] forests (portable path only; the decisions, not the
/// instruction count, are what must match).
#[inline]
fn soft_le_mask(x: F32x8, t: F32x8) -> U32x8 {
    let mut out = [0u32; LANES];
    for (slot, (a, b)) in out.iter_mut().zip(x.0.into_iter().zip(t.0)) {
        *slot = if flint_softfloat::soft_le(a, b) {
            u32::MAX
        } else {
            0
        };
    }
    U32x8(out)
}

/// Lane groups walked concurrently per tree. One lock-step group's
/// per-level node loads form a single dependent chain (gather →
/// compare → blend → next gather), so the walk is bound by memory
/// latency, not throughput; a wave of independent groups keeps several
/// such chains in flight — the lane-engine analogue of the blocked
/// walk's interleaved per-sample load chains.
pub(crate) const WAVE: usize = 8;

/// Carves `n_groups` lane slabs out of `lanes`, walks them in waves of
/// [`WAVE`] through `walk` (which advances every cursor to its leaf),
/// and hands each group's leaf cursor to `sink`.
#[inline]
fn each_wave(
    lanes: &[f32],
    n_groups: usize,
    group_stride: usize,
    mut walk: impl FnMut(&[&[f32]], &mut [U32x8]),
    mut sink: impl FnMut(usize, U32x8),
) {
    for wave_start in (0..n_groups).step_by(WAVE) {
        let k = WAVE.min(n_groups - wave_start);
        let mut slabs: [&[f32]; WAVE] = [&[]; WAVE];
        for (j, slab) in slabs[..k].iter_mut().enumerate() {
            let g = wave_start + j;
            *slab = &lanes[g * group_stride..(g + 1) * group_stride];
        }
        let mut cursors = [U32x8::ZERO; WAVE];
        walk(&slabs[..k], &mut cursors[..k]);
        for (j, &cursor) in cursors[..k].iter().enumerate() {
            sink(wave_start + j, cursor);
        }
    }
}

/// Float-comparison wave walk, dispatched on the engine's
/// [`KernelPath`]. Paths whose kernels are not compiled in fall
/// through to portable (the match arms are `cfg`-gated away).
#[inline]
fn walk_float(nodes: &[FloatNode], slabs: &[&[f32]], cursors: &mut [U32x8], path: KernelPath) {
    match path {
        #[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
        KernelPath::Avx2 => avx2::walk_float(nodes, slabs, cursors),
        #[cfg(target_arch = "aarch64")]
        KernelPath::Neon => neon::walk_float(nodes, slabs, cursors),
        _ => walk_float_portable(nodes, slabs, cursors, F32x8::le),
    }
}

/// FLInt-comparison wave walk, dispatched on the engine's
/// [`KernelPath`].
#[inline]
fn walk_int(nodes: &[IntNode], slabs: &[&[f32]], cursors: &mut [U32x8], path: KernelPath) {
    match path {
        #[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
        KernelPath::Avx2 => avx2::walk_int(nodes, slabs, cursors),
        #[cfg(target_arch = "aarch64")]
        KernelPath::Neon => neon::walk_int(nodes, slabs, cursors),
        _ => walk_int_portable(nodes, slabs, cursors),
    }
}

/// Walks a wave of lane groups down one float-comparison tree. Each
/// level of each group gathers its 8 current nodes, masks leaves,
/// compares all lanes through `le_mask` and blends child indices;
/// leaf lanes blend back to themselves, so a group's only branch is
/// its group-wide "all lanes landed" exit. Groups step round-robin —
/// their per-level load chains are independent, which is what hides
/// the node-gather latency. On return every cursor holds its group's
/// leaf positions.
#[inline]
fn walk_float_portable(
    nodes: &[FloatNode],
    slabs: &[&[f32]],
    cursors: &mut [U32x8],
    le_mask: impl Fn(F32x8, F32x8) -> U32x8,
) {
    debug_assert_eq!(slabs.len(), cursors.len());
    let mut done = [false; WAVE];
    loop {
        let mut remaining = false;
        for (gi, &slab) in slabs.iter().enumerate() {
            if done[gi] {
                continue;
            }
            let cursor = cursors[gi];
            let mut feature = [0u32; LANES];
            let mut threshold = [0.0f32; LANES];
            let mut left = [0u32; LANES];
            let mut right = [0u32; LANES];
            for i in 0..LANES {
                let node = &nodes[cursor.0[i] as usize];
                feature[i] = node.feature;
                threshold[i] = node.threshold;
                left[i] = node.left;
                right[i] = node.right;
            }
            let feature = U32x8(feature);
            let is_leaf = feature.eq_mask(U32x8::splat(LEAF_MARKER));
            if is_leaf.all_set() {
                done[gi] = true;
                continue;
            }
            remaining = true;
            // Leaf lanes read lane slot 0 instead of indexing with the
            // leaf marker; the value is blended away below.
            let fsafe = U32x8::blend(is_leaf, U32x8::ZERO, feature);
            let mut x = [0.0f32; LANES];
            for i in 0..LANES {
                x[i] = slab[fsafe.0[i] as usize * LANES + i];
            }
            let go_left = le_mask(F32x8(x), F32x8(threshold));
            let next = U32x8::blend(go_left, U32x8(left), U32x8(right));
            cursors[gi] = U32x8::blend(is_leaf, cursor, next);
        }
        if !remaining {
            break;
        }
    }
}

/// The FLInt counterpart of [`walk_float_portable`]: per lane, the
/// offline-resolved integer test of
/// [`flint_core::PreparedThreshold::le_bits`] — sign-bit XOR where the
/// node's flip bit is set, then one signed compare — evaluated
/// branchlessly across all 8 lanes of every group in the wave.
#[inline]
fn walk_int_portable(nodes: &[IntNode], slabs: &[&[f32]], cursors: &mut [U32x8]) {
    debug_assert_eq!(slabs.len(), cursors.len());
    let sign = U32x8::splat(FLIP_BIT);
    let mut done = [false; WAVE];
    loop {
        let mut remaining = false;
        for (gi, &slab) in slabs.iter().enumerate() {
            if done[gi] {
                continue;
            }
            let cursor = cursors[gi];
            let mut ff = [0u32; LANES];
            let mut key = [0u32; LANES];
            let mut left = [0u32; LANES];
            let mut right = [0u32; LANES];
            for i in 0..LANES {
                let node = &nodes[cursor.0[i] as usize];
                ff[i] = node.feature_and_flip;
                key[i] = node.key as u32;
                left[i] = node.left;
                right[i] = node.right;
            }
            let ff = U32x8(ff);
            let key = U32x8(key);
            let is_leaf = ff.eq_mask(U32x8::splat(LEAF_MARKER));
            if is_leaf.all_set() {
                done[gi] = true;
                continue;
            }
            remaining = true;
            // The flip bit is the sign bit of `feature_and_flip`; leaf
            // lanes (all-ones marker) also read as flipped, but their
            // next cursor is blended back to themselves regardless.
            let flip = ff.sign_mask();
            let feature = ff.and(U32x8::splat(!FLIP_BIT));
            let fsafe = U32x8::blend(is_leaf, U32x8::ZERO, feature);
            let mut x = [0.0f32; LANES];
            for i in 0..LANES {
                x[i] = slab[fsafe.0[i] as usize * LANES + i];
            }
            let bits = F32x8(x).to_bits();
            let bx = bits.xor(flip.and(sign));
            // go right: flip ? key > bx : bx > key (signed) — the exact
            // negation of PreparedThreshold::le_bits.
            let go_right = U32x8::blend(flip, key.gt_signed(bx), bx.gt_signed(key));
            let next = U32x8::blend(go_right, U32x8(right), U32x8(left));
            cursors[gi] = U32x8::blend(is_leaf, cursor, next);
        }
        if !remaining {
            break;
        }
    }
}

/// The `std::arch` AVX2 kernels: the same two walks with hardware
/// gathers (`vpgatherdd`/`vgatherdps`) for the node fields and lane
/// values, `vpcmpgtd`/`vcmpps` compares and `vpblendvb` selects.
///
/// This is the one `unsafe` island of the crate. Soundness argument:
///
/// * the wrappers assert AVX2 via CPUID before entering the
///   `#[target_feature]` functions;
/// * node gathers index `cursor * 4 + {0..3}` 32-bit words, and
///   `cursor` only ever holds root (0) or an in-tree child index, so
///   every access is inside the node slice (both node formats are
///   exactly four words — statically asserted above);
/// * lane gathers index `feature * 8 + lane` with `feature` either a
///   valid feature index or clamped to 0 for leaf lanes, always inside
///   the `n_features * LANES` slab.
#[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod avx2 {
    use super::{U32x8, WAVE};
    use crate::compile::{FloatNode, IntNode, FLIP_BIT, LEAF_MARKER};
    use core::arch::x86_64::{
        _mm256_add_epi32, _mm256_and_si256, _mm256_andnot_si256, _mm256_blendv_epi8,
        _mm256_castps_si256, _mm256_cmp_ps, _mm256_cmpeq_epi32, _mm256_cmpgt_epi32,
        _mm256_i32gather_epi32, _mm256_i32gather_ps, _mm256_load_si256, _mm256_movemask_epi8,
        _mm256_set1_epi32, _mm256_setr_epi32, _mm256_slli_epi32, _mm256_srai_epi32,
        _mm256_store_si256, _mm256_xor_si256, _CMP_LE_OQ,
    };

    /// Dispatch-checked entry for the float wave walk.
    #[inline]
    pub fn walk_float(nodes: &[FloatNode], slabs: &[&[f32]], cursors: &mut [U32x8]) {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "AVX2 kernel entered without CPUID support"
        );
        debug_assert!(!nodes.is_empty());
        debug_assert_eq!(slabs.len(), cursors.len());
        // SAFETY: AVX2 verified above; gather bounds per module docs.
        unsafe { walk_float_avx2(nodes, slabs, cursors) }
    }

    /// Dispatch-checked entry for the FLInt wave walk.
    #[inline]
    pub fn walk_int(nodes: &[IntNode], slabs: &[&[f32]], cursors: &mut [U32x8]) {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "AVX2 kernel entered without CPUID support"
        );
        debug_assert!(!nodes.is_empty());
        debug_assert_eq!(slabs.len(), cursors.len());
        // SAFETY: AVX2 verified above; gather bounds per module docs.
        unsafe { walk_int_avx2(nodes, slabs, cursors) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn walk_float_avx2(nodes: &[FloatNode], slabs: &[&[f32]], cursors: &mut [U32x8]) {
        let base = nodes.as_ptr().cast::<i32>();
        let leaf = _mm256_set1_epi32(LEAF_MARKER as i32);
        let lane_off = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        // Round-robin over the wave's groups: each group's cursor is
        // loaded, advanced one level and stored back (U32x8 is 32-byte
        // aligned), so up to WAVE independent gather chains are in
        // flight while each one waits on its own node loads.
        let mut done = [false; WAVE];
        loop {
            let mut remaining = false;
            for (gi, &slab) in slabs.iter().enumerate() {
                if done[gi] {
                    continue;
                }
                // SAFETY: U32x8 is #[repr(align(32))], so the cursor
                // slot is a valid aligned 32-byte load source.
                let cursor = unsafe { _mm256_load_si256(cursors[gi].0.as_ptr().cast()) };
                // Node word index: each node is four 32-bit words.
                let word = _mm256_slli_epi32::<2>(cursor);
                // SAFETY: every cursor lane is root (0) or an in-tree
                // child index, so word+0 indexes inside the four-word
                // node slice (per the module soundness argument).
                let feature = unsafe { _mm256_i32gather_epi32::<4>(base, word) };
                let is_leaf = _mm256_cmpeq_epi32(feature, leaf);
                if _mm256_movemask_epi8(is_leaf) == -1 {
                    done[gi] = true;
                    continue;
                }
                remaining = true;
                // SAFETY: word+1..word+3 index the threshold/left/right
                // words of the same in-bounds node.
                let threshold = unsafe {
                    _mm256_i32gather_ps::<4>(
                        base.cast(),
                        _mm256_add_epi32(word, _mm256_set1_epi32(1)),
                    )
                };
                // SAFETY: as above (word+2 of an in-bounds node).
                let left = unsafe {
                    _mm256_i32gather_epi32::<4>(base, _mm256_add_epi32(word, _mm256_set1_epi32(2)))
                };
                // SAFETY: as above (word+3 of an in-bounds node).
                let right = unsafe {
                    _mm256_i32gather_epi32::<4>(base, _mm256_add_epi32(word, _mm256_set1_epi32(3)))
                };
                // Leaf lanes gather lane slot 0 (feature clamped by andnot).
                let fsafe = _mm256_andnot_si256(is_leaf, feature);
                let xidx = _mm256_add_epi32(_mm256_slli_epi32::<3>(fsafe), lane_off);
                // SAFETY: xidx = feature*8 + lane with feature a valid
                // index (or clamped to 0 for leaf lanes), inside the
                // n_features*LANES slab.
                let x = unsafe { _mm256_i32gather_ps::<4>(slab.as_ptr(), xidx) };
                // LE_OQ: false on NaN — identical to scalar `<=`.
                let go_left = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LE_OQ>(x, threshold));
                let next = _mm256_blendv_epi8(right, left, go_left);
                let next = _mm256_blendv_epi8(next, cursor, is_leaf);
                // SAFETY: same aligned cursor slot as the load above,
                // borrowed mutably — a valid 32-byte store target.
                unsafe { _mm256_store_si256(cursors[gi].0.as_mut_ptr().cast(), next) };
            }
            if !remaining {
                break;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn walk_int_avx2(nodes: &[IntNode], slabs: &[&[f32]], cursors: &mut [U32x8]) {
        let base = nodes.as_ptr().cast::<i32>();
        let leaf = _mm256_set1_epi32(LEAF_MARKER as i32);
        let sign = _mm256_set1_epi32(FLIP_BIT as i32);
        let feat_mask = _mm256_set1_epi32(!FLIP_BIT as i32);
        let lane_off = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        let mut done = [false; WAVE];
        loop {
            let mut remaining = false;
            for (gi, &slab) in slabs.iter().enumerate() {
                if done[gi] {
                    continue;
                }
                // SAFETY: U32x8 is #[repr(align(32))], so the cursor
                // slot is a valid aligned 32-byte load source.
                let cursor = unsafe { _mm256_load_si256(cursors[gi].0.as_ptr().cast()) };
                let word = _mm256_slli_epi32::<2>(cursor);
                // SAFETY: every cursor lane is root (0) or an in-tree
                // child index, so word+0 indexes inside the four-word
                // node slice (per the module soundness argument).
                let ff = unsafe { _mm256_i32gather_epi32::<4>(base, word) };
                let is_leaf = _mm256_cmpeq_epi32(ff, leaf);
                if _mm256_movemask_epi8(is_leaf) == -1 {
                    done[gi] = true;
                    continue;
                }
                remaining = true;
                // SAFETY: word+1..word+3 index the key/left/right words
                // of the same in-bounds node.
                let key = unsafe {
                    _mm256_i32gather_epi32::<4>(base, _mm256_add_epi32(word, _mm256_set1_epi32(1)))
                };
                // SAFETY: as above (word+2 of an in-bounds node).
                let left = unsafe {
                    _mm256_i32gather_epi32::<4>(base, _mm256_add_epi32(word, _mm256_set1_epi32(2)))
                };
                // SAFETY: as above (word+3 of an in-bounds node).
                let right = unsafe {
                    _mm256_i32gather_epi32::<4>(base, _mm256_add_epi32(word, _mm256_set1_epi32(3)))
                };
                // The flip bit is the sign bit of feature_and_flip; leaf
                // lanes also read as flipped but are blended back below.
                let flip = _mm256_srai_epi32::<31>(ff);
                let fsafe = _mm256_andnot_si256(is_leaf, _mm256_and_si256(ff, feat_mask));
                let xidx = _mm256_add_epi32(_mm256_slli_epi32::<3>(fsafe), lane_off);
                // SAFETY: xidx = feature*8 + lane with feature masked to
                // a valid index (or clamped to 0 for leaf lanes), inside
                // the n_features*LANES slab.
                let bits = unsafe { _mm256_i32gather_epi32::<4>(slab.as_ptr().cast(), xidx) };
                let bx = _mm256_xor_si256(bits, _mm256_and_si256(flip, sign));
                // go right: flip ? key > bx : bx > key — the negation of
                // PreparedThreshold::le_bits, lane-wise.
                let go_right = _mm256_blendv_epi8(
                    _mm256_cmpgt_epi32(bx, key),
                    _mm256_cmpgt_epi32(key, bx),
                    flip,
                );
                let next = _mm256_blendv_epi8(left, right, go_right);
                let next = _mm256_blendv_epi8(next, cursor, is_leaf);
                // SAFETY: same aligned cursor slot as the load above,
                // borrowed mutably — a valid 32-byte store target.
                unsafe { _mm256_store_si256(cursors[gi].0.as_mut_ptr().cast(), next) };
            }
            if !remaining {
                break;
            }
        }
    }
}

/// The `std::arch` NEON kernels for aarch64: the node-field and lane
/// gathers stay scalar (AdvSIMD has no hardware gather), but the
/// per-level compare + child-select — the work the walk repeats at
/// every node — runs on explicit 128-bit vectors (`vcleq_f32` /
/// `vcgtq_s32` compares, `vbslq_u32` selects) over the group's two
/// 4-lane halves.
///
/// This island is only reachable through [`KernelPath::Neon`], which
/// [`lane_policy`] hands out solely on aarch64 hosts; the entry
/// wrappers still re-assert NEON support before entering the
/// `#[target_feature]` functions. All memory access happens through
/// plain slice indexing and unaligned `vld1q`/`vst1q` on local
/// arrays, so the soundness argument is confined to the feature gate.
#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod neon {
    use super::{U32x8, LANES, WAVE};
    use crate::compile::{FloatNode, IntNode, FLIP_BIT, LEAF_MARKER};
    use core::arch::aarch64::{
        vandq_u32, vbslq_u32, vcgtq_s32, vcleq_f32, vdupq_n_u32, veorq_u32, vld1q_f32, vld1q_u32,
        vreinterpretq_s32_u32, vreinterpretq_u32_s32, vshrq_n_s32, vst1q_u32,
    };

    /// Dispatch-checked entry for the float wave walk.
    #[inline]
    pub fn walk_float(nodes: &[FloatNode], slabs: &[&[f32]], cursors: &mut [U32x8]) {
        assert!(
            std::arch::is_aarch64_feature_detected!("neon"),
            "NEON kernel entered without AdvSIMD support"
        );
        debug_assert!(!nodes.is_empty());
        debug_assert_eq!(slabs.len(), cursors.len());
        // SAFETY: NEON verified above; all loads/stores are on local
        // arrays per the module docs.
        unsafe { walk_float_neon(nodes, slabs, cursors) }
    }

    /// Dispatch-checked entry for the FLInt wave walk.
    #[inline]
    pub fn walk_int(nodes: &[IntNode], slabs: &[&[f32]], cursors: &mut [U32x8]) {
        assert!(
            std::arch::is_aarch64_feature_detected!("neon"),
            "NEON kernel entered without AdvSIMD support"
        );
        debug_assert!(!nodes.is_empty());
        debug_assert_eq!(slabs.len(), cursors.len());
        // SAFETY: NEON verified above; all loads/stores are on local
        // arrays per the module docs.
        unsafe { walk_int_neon(nodes, slabs, cursors) }
    }

    #[target_feature(enable = "neon")]
    unsafe fn walk_float_neon(nodes: &[FloatNode], slabs: &[&[f32]], cursors: &mut [U32x8]) {
        let mut done = [false; WAVE];
        loop {
            let mut remaining = false;
            for (gi, &slab) in slabs.iter().enumerate() {
                if done[gi] {
                    continue;
                }
                let cursor = cursors[gi];
                let mut feature = [0u32; LANES];
                let mut threshold = [0.0f32; LANES];
                let mut left = [0u32; LANES];
                let mut right = [0u32; LANES];
                let mut x = [0.0f32; LANES];
                let mut all_leaves = true;
                for i in 0..LANES {
                    let node = &nodes[cursor.0[i] as usize];
                    feature[i] = node.feature;
                    threshold[i] = node.threshold;
                    left[i] = node.left;
                    right[i] = node.right;
                    let is_leaf = node.feature == LEAF_MARKER;
                    all_leaves &= is_leaf;
                    // Leaf lanes read slot 0; the result is blended away.
                    let f = if is_leaf { 0 } else { node.feature as usize };
                    x[i] = slab[f * LANES + i];
                }
                if all_leaves {
                    done[gi] = true;
                    continue;
                }
                remaining = true;
                let leaf = vdupq_n_u32(LEAF_MARKER);
                let mut next = [0u32; LANES];
                for h in [0usize, 4] {
                    // SAFETY: every load reads 4 lanes of an 8-lane
                    // local array at offset 0 or 4; the store writes
                    // the same shape. vld1q/vst1q are unaligned.
                    unsafe {
                        let f_v = vld1q_u32(feature.as_ptr().add(h));
                        let is_leaf = core::arch::aarch64::vceqq_u32(f_v, leaf);
                        // IEEE <=: NaN lanes compare false, exactly
                        // like the scalar operator and _CMP_LE_OQ.
                        let go_left = vcleq_f32(
                            vld1q_f32(x.as_ptr().add(h)),
                            vld1q_f32(threshold.as_ptr().add(h)),
                        );
                        let stepped = vbslq_u32(
                            go_left,
                            vld1q_u32(left.as_ptr().add(h)),
                            vld1q_u32(right.as_ptr().add(h)),
                        );
                        let out = vbslq_u32(is_leaf, vld1q_u32(cursor.0.as_ptr().add(h)), stepped);
                        vst1q_u32(next.as_mut_ptr().add(h), out);
                    }
                }
                cursors[gi] = U32x8(next);
            }
            if !remaining {
                break;
            }
        }
    }

    #[target_feature(enable = "neon")]
    unsafe fn walk_int_neon(nodes: &[IntNode], slabs: &[&[f32]], cursors: &mut [U32x8]) {
        let mut done = [false; WAVE];
        loop {
            let mut remaining = false;
            for (gi, &slab) in slabs.iter().enumerate() {
                if done[gi] {
                    continue;
                }
                let cursor = cursors[gi];
                let mut ff = [0u32; LANES];
                let mut key = [0u32; LANES];
                let mut left = [0u32; LANES];
                let mut right = [0u32; LANES];
                let mut bits = [0u32; LANES];
                let mut all_leaves = true;
                for i in 0..LANES {
                    let node = &nodes[cursor.0[i] as usize];
                    ff[i] = node.feature_and_flip;
                    key[i] = node.key as u32;
                    left[i] = node.left;
                    right[i] = node.right;
                    let is_leaf = node.feature_and_flip == LEAF_MARKER;
                    all_leaves &= is_leaf;
                    let f = if is_leaf {
                        0
                    } else {
                        (node.feature_and_flip & !FLIP_BIT) as usize
                    };
                    bits[i] = slab[f * LANES + i].to_bits();
                }
                if all_leaves {
                    done[gi] = true;
                    continue;
                }
                remaining = true;
                let leaf = vdupq_n_u32(LEAF_MARKER);
                let sign = vdupq_n_u32(FLIP_BIT);
                let mut next = [0u32; LANES];
                for h in [0usize, 4] {
                    // SAFETY: every load reads 4 lanes of an 8-lane
                    // local array at offset 0 or 4; the store writes
                    // the same shape. vld1q/vst1q are unaligned.
                    unsafe {
                        let ff_v = vld1q_u32(ff.as_ptr().add(h));
                        let is_leaf = core::arch::aarch64::vceqq_u32(ff_v, leaf);
                        // The flip bit is the sign bit of
                        // feature_and_flip (arithmetic-shift mask).
                        let flip =
                            vreinterpretq_u32_s32(vshrq_n_s32::<31>(vreinterpretq_s32_u32(ff_v)));
                        let bx = veorq_u32(vld1q_u32(bits.as_ptr().add(h)), vandq_u32(flip, sign));
                        let key_v = vld1q_u32(key.as_ptr().add(h));
                        // go right: flip ? key > bx : bx > key (signed)
                        // — the negation of PreparedThreshold::le_bits.
                        let go_right = vbslq_u32(
                            flip,
                            vcgtq_s32(vreinterpretq_s32_u32(key_v), vreinterpretq_s32_u32(bx)),
                            vcgtq_s32(vreinterpretq_s32_u32(bx), vreinterpretq_s32_u32(key_v)),
                        );
                        let stepped = vbslq_u32(
                            go_right,
                            vld1q_u32(right.as_ptr().add(h)),
                            vld1q_u32(left.as_ptr().add(h)),
                        );
                        let out = vbslq_u32(is_leaf, vld1q_u32(cursor.0.as_ptr().add(h)), stepped);
                        vst1q_u32(next.as_mut_ptr().add(h), out);
                    }
                }
                cursors[gi] = U32x8(next);
            }
            if !remaining {
                break;
            }
        }
    }
}

impl CompiledForest {
    /// Batch prediction through the lane-parallel SIMD engine.
    /// Convenience wrapper mirroring
    /// [`CompiledForest::predict_dataset_batched`]; bit-identical to
    /// [`CompiledForest::predict_dataset`].
    ///
    /// # Panics
    ///
    /// Panics if the dataset's feature count differs from the model's.
    pub fn predict_dataset_simd(&self, data: &flint_data::Dataset, opts: BatchOptions) -> Vec<u32> {
        let matrix = FeatureMatrix::from_dataset(data);
        SimdEngine::new(self, opts).predict(&matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_data::synth::SynthSpec;
    use flint_data::Dataset;
    use flint_forest::{ForestConfig, RandomForest};

    #[test]
    fn lane_ops_match_scalar_semantics() {
        let a = F32x8([1.0, -0.0, f32::NAN, f32::INFINITY, -1.5, 0.0, 2.0, -2.0]);
        let b = F32x8([1.0, 0.0, 1.0, f32::INFINITY, -1.5, -0.0, 1.0, 3.0]);
        let le = a.le(b);
        for i in 0..LANES {
            assert_eq!(le.0[i] == u32::MAX, a.0[i] <= b.0[i], "lane {i}");
            assert!(le.0[i] == 0 || le.0[i] == u32::MAX);
        }
        let u = U32x8([0, 1, u32::MAX, 7, 1 << 31, 3, 9, 100]);
        let v = U32x8([0, 2, u32::MAX, 6, 0, 3, 8, 100]);
        let eq = u.eq_mask(v);
        let gt = u.gt_signed(v);
        for i in 0..LANES {
            assert_eq!(eq.0[i] == u32::MAX, u.0[i] == v.0[i], "lane {i}");
            assert_eq!(
                gt.0[i] == u32::MAX,
                (u.0[i] as i32) > (v.0[i] as i32),
                "lane {i}"
            );
        }
        let blended = U32x8::blend(eq, u, v);
        for i in 0..LANES {
            let want = if u.0[i] == v.0[i] { u.0[i] } else { v.0[i] };
            assert_eq!(blended.0[i], want, "lane {i}");
        }
        assert!(U32x8::splat(u32::MAX).all_set());
        assert!(!eq.all_set());
    }

    fn setup(kind: BackendKind) -> (Dataset, CompiledForest) {
        let data = SynthSpec::new(230, 5, 3)
            .cluster_std(1.0)
            .negative_fraction(0.5)
            .seed(11)
            .generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(6, 8)).expect("trainable");
        let backend = CompiledForest::compile(&forest, kind, None).expect("compiles");
        (data, backend)
    }

    #[test]
    fn lane_walk_matches_scalar_for_every_compare_mode() {
        for kind in [
            BackendKind::Flint,
            BackendKind::Naive,
            BackendKind::SoftFloat,
        ] {
            let (data, backend) = setup(kind);
            let want = backend.predict_dataset(&data);
            let matrix = FeatureMatrix::from_dataset(&data);
            for block in [1usize, 7, 64, 1024] {
                for threads in [1usize, 4] {
                    let opts = BatchOptions::default()
                        .block_samples(block)
                        .threads(threads);
                    assert_eq!(
                        SimdEngine::new(&backend, opts).predict(&matrix),
                        want,
                        "{kind:?} block {block} threads {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn dataset_wrapper_and_degenerate_options() {
        let (data, backend) = setup(BackendKind::Flint);
        let want = backend.predict_dataset(&data);
        let opts = BatchOptions::default()
            .block_samples(0)
            .block_trees(0)
            .threads(0);
        assert_eq!(backend.predict_dataset_simd(&data, opts), want);
    }

    #[test]
    fn empty_batch_is_empty() {
        let (_, backend) = setup(BackendKind::Flint);
        let empty = FeatureMatrix::from_row_major(0, backend.n_features(), &[]);
        let engine = SimdEngine::new(&backend, BatchOptions::default().threads(3));
        assert_eq!(engine.predict(&empty), Vec::<u32>::new());
    }

    #[test]
    #[should_panic(expected = "feature matrix width")]
    fn wrong_width_panics() {
        let (_, backend) = setup(BackendKind::Flint);
        let bad = FeatureMatrix::from_row_major(1, 2, &[0.0, 0.0]);
        let _ = SimdEngine::new(&backend, BatchOptions::default()).predict(&bad);
    }

    /// When the AVX2 kernels are compiled in and the CPU has them, the
    /// portable and intrinsic paths must agree bit-for-bit (the
    /// portable path is the reference the differential suites pin to
    /// the scalar engines).
    #[test]
    fn avx2_and_portable_paths_agree() {
        if !avx2_enabled() {
            return; // feature off or CPU without AVX2: nothing to cross-check
        }
        for kind in [BackendKind::Flint, BackendKind::Naive] {
            let (data, backend) = setup(kind);
            let matrix = FeatureMatrix::from_dataset(&data);
            let engine = SimdEngine::new(&backend, BatchOptions::default());
            let accelerated = engine.with_kernel(KernelPath::Avx2).predict(&matrix);
            let portable = engine.with_kernel(KernelPath::Portable).predict(&matrix);
            assert_eq!(accelerated, portable, "{kind:?}");
        }
    }

    /// The engine's auto-selected path obeys the family policy and the
    /// live capability snapshot.
    #[test]
    fn build_time_path_matches_policy() {
        let (_, backend) = setup(BackendKind::Flint);
        let engine = SimdEngine::new(&backend, BatchOptions::default());
        // The unit-test process may or may not have FLINT_KERNEL set;
        // re-running the policy must reproduce the engine's choice.
        assert_eq!(engine.kernel_path(), lane_policy().select());
        assert_eq!(
            engine.with_kernel(KernelPath::Portable).kernel_path(),
            KernelPath::Portable
        );
    }
}
