//! The unified inference engine layer: one [`Predictor`] trait over
//! every prediction path in the workspace, and the [`EngineKind`]
//! registry that names, describes and builds them.
//!
//! The paper's point is that FLInt is a *drop-in replacement*: swapping
//! float comparisons for integer comparisons changes no prediction.
//! Before this module, demonstrating that required five incompatible
//! APIs (`CompiledForest::predict`, the [`BatchEngine`] blocked walk,
//! `QsForest` QuickScorer traversal, the `VmForest` instruction-level
//! interpreter, plus the softfloat baseline), and every consumer — CLI,
//! benches, examples, equivalence tests — re-implemented the wiring.
//! Here they are all one thing:
//!
//! * [`Predictor`] — `predict_one` / `predict_batch` plus `name` /
//!   `describe` metadata; every engine aggregates by the same majority
//!   vote ([`flint_forest::RandomForest::predict_majority`]), so all
//!   registered engines are interchangeable prediction-for-prediction;
//! * [`EngineKind`] — the engine space: the five [`BackendKind`]
//!   if-else configurations × {scalar, blocked}, QuickScorer in both
//!   comparison modes, the three codegen VM variants, the 8-wide
//!   SIMD lane engine in both comparison modes, the template JIT
//!   in both comparison modes, and the half-precision lane engine in
//!   both comparison modes (21 engines;
//!   [`BackendKind::PAPER_SET`] maps to [`EngineKind::PAPER_SET`], a
//!   subset of this space);
//! * [`EngineBuilder`] — turns `(RandomForest, EngineKind,
//!   BatchOptions)` into a boxed engine, owning its compiled artifacts.
//!
//! This is the seam future work plugs into: an async micro-batch front
//! end queues rows into a [`FeatureMatrix`] and calls any `Predictor`
//! (the `flint-serve` front end does exactly that); the SIMD lane
//! kernels arrived as the `simd`/`simd-float` `EngineKind`s with zero
//! consumer changes; sharding partitions the `BatchOptions` spans
//! across engines on different nodes.
//!
//! ```
//! use flint_data::{synth::SynthSpec, FeatureMatrix};
//! use flint_exec::engine::{EngineBuilder, EngineKind};
//! use flint_forest::{ForestConfig, RandomForest};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = SynthSpec::new(150, 4, 3).generate();
//! let forest = RandomForest::fit(&data, &ForestConfig::grid(5, 7))?;
//! let matrix = FeatureMatrix::from_dataset(&data);
//! let builder = EngineBuilder::new(&forest).profile_data(&data);
//! let reference = forest.predict_dataset_majority(&data);
//! for kind in EngineKind::ALL {
//!     let engine = builder.build(kind)?;
//!     // `is_exact` engines are bit-identical to the f32 majority
//!     // vote; the f16 engines answer for their own binary16 family.
//!     if kind.is_exact() {
//!         assert_eq!(engine.predict_matrix(&matrix), reference, "{}", engine.name());
//!     }
//! }
//! # Ok(())
//! # }
//! ```

use crate::backend::{BackendKind, CompiledForest};
// `score_spans` is the batch module's span partitioner: reusing it here
// means every engine parallelizes over identical worker boundaries by
// construction.
use crate::batch::{score_spans, BatchEngine, BatchOptions};
use crate::compile::CompileTreeError;
use crate::dispatch::KernelPath;
use crate::f16::{HalfCompare, HalfForest, SimdF16Engine};
use crate::jit::{JitCompare, TieredJit};
use crate::simd::{lane_policy, SimdCompare, SimdEngine};
use flint_codegen::{VmForest, VmVariant};
use flint_data::{Dataset, FeatureMatrix};
use flint_forest::RandomForest;
use flint_qscorer::{QsCompare, QsForest};

/// A forest inference engine: one of the registered prediction paths,
/// compiled and ready to score.
///
/// All engines implement the same majority-vote aggregation (ties to
/// the lower class index), so any two registered engines of the same
/// precision built from the same forest return bit-identical labels on
/// every input — the workspace-wide generalization of the paper's
/// "accuracy unchanged" claim, asserted by
/// `tests/engine_equivalence.rs`. The binary16 engines
/// ([`EngineKind::is_exact`] is false) answer for their own f16
/// comparison family instead: bit-identical to [`HalfForest::predict`].
///
/// `Send + Sync` are explicit supertraits: a boxed engine is shared
/// across scoring workers by the `flint-serve` micro-batching front
/// end (as `Arc<dyn Predictor>`), so thread-unsafe engines are ruled
/// out at the trait boundary, not discovered at a spawn site.
pub trait Predictor: core::fmt::Debug + Send + Sync {
    /// Which registry entry this engine is.
    fn kind(&self) -> EngineKind;

    /// Expected feature vector length.
    fn n_features(&self) -> usize;

    /// Number of classes.
    fn n_classes(&self) -> usize;

    /// The batch options this engine was built with (used by
    /// [`predict_matrix`](Self::predict_matrix)).
    fn options(&self) -> BatchOptions;

    /// Scores one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features()`.
    fn predict_one(&self, features: &[f32]) -> u32;

    /// The per-class vote histogram behind
    /// [`predict_one`](Self::predict_one): `votes[c]` trees voted for
    /// class `c`, summing to the engine's tree count.
    ///
    /// This is the sharding seam of distributed inference: an engine
    /// built on a tree span reports its histogram, disjoint spans merge
    /// by element-wise addition, and the canonical
    /// `flint_forest::metrics::majority_vote` tie-break over the merged
    /// histogram is bit-identical to the single-node answer. Every
    /// engine must satisfy
    /// `majority_vote(predict_votes(x)) == predict_one(x)`.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features()`.
    fn predict_votes(&self, features: &[f32]) -> Vec<u32>;

    /// Scores every sample of `matrix` under explicit batch options,
    /// returning one class per sample. Options the engine cannot use
    /// are ignored (e.g. `block_trees` outside the blocked engines);
    /// `threads` is honored by every engine.
    ///
    /// # Panics
    ///
    /// Panics if `matrix.n_features()` differs from the model's.
    fn predict_batch(&self, matrix: &FeatureMatrix, opts: &BatchOptions) -> Vec<u32>;

    /// The engine's registry name (stable, CLI-addressable).
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// One-line human-readable description of the execution strategy.
    fn describe(&self) -> &'static str {
        self.kind().describe()
    }

    /// [`predict_batch`](Self::predict_batch) under the engine's own
    /// [`options`](Self::options).
    fn predict_matrix(&self, matrix: &FeatureMatrix) -> Vec<u32> {
        self.predict_batch(matrix, &self.options())
    }

    /// Convenience: transpose `data` and run
    /// [`predict_matrix`](Self::predict_matrix).
    ///
    /// # Panics
    ///
    /// Panics if the dataset's feature count differs from the model's.
    fn predict_dataset(&self, data: &Dataset) -> Vec<u32> {
        self.predict_matrix(&FeatureMatrix::from_dataset(data))
    }
}

/// One entry of the engine registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// One of the five if-else configurations, scored one sample at a
    /// time through [`CompiledForest::predict`].
    Scalar(BackendKind),
    /// The same configuration through the blocked, interleaved
    /// [`BatchEngine`] traversal.
    Blocked(BackendKind),
    /// QuickScorer per-feature threshold scans over leaf bitsets.
    QuickScorer(QsCompare),
    /// The instruction-level tree VM of `flint-codegen` (the executable
    /// stand-in for the paper's assembly backend).
    Vm(VmVariant),
    /// The 8-wide lane-parallel SIMD traversal
    /// ([`SimdEngine`]): lane groups of samples descend each tree
    /// through branchless compare/blend steps, with optional AVX2
    /// kernels behind the `simd-avx2` feature.
    Simd(SimdCompare),
    /// The tiered template JIT ([`TieredJit`]): tree programs emitted
    /// as x86-64 machine code in executable pages (`jit-x86` feature,
    /// x86-64 Linux), interpreting cold forests and falling back to
    /// the interpreter bit-identically where emitted code cannot run.
    Jit(JitCompare),
    /// The half-precision lane engine ([`SimdF16Engine`]): the same
    /// wave-interleaved branchless walk over 8-byte binary16 nodes and
    /// `u16` feature slabs — half the memory traffic per level. Its
    /// own comparison family: bit-identical to the scalar f16 walk
    /// ([`HalfForest::predict`]), *not* to the f32 majority vote
    /// (see [`EngineKind::is_exact`]).
    SimdF16(HalfCompare),
}

impl EngineKind {
    /// Every registered engine, in registry order: the five scalar
    /// if-else configurations, their blocked counterparts, QuickScorer
    /// in both comparison modes, the three VM variants, the SIMD
    /// lane engine in both comparison modes, the template JIT in
    /// both comparison modes, and the half-precision lane engine in
    /// both comparison modes.
    pub const ALL: [EngineKind; 21] = [
        EngineKind::Scalar(BackendKind::Naive),
        EngineKind::Scalar(BackendKind::Cags),
        EngineKind::Scalar(BackendKind::Flint),
        EngineKind::Scalar(BackendKind::CagsFlint),
        EngineKind::Scalar(BackendKind::SoftFloat),
        EngineKind::Blocked(BackendKind::Naive),
        EngineKind::Blocked(BackendKind::Cags),
        EngineKind::Blocked(BackendKind::Flint),
        EngineKind::Blocked(BackendKind::CagsFlint),
        EngineKind::Blocked(BackendKind::SoftFloat),
        EngineKind::QuickScorer(QsCompare::Flint),
        EngineKind::QuickScorer(QsCompare::Float),
        EngineKind::Vm(VmVariant::Flint),
        EngineKind::Vm(VmVariant::NativeFloat),
        EngineKind::Vm(VmVariant::SoftFloat),
        EngineKind::Simd(SimdCompare::Flint),
        EngineKind::Simd(SimdCompare::Float),
        EngineKind::Jit(JitCompare::Flint),
        EngineKind::Jit(JitCompare::Float),
        EngineKind::SimdF16(HalfCompare::Flint),
        EngineKind::SimdF16(HalfCompare::Float),
    ];

    /// The four configurations of the paper's Fig. 3, as engines —
    /// [`BackendKind::PAPER_SET`] embedded in the engine space.
    pub const PAPER_SET: [EngineKind; 4] = [
        EngineKind::Scalar(BackendKind::Naive),
        EngineKind::Scalar(BackendKind::Cags),
        EngineKind::Scalar(BackendKind::Flint),
        EngineKind::Scalar(BackendKind::CagsFlint),
    ];

    /// The stable registry name (what the CLI accepts).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Scalar(BackendKind::Naive) => "naive",
            EngineKind::Scalar(BackendKind::Cags) => "cags",
            EngineKind::Scalar(BackendKind::Flint) => "flint",
            EngineKind::Scalar(BackendKind::CagsFlint) => "cags-flint",
            EngineKind::Scalar(BackendKind::SoftFloat) => "softfloat",
            EngineKind::Blocked(BackendKind::Naive) => "naive-blocked",
            EngineKind::Blocked(BackendKind::Cags) => "cags-blocked",
            EngineKind::Blocked(BackendKind::Flint) => "flint-blocked",
            EngineKind::Blocked(BackendKind::CagsFlint) => "cags-flint-blocked",
            EngineKind::Blocked(BackendKind::SoftFloat) => "softfloat-blocked",
            EngineKind::QuickScorer(QsCompare::Flint) => "quickscorer",
            EngineKind::QuickScorer(QsCompare::Float) => "quickscorer-float",
            EngineKind::Vm(VmVariant::Flint) => "vm-flint",
            EngineKind::Vm(VmVariant::NativeFloat) => "vm-float",
            EngineKind::Vm(VmVariant::SoftFloat) => "vm-softfloat",
            EngineKind::Simd(SimdCompare::Flint) => "simd",
            EngineKind::Simd(SimdCompare::Float) => "simd-float",
            EngineKind::Jit(JitCompare::Flint) => "jit",
            EngineKind::Jit(JitCompare::Float) => "jit-float",
            EngineKind::SimdF16(HalfCompare::Flint) => "simd-f16",
            EngineKind::SimdF16(HalfCompare::Float) => "simd-f16-float",
        }
    }

    /// One-line description of the execution strategy.
    pub fn describe(self) -> &'static str {
        match self {
            EngineKind::Scalar(BackendKind::Naive) => {
                "scalar if-else trees, float compares, arena layout"
            }
            EngineKind::Scalar(BackendKind::Cags) => {
                "scalar if-else trees, float compares, CAGS cache-aware layout"
            }
            EngineKind::Scalar(BackendKind::Flint) => {
                "scalar if-else trees, FLInt integer compares, arena layout"
            }
            EngineKind::Scalar(BackendKind::CagsFlint) => {
                "scalar if-else trees, FLInt integer compares, CAGS layout"
            }
            EngineKind::Scalar(BackendKind::SoftFloat) => {
                "scalar if-else trees, software float compares (no-FPU baseline)"
            }
            EngineKind::Blocked(BackendKind::Naive) => {
                "tree-block x sample-block interleaved walk, float compares"
            }
            EngineKind::Blocked(BackendKind::Cags) => {
                "tree-block x sample-block interleaved walk, float compares, CAGS layout"
            }
            EngineKind::Blocked(BackendKind::Flint) => {
                "tree-block x sample-block interleaved walk, FLInt integer compares"
            }
            EngineKind::Blocked(BackendKind::CagsFlint) => {
                "tree-block x sample-block interleaved walk, FLInt compares, CAGS layout"
            }
            EngineKind::Blocked(BackendKind::SoftFloat) => {
                "tree-block x sample-block interleaved walk, software float compares"
            }
            EngineKind::QuickScorer(QsCompare::Flint) => {
                "QuickScorer per-feature threshold scans, FLInt order-key compares"
            }
            EngineKind::QuickScorer(QsCompare::Float) => {
                "QuickScorer per-feature threshold scans, float compares"
            }
            EngineKind::Vm(VmVariant::Flint) => {
                "instruction-level tree VM, integer loads and compares only"
            }
            EngineKind::Vm(VmVariant::NativeFloat) => {
                "instruction-level tree VM, float loads and fcmp"
            }
            EngineKind::Vm(VmVariant::SoftFloat) => {
                "instruction-level tree VM, software float comparison calls"
            }
            EngineKind::Simd(SimdCompare::Flint) => {
                "8-wide SIMD lane traversal, FLInt integer compares, branchless blend"
            }
            EngineKind::Simd(SimdCompare::Float) => {
                "8-wide SIMD lane traversal, float compares, branchless blend"
            }
            EngineKind::Jit(JitCompare::Flint) => {
                "tiered template JIT to x86-64 machine code, FLInt integer compares"
            }
            EngineKind::Jit(JitCompare::Float) => {
                "tiered template JIT to x86-64 machine code, float ucomiss compares"
            }
            EngineKind::SimdF16(HalfCompare::Flint) => {
                "8-wide lane traversal over 8-byte binary16 nodes, FLInt 16-bit compares"
            }
            EngineKind::SimdF16(HalfCompare::Float) => {
                "8-wide lane traversal over 8-byte binary16 nodes, widen-to-f32 compares"
            }
        }
    }

    /// Whether the engine is bit-identical to the f32 forest's
    /// majority vote on every input — true for all full-precision
    /// engines (the workspace-wide form of the paper's "accuracy
    /// unchanged" claim), false for the binary16 engines, which
    /// quantize thresholds and features to half precision and are
    /// instead bit-identical to their own scalar f16 reference
    /// ([`HalfForest::predict`]). Differential suites use this to pick
    /// the right reference per engine.
    pub fn is_exact(self) -> bool {
        !matches!(self, EngineKind::SimdF16(_))
    }

    /// Looks a registry name up (the inverse of
    /// [`name`](Self::name)), ignoring ASCII case. Returns `None` for
    /// unknown names; use the [`FromStr`](core::str::FromStr) impl
    /// when the caller needs an error that lists every valid name.
    pub fn parse(name: &str) -> Option<EngineKind> {
        EngineKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name))
    }
}

/// Error parsing an engine name: the offending input plus the full
/// registry, so a CLI typo comes back with every valid choice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEngineKindError {
    /// The name that matched nothing.
    pub unknown: String,
}

impl core::fmt::Display for ParseEngineKindError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let names: Vec<&str> = EngineKind::ALL.iter().map(|k| k.name()).collect();
        write!(
            f,
            "unknown engine {:?} (registered engines: {})",
            self.unknown,
            names.join("|")
        )
    }
}

impl std::error::Error for ParseEngineKindError {}

impl core::str::FromStr for EngineKind {
    type Err = ParseEngineKindError;

    /// Case-insensitive registry lookup; the error message lists every
    /// registered name.
    fn from_str(name: &str) -> Result<Self, Self::Err> {
        EngineKind::parse(name).ok_or_else(|| ParseEngineKindError {
            unknown: name.to_owned(),
        })
    }
}

impl core::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error building an engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum BuildEngineError {
    /// FLInt threshold preparation failed while compiling the if-else
    /// trees.
    Compile(CompileTreeError),
}

impl core::fmt::Display for BuildEngineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Compile(e) => write!(f, "engine compilation failed: {e}"),
        }
    }
}

impl std::error::Error for BuildEngineError {}

impl From<CompileTreeError> for BuildEngineError {
    fn from(e: CompileTreeError) -> Self {
        Self::Compile(e)
    }
}

/// The engine registry's constructor: binds a trained forest (plus
/// optional CAGS profiling data and default batch options) and builds
/// any [`EngineKind`] into a boxed [`Predictor`] owning its compiled
/// artifacts — the borrowed forest can be dropped afterwards.
///
/// # Examples
///
/// ```
/// use flint_data::synth::SynthSpec;
/// use flint_exec::engine::{EngineBuilder, EngineKind};
/// use flint_exec::BatchOptions;
/// use flint_forest::{ForestConfig, RandomForest};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = SynthSpec::new(120, 4, 2).generate();
/// let forest = RandomForest::fit(&data, &ForestConfig::grid(4, 6))?;
/// let engine = EngineBuilder::new(&forest)
///     .profile_data(&data)
///     .options(BatchOptions::default().threads(2))
///     .build(EngineKind::parse("flint-blocked").expect("registered"))?;
/// assert_eq!(engine.predict_one(data.sample(0)), forest.predict_majority(data.sample(0)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EngineBuilder<'f> {
    forest: &'f RandomForest,
    profile: Option<&'f Dataset>,
    opts: BatchOptions,
}

impl<'f> EngineBuilder<'f> {
    /// Binds `forest` with no profiling data and default options.
    pub fn new(forest: &'f RandomForest) -> Self {
        Self {
            forest,
            profile: None,
            opts: BatchOptions::default(),
        }
    }

    /// Sets the dataset CAGS layouts profile branch probabilities on
    /// (pass the training set, as the paper does).
    #[must_use]
    pub fn profile_data(mut self, data: &'f Dataset) -> Self {
        self.profile = Some(data);
        self
    }

    /// Sets the default batch options engines are bound to.
    #[must_use]
    pub fn options(mut self, opts: BatchOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Builds one engine.
    ///
    /// # Errors
    ///
    /// [`BuildEngineError`] if FLInt threshold preparation fails.
    pub fn build(&self, kind: EngineKind) -> Result<Box<dyn Predictor>, BuildEngineError> {
        Ok(match kind {
            EngineKind::Scalar(backend) => Box::new(ScalarEngine {
                forest: CompiledForest::compile(self.forest, backend, self.profile)?,
                opts: self.opts,
            }),
            EngineKind::Blocked(backend) => Box::new(BlockedEngine {
                forest: CompiledForest::compile(self.forest, backend, self.profile)?,
                opts: self.opts,
            }),
            EngineKind::QuickScorer(compare) => Box::new(QuickScorerEngine {
                qs: QsForest::build(self.forest),
                compare,
                opts: self.opts,
            }),
            EngineKind::Vm(variant) => Box::new(VmEngine {
                vm: VmForest::compile(self.forest, variant),
                variant,
                n_features: self.forest.n_features(),
                opts: self.opts,
            }),
            EngineKind::Simd(compare) => Box::new(SimdLaneEngine {
                forest: CompiledForest::compile(self.forest, compare.backend(), self.profile)?,
                compare,
                // The kernel path (and any FLINT_KERNEL override) is
                // resolved once here, at engine build time.
                path: lane_policy().select(),
                opts: self.opts,
            }),
            EngineKind::Jit(compare) => Box::new(JitEngine {
                tiered: TieredJit::new(self.forest, compare),
                opts: self.opts,
            }),
            EngineKind::SimdF16(compare) => Box::new(SimdF16LaneEngine {
                engine: SimdF16Engine::new(HalfForest::compile(self.forest, compare)?, self.opts),
            }),
        })
    }

    /// Builds every engine of the registry, in registry order.
    ///
    /// # Errors
    ///
    /// [`BuildEngineError`] from the first engine that fails to build.
    pub fn build_all(&self) -> Result<Vec<Box<dyn Predictor>>, BuildEngineError> {
        EngineKind::ALL.iter().map(|&k| self.build(k)).collect()
    }
}

/// Row-at-a-time scoring over a matrix span through a per-worker row
/// gather buffer — the shared batch shape of the scalar, QuickScorer
/// and VM engines (the blocked engine has its own interleaved walk).
fn score_rows(
    matrix: &FeatureMatrix,
    n_features: usize,
    opts: &BatchOptions,
    out: &mut [u32],
    predict: impl Fn(&[f32]) -> u32 + Sync,
) {
    score_spans(opts, out, |start, span| {
        let mut row = vec![0.0f32; n_features];
        for (k, slot) in span.iter_mut().enumerate() {
            matrix.gather_row(start + k, &mut row);
            *slot = predict(&row);
        }
    });
}

/// [`EngineKind::Scalar`]: the paper's measured shape — one sample at a
/// time through the flat if-else node arrays.
#[derive(Debug)]
struct ScalarEngine {
    forest: CompiledForest,
    opts: BatchOptions,
}

impl Predictor for ScalarEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Scalar(self.forest.kind())
    }

    fn n_features(&self) -> usize {
        self.forest.n_features()
    }

    fn n_classes(&self) -> usize {
        self.forest.n_classes()
    }

    fn options(&self) -> BatchOptions {
        self.opts
    }

    fn predict_one(&self, features: &[f32]) -> u32 {
        self.forest.predict(features)
    }

    fn predict_votes(&self, features: &[f32]) -> Vec<u32> {
        self.forest.predict_votes(features)
    }

    fn predict_batch(&self, matrix: &FeatureMatrix, opts: &BatchOptions) -> Vec<u32> {
        assert_eq!(
            matrix.n_features(),
            self.forest.n_features(),
            "feature matrix width"
        );
        let mut out = vec![0u32; matrix.n_samples()];
        score_rows(matrix, self.forest.n_features(), opts, &mut out, |row| {
            self.forest.predict(row)
        });
        out
    }
}

/// [`EngineKind::Blocked`]: the cache-blocked, interleaved
/// [`BatchEngine`] traversal.
#[derive(Debug)]
struct BlockedEngine {
    forest: CompiledForest,
    opts: BatchOptions,
}

impl Predictor for BlockedEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Blocked(self.forest.kind())
    }

    fn n_features(&self) -> usize {
        self.forest.n_features()
    }

    fn n_classes(&self) -> usize {
        self.forest.n_classes()
    }

    fn options(&self) -> BatchOptions {
        self.opts
    }

    fn predict_one(&self, features: &[f32]) -> u32 {
        self.forest.predict(features)
    }

    fn predict_votes(&self, features: &[f32]) -> Vec<u32> {
        self.forest.predict_votes(features)
    }

    fn predict_batch(&self, matrix: &FeatureMatrix, opts: &BatchOptions) -> Vec<u32> {
        BatchEngine::new(&self.forest, *opts).predict(matrix)
    }
}

/// [`EngineKind::QuickScorer`]: per-feature ascending threshold scans
/// over leaf reachability bitsets, with reusable scratch per worker.
#[derive(Debug)]
struct QuickScorerEngine {
    qs: QsForest,
    compare: QsCompare,
    opts: BatchOptions,
}

impl Predictor for QuickScorerEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::QuickScorer(self.compare)
    }

    fn n_features(&self) -> usize {
        self.qs.n_features()
    }

    fn n_classes(&self) -> usize {
        self.qs.n_classes()
    }

    fn options(&self) -> BatchOptions {
        self.opts
    }

    fn predict_one(&self, features: &[f32]) -> u32 {
        self.qs.predict(features, self.compare)
    }

    fn predict_votes(&self, features: &[f32]) -> Vec<u32> {
        self.qs
            .votes_with_scratch(features, self.compare, &mut self.qs.scratch())
            .to_vec()
    }

    fn predict_batch(&self, matrix: &FeatureMatrix, opts: &BatchOptions) -> Vec<u32> {
        assert_eq!(
            matrix.n_features(),
            self.qs.n_features(),
            "feature matrix width"
        );
        let mut out = vec![0u32; matrix.n_samples()];
        score_spans(opts, &mut out, |start, span| {
            // Per-worker scratch: bitsets, votes and the row buffer are
            // allocated once per span, not per sample.
            let mut scratch = self.qs.scratch();
            let mut row = vec![0.0f32; self.qs.n_features()];
            for (k, slot) in span.iter_mut().enumerate() {
                matrix.gather_row(start + k, &mut row);
                *slot = self
                    .qs
                    .predict_with_scratch(&row, self.compare, &mut scratch);
            }
        });
        out
    }
}

/// [`EngineKind::Vm`]: majority vote over per-tree bytecode programs
/// interpreted instruction by instruction (slow by design — it models
/// the paper's assembly backend for the cost simulator, but it is a
/// real prediction path and must agree with all the others).
#[derive(Debug)]
struct VmEngine {
    vm: VmForest,
    variant: VmVariant,
    n_features: usize,
    opts: BatchOptions,
}

impl Predictor for VmEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Vm(self.variant)
    }

    fn n_features(&self) -> usize {
        self.n_features
    }

    fn n_classes(&self) -> usize {
        self.vm.n_classes()
    }

    fn options(&self) -> BatchOptions {
        self.opts
    }

    fn predict_one(&self, features: &[f32]) -> u32 {
        assert_eq!(features.len(), self.n_features, "feature vector length");
        // Programs compiled from validated trees never fault on a
        // correctly sized feature vector.
        self.vm
            .run(features)
            .expect("compiled VM programs run to a return")
            .0
    }

    fn predict_votes(&self, features: &[f32]) -> Vec<u32> {
        assert_eq!(features.len(), self.n_features, "feature vector length");
        self.vm
            .run_votes(features)
            .expect("compiled VM programs run to a return")
            .0
    }

    fn predict_batch(&self, matrix: &FeatureMatrix, opts: &BatchOptions) -> Vec<u32> {
        assert_eq!(matrix.n_features(), self.n_features, "feature matrix width");
        let mut out = vec![0u32; matrix.n_samples()];
        score_rows(matrix, self.n_features, opts, &mut out, |row| {
            self.vm
                .run(row)
                .expect("compiled VM programs run to a return")
                .0
        });
        out
    }
}

/// [`EngineKind::Simd`]: the 8-wide lane-parallel traversal — lane
/// groups of samples walk each tree through branchless compare/blend
/// steps over zero-padded gathers. The kernel path (portable, AVX2 or
/// NEON) is dispatched once at build time through
/// [`lane_policy`], honoring the `FLINT_KERNEL` override, and
/// [`describe`](Predictor::describe) reports the path actually chosen.
#[derive(Debug)]
struct SimdLaneEngine {
    forest: CompiledForest,
    compare: SimdCompare,
    path: KernelPath,
    opts: BatchOptions,
}

/// The dispatch-aware description of the f32 lane engine: the base
/// strategy line with the resolved kernel path appended in the stable
/// `[kernel <path>]` suffix log scrapers key on.
fn simd_describe(compare: SimdCompare, path: KernelPath) -> &'static str {
    match (compare, path) {
        (SimdCompare::Flint, KernelPath::Portable) => {
            "8-wide SIMD lane traversal, FLInt integer compares, branchless blend [kernel portable]"
        }
        (SimdCompare::Flint, KernelPath::Avx2) => {
            "8-wide SIMD lane traversal, FLInt integer compares, branchless blend [kernel avx2]"
        }
        (SimdCompare::Flint, KernelPath::Neon) => {
            "8-wide SIMD lane traversal, FLInt integer compares, branchless blend [kernel neon]"
        }
        (SimdCompare::Float, KernelPath::Portable) => {
            "8-wide SIMD lane traversal, float compares, branchless blend [kernel portable]"
        }
        (SimdCompare::Float, KernelPath::Avx2) => {
            "8-wide SIMD lane traversal, float compares, branchless blend [kernel avx2]"
        }
        (SimdCompare::Float, KernelPath::Neon) => {
            "8-wide SIMD lane traversal, float compares, branchless blend [kernel neon]"
        }
    }
}

impl Predictor for SimdLaneEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Simd(self.compare)
    }

    fn n_features(&self) -> usize {
        self.forest.n_features()
    }

    fn n_classes(&self) -> usize {
        self.forest.n_classes()
    }

    fn options(&self) -> BatchOptions {
        self.opts
    }

    fn describe(&self) -> &'static str {
        simd_describe(self.compare, self.path)
    }

    fn predict_one(&self, features: &[f32]) -> u32 {
        self.forest.predict(features)
    }

    fn predict_votes(&self, features: &[f32]) -> Vec<u32> {
        self.forest.predict_votes(features)
    }

    fn predict_batch(&self, matrix: &FeatureMatrix, opts: &BatchOptions) -> Vec<u32> {
        SimdEngine::new(&self.forest, *opts)
            .with_kernel(self.path)
            .predict(matrix)
    }
}

/// [`EngineKind::SimdF16`]: the half-precision lane engine — the wave
/// walk of [`SimdLaneEngine`] over 8-byte binary16 nodes and `u16`
/// feature slabs. `predict_one` runs the family's scalar reference
/// ([`HalfForest::predict`]), so single-row and batched answers are
/// bit-identical by construction; [`describe`](Predictor::describe)
/// reports the dispatched kernel path.
#[derive(Debug)]
struct SimdF16LaneEngine {
    engine: SimdF16Engine,
}

/// The dispatch-aware description of the f16 lane engine (same
/// `[kernel <path>]` suffix contract as [`simd_describe`]).
fn simd_f16_describe(compare: HalfCompare, path: KernelPath) -> &'static str {
    match (compare, path) {
        (HalfCompare::Flint, KernelPath::Portable) => {
            "8-wide lane traversal over 8-byte binary16 nodes, FLInt 16-bit compares [kernel portable]"
        }
        (HalfCompare::Flint, KernelPath::Avx2) => {
            "8-wide lane traversal over 8-byte binary16 nodes, FLInt 16-bit compares [kernel avx2]"
        }
        (HalfCompare::Flint, KernelPath::Neon) => {
            "8-wide lane traversal over 8-byte binary16 nodes, FLInt 16-bit compares [kernel neon]"
        }
        (HalfCompare::Float, KernelPath::Portable) => {
            "8-wide lane traversal over 8-byte binary16 nodes, widen-to-f32 compares [kernel portable]"
        }
        (HalfCompare::Float, KernelPath::Avx2) => {
            "8-wide lane traversal over 8-byte binary16 nodes, widen-to-f32 compares [kernel avx2]"
        }
        (HalfCompare::Float, KernelPath::Neon) => {
            "8-wide lane traversal over 8-byte binary16 nodes, widen-to-f32 compares [kernel neon]"
        }
    }
}

impl Predictor for SimdF16LaneEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::SimdF16(self.engine.forest().compare())
    }

    fn n_features(&self) -> usize {
        self.engine.forest().n_features()
    }

    fn n_classes(&self) -> usize {
        self.engine.forest().n_classes()
    }

    fn options(&self) -> BatchOptions {
        self.engine.options()
    }

    fn describe(&self) -> &'static str {
        simd_f16_describe(self.engine.forest().compare(), self.engine.kernel_path())
    }

    fn predict_one(&self, features: &[f32]) -> u32 {
        self.engine.forest().predict(features)
    }

    fn predict_votes(&self, features: &[f32]) -> Vec<u32> {
        self.engine.forest().predict_votes(features)
    }

    fn predict_batch(&self, matrix: &FeatureMatrix, opts: &BatchOptions) -> Vec<u32> {
        self.engine.predict_with(matrix, opts)
    }
}

/// [`EngineKind::Jit`]: the tiered template JIT — interprets cold,
/// compiles the forest to native x86-64 code on first hot use, degrades
/// to the interpreter where emitted code cannot run. Unlike the other
/// engines, [`describe`](Predictor::describe) is overridden to report
/// the tier currently serving, so callers (and the fallback tests) can
/// see whether answers come from native code or the interpreter.
#[derive(Debug)]
struct JitEngine {
    tiered: TieredJit,
    opts: BatchOptions,
}

impl Predictor for JitEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Jit(self.tiered.compare())
    }

    fn n_features(&self) -> usize {
        self.tiered.n_features()
    }

    fn n_classes(&self) -> usize {
        self.tiered.n_classes()
    }

    fn options(&self) -> BatchOptions {
        self.opts
    }

    fn describe(&self) -> &'static str {
        self.tiered.describe()
    }

    fn predict_one(&self, features: &[f32]) -> u32 {
        self.tiered.predict(features)
    }

    fn predict_votes(&self, features: &[f32]) -> Vec<u32> {
        self.tiered.predict_votes(features)
    }

    fn predict_batch(&self, matrix: &FeatureMatrix, opts: &BatchOptions) -> Vec<u32> {
        assert_eq!(
            matrix.n_features(),
            self.tiered.n_features(),
            "feature matrix width"
        );
        let mut out = vec![0u32; matrix.n_samples()];
        score_rows(matrix, self.tiered.n_features(), opts, &mut out, |row| {
            self.tiered.predict(row)
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_data::synth::SynthSpec;
    use flint_forest::ForestConfig;

    fn setup() -> (Dataset, RandomForest) {
        let data = SynthSpec::new(180, 4, 3)
            .cluster_std(1.0)
            .negative_fraction(0.5)
            .seed(21)
            .generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(5, 7)).expect("trainable");
        (data, forest)
    }

    /// Every engine's vote histogram sums to one vote per tree, feeds
    /// the canonical tie-break back to its own `predict_one`, and — for
    /// the exact engines — equals the reference forest's histogram. And
    /// the sharding contract: engines of the same kind built on a
    /// ragged tree-span partition produce histograms whose element-wise
    /// merge equals the full engine's, so a distributed merge is
    /// bit-identical to single-node inference.
    #[test]
    fn every_engine_votes_consistently_and_shards_merge_exactly() {
        let (data, forest) = setup();
        let builder = EngineBuilder::new(&forest).profile_data(&data);
        // Ragged on purpose: 5 trees split 2/1/2.
        let spans = [(0usize, 2usize), (2, 3), (3, 5)];
        let shard_forests: Vec<RandomForest> =
            spans.iter().map(|&(a, b)| forest.tree_span(a, b)).collect();
        for kind in EngineKind::ALL {
            let engine = builder.build(kind).expect("buildable");
            let shards: Vec<Box<dyn Predictor>> = shard_forests
                .iter()
                .map(|f| {
                    EngineBuilder::new(f)
                        .profile_data(&data)
                        .build(kind)
                        .expect("buildable")
                })
                .collect();
            for i in 0..40 {
                let x = data.sample(i);
                let votes = engine.predict_votes(x);
                assert_eq!(votes.len(), forest.n_classes(), "{}", kind.name());
                assert_eq!(
                    votes.iter().sum::<u32>() as usize,
                    forest.n_trees(),
                    "{} sample {i}",
                    kind.name()
                );
                assert_eq!(
                    flint_forest::metrics::majority_vote(&votes),
                    engine.predict_one(x),
                    "{} sample {i}",
                    kind.name()
                );
                if kind.is_exact() {
                    assert_eq!(votes, forest.predict_votes(x), "{} sample {i}", kind.name());
                }
                let mut merged = vec![0u32; forest.n_classes()];
                for shard in &shards {
                    flint_forest::votes::merge_votes(&mut merged, &shard.predict_votes(x));
                }
                assert_eq!(merged, votes, "{} sharded merge sample {i}", kind.name());
            }
        }
    }

    #[test]
    fn registry_names_are_unique_and_parse_round_trips() {
        let mut seen = std::collections::BTreeSet::new();
        for kind in EngineKind::ALL {
            assert!(seen.insert(kind.name()), "duplicate name {}", kind.name());
            assert_eq!(EngineKind::parse(kind.name()), Some(kind));
            assert!(!kind.describe().is_empty());
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(EngineKind::parse("warp-drive"), None);
    }

    /// The anti-drift guard for the hand-maintained `ALL` array. The
    /// `match` below enumerates every `(outer, inner)` combination
    /// with **no wildcard at any level**, so growing `EngineKind` *or*
    /// any of its payload enums (`BackendKind`, `QsCompare`,
    /// `VmVariant`, `SimdCompare`, `HalfCompare`) refuses to compile here until the
    /// new engine is added to the match — and the match arms double as
    /// the reconstruction of the full engine space that `ALL` and
    /// `parse` are then checked against, so forgetting to register the
    /// new engine fails the assertions below instead of silently
    /// shrinking every registry-driven differential suite.
    #[test]
    fn registry_covers_the_entire_engine_space() {
        fn in_space(kind: EngineKind) {
            match kind {
                EngineKind::Scalar(BackendKind::Naive)
                | EngineKind::Scalar(BackendKind::Cags)
                | EngineKind::Scalar(BackendKind::Flint)
                | EngineKind::Scalar(BackendKind::CagsFlint)
                | EngineKind::Scalar(BackendKind::SoftFloat)
                | EngineKind::Blocked(BackendKind::Naive)
                | EngineKind::Blocked(BackendKind::Cags)
                | EngineKind::Blocked(BackendKind::Flint)
                | EngineKind::Blocked(BackendKind::CagsFlint)
                | EngineKind::Blocked(BackendKind::SoftFloat)
                | EngineKind::QuickScorer(QsCompare::Flint)
                | EngineKind::QuickScorer(QsCompare::Float)
                | EngineKind::Vm(VmVariant::Flint)
                | EngineKind::Vm(VmVariant::NativeFloat)
                | EngineKind::Vm(VmVariant::SoftFloat)
                | EngineKind::Simd(SimdCompare::Flint)
                | EngineKind::Simd(SimdCompare::Float)
                | EngineKind::Jit(JitCompare::Flint)
                | EngineKind::Jit(JitCompare::Float)
                | EngineKind::SimdF16(HalfCompare::Flint)
                | EngineKind::SimdF16(HalfCompare::Float) => {}
            }
        }
        let space = [
            EngineKind::Scalar(BackendKind::Naive),
            EngineKind::Scalar(BackendKind::Cags),
            EngineKind::Scalar(BackendKind::Flint),
            EngineKind::Scalar(BackendKind::CagsFlint),
            EngineKind::Scalar(BackendKind::SoftFloat),
            EngineKind::Blocked(BackendKind::Naive),
            EngineKind::Blocked(BackendKind::Cags),
            EngineKind::Blocked(BackendKind::Flint),
            EngineKind::Blocked(BackendKind::CagsFlint),
            EngineKind::Blocked(BackendKind::SoftFloat),
            EngineKind::QuickScorer(QsCompare::Flint),
            EngineKind::QuickScorer(QsCompare::Float),
            EngineKind::Vm(VmVariant::Flint),
            EngineKind::Vm(VmVariant::NativeFloat),
            EngineKind::Vm(VmVariant::SoftFloat),
            EngineKind::Simd(SimdCompare::Flint),
            EngineKind::Simd(SimdCompare::Float),
            EngineKind::Jit(JitCompare::Flint),
            EngineKind::Jit(JitCompare::Float),
            EngineKind::SimdF16(HalfCompare::Flint),
            EngineKind::SimdF16(HalfCompare::Float),
        ];
        assert_eq!(space.len(), EngineKind::ALL.len());
        for kind in space {
            in_space(kind);
            assert!(
                EngineKind::ALL.contains(&kind),
                "{} missing from EngineKind::ALL",
                kind.name()
            );
            assert_eq!(EngineKind::parse(kind.name()), Some(kind));
        }
        for kind in EngineKind::ALL {
            in_space(kind); // ALL ⊆ space; with equal lengths, equal sets
        }
    }

    #[test]
    fn parse_ignores_ascii_case() {
        for kind in EngineKind::ALL {
            assert_eq!(EngineKind::parse(&kind.name().to_uppercase()), Some(kind));
            assert_eq!(kind.name().parse::<EngineKind>(), Ok(kind));
        }
        assert_eq!(
            "QuickScorer".parse::<EngineKind>(),
            Ok(EngineKind::QuickScorer(QsCompare::Flint))
        );
    }

    #[test]
    fn parse_error_lists_every_registered_name() {
        let err = "warp-drive".parse::<EngineKind>().unwrap_err();
        let message = err.to_string();
        assert!(message.contains("warp-drive"), "{message}");
        for kind in EngineKind::ALL {
            assert!(message.contains(kind.name()), "{message}");
        }
    }

    #[test]
    fn boxed_engines_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn Predictor>();
        assert_send_sync::<Box<dyn Predictor>>();
        // The serve layer's exact shape: one engine, many workers.
        let (data, forest) = setup();
        let engine: std::sync::Arc<dyn Predictor> = std::sync::Arc::from(
            EngineBuilder::new(&forest)
                .build(EngineKind::Blocked(BackendKind::Flint))
                .expect("builds"),
        );
        let reference = forest.predict_dataset_majority(&data);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let engine = std::sync::Arc::clone(&engine);
                let data = &data;
                let reference = &reference;
                scope.spawn(move || {
                    assert_eq!(&engine.predict_dataset(data), reference);
                });
            }
        });
    }

    #[test]
    fn paper_set_is_a_subset_of_the_registry() {
        for (engine, backend) in EngineKind::PAPER_SET.iter().zip(BackendKind::PAPER_SET) {
            assert_eq!(*engine, EngineKind::Scalar(backend));
            assert!(EngineKind::ALL.contains(engine));
        }
    }

    /// The family reference the registry promises for `kind`: the f32
    /// majority vote for exact engines, the scalar f16 walk for the
    /// binary16 family.
    fn family_reference(forest: &RandomForest, kind: EngineKind, data: &Dataset) -> Vec<u32> {
        match kind {
            EngineKind::SimdF16(compare) => {
                let half = HalfForest::compile(forest, compare).expect("compiles");
                (0..data.n_samples())
                    .map(|i| half.predict(data.sample(i)))
                    .collect()
            }
            _ => forest.predict_dataset_majority(data),
        }
    }

    #[test]
    fn every_engine_agrees_with_its_family_reference() {
        let (data, forest) = setup();
        let matrix = FeatureMatrix::from_dataset(&data);
        let builder = EngineBuilder::new(&forest).profile_data(&data);
        for engine in builder.build_all().expect("all engines build") {
            let reference = family_reference(&forest, engine.kind(), &data);
            assert_eq!(engine.n_features(), forest.n_features());
            assert_eq!(engine.n_classes(), forest.n_classes());
            assert_eq!(
                engine.predict_matrix(&matrix),
                reference,
                "{}",
                engine.name()
            );
            assert_eq!(
                engine.predict_dataset(&data),
                reference,
                "{}",
                engine.name()
            );
            for i in (0..data.n_samples()).step_by(37) {
                assert_eq!(
                    engine.predict_one(data.sample(i)),
                    reference[i],
                    "{} sample {i}",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn exactness_partitions_the_registry_by_precision() {
        for kind in EngineKind::ALL {
            let is_f16 = kind.name().contains("f16");
            assert_eq!(kind.is_exact(), !is_f16, "{}", kind.name());
        }
    }

    #[test]
    fn describe_reports_the_dispatched_kernel_path() {
        let (data, forest) = setup();
        let builder = EngineBuilder::new(&forest).profile_data(&data);
        let dispatch_aware = ["simd", "simd-float", "simd-f16", "simd-f16-float"];
        for engine in builder.build_all().expect("all engines build") {
            let description = engine.describe();
            assert!(!description.is_empty(), "{}", engine.name());
            if dispatch_aware.contains(&engine.name()) {
                let expected = match engine.name() {
                    "simd" | "simd-float" => lane_policy().select(),
                    _ => {
                        let compare = match engine.kind() {
                            EngineKind::SimdF16(c) => c,
                            _ => unreachable!(),
                        };
                        crate::f16::f16_policy(compare).select()
                    }
                };
                let suffix = format!("[kernel {}]", expected.name());
                assert!(
                    description.ends_with(&suffix),
                    "{}: {description:?} should end with {suffix:?}",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn engines_honor_thread_and_block_options() {
        let (data, forest) = setup();
        let matrix = FeatureMatrix::from_dataset(&data);
        let reference = forest.predict_dataset_majority(&data);
        let builder = EngineBuilder::new(&forest).profile_data(&data);
        for kind in [
            EngineKind::Scalar(BackendKind::Flint),
            EngineKind::Blocked(BackendKind::CagsFlint),
            EngineKind::QuickScorer(QsCompare::Flint),
            EngineKind::Vm(VmVariant::Flint),
        ] {
            let engine = builder.build(kind).expect("builds");
            for block in [1usize, 7, 1000] {
                for threads in [1usize, 3] {
                    let opts = BatchOptions::default()
                        .block_samples(block)
                        .threads(threads);
                    assert_eq!(
                        engine.predict_batch(&matrix, &opts),
                        reference,
                        "{} block {block} threads {threads}",
                        engine.name()
                    );
                }
            }
        }
    }

    #[test]
    fn builder_options_bind_the_default_batch_shape() {
        let (data, forest) = setup();
        let opts = BatchOptions::default().block_samples(17).threads(2);
        let engine = EngineBuilder::new(&forest)
            .options(opts)
            .build(EngineKind::Blocked(BackendKind::Flint))
            .expect("builds");
        assert_eq!(engine.options(), opts);
        assert_eq!(
            engine.predict_matrix(&FeatureMatrix::from_dataset(&data)),
            forest.predict_dataset_majority(&data)
        );
    }

    #[test]
    fn empty_batch_is_empty_for_every_engine() {
        let (data, forest) = setup();
        let empty = FeatureMatrix::from_row_major(0, forest.n_features(), &[]);
        let builder = EngineBuilder::new(&forest).profile_data(&data);
        for engine in builder.build_all().expect("all engines build") {
            assert_eq!(engine.predict_matrix(&empty), Vec::<u32>::new());
        }
    }

    #[test]
    #[should_panic(expected = "feature matrix width")]
    fn wrong_width_panics_through_the_trait() {
        let (_, forest) = setup();
        let engine = EngineBuilder::new(&forest)
            .build(EngineKind::QuickScorer(QsCompare::Flint))
            .expect("builds");
        let bad = FeatureMatrix::from_row_major(1, 1, &[0.0]);
        let _ = engine.predict_matrix(&bad);
    }
}
