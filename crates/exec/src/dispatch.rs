//! Unified kernel-dispatch layer.
//!
//! Before this module, every fast path hand-rolled its own CPU
//! detection: the SIMD lane engine called `is_x86_feature_detected!`
//! per batch, the JIT checked arch/mmap availability on its own, and a
//! NEON port would have added a third copy. This module generalizes
//! the pattern into one seam:
//!
//! * [`KernelCaps`] — the host's accelerator capabilities, probed
//!   **once per process** (cached in a `OnceLock`): AVX2/FMA/F16C on
//!   x86-64, NEON on aarch64, nothing elsewhere;
//! * [`KernelPath`] — the concrete kernel family a dispatch-aware
//!   engine runs (`portable`, `avx2`, `neon`). Engines record the path
//!   chosen at build time and report it through
//!   [`Predictor::describe`](crate::engine::Predictor::describe), so
//!   logs always show what actually executed;
//! * [`KernelPolicy`] — a per-engine-family selection policy combining
//!   what is *compiled in* (feature gates and `cfg(target_arch)`),
//!   what the *CPU reports* ([`KernelCaps`]), and what the *user
//!   requests* via the [`KERNEL_ENV`] (`FLINT_KERNEL`) environment
//!   variable.
//!
//! The override contract is deliberately conservative: setting
//! `FLINT_KERNEL` yields either the requested path or the portable
//! one, never a *different* accelerated path. An unknown value, or a
//! request for a path that is not compiled in / not supported by the
//! CPU, degrades to portable — the one path that always exists and
//! that every differential suite pins to the scalar references.
//!
//! ```
//! use flint_exec::dispatch::{KernelCaps, KernelPath, KernelPolicy};
//!
//! let policy = KernelPolicy::PORTABLE_ONLY;
//! assert_eq!(policy.select_with(KernelCaps::get(), None), KernelPath::Portable);
//! ```

use std::fmt;
use std::sync::OnceLock;

/// Environment variable overriding kernel selection for every
/// dispatch-aware engine built afterwards: `FLINT_KERNEL=portable`,
/// `avx2` or `neon` (case-insensitive). Read at engine **build** time,
/// so a long-lived server keeps the path it was constructed with.
pub const KERNEL_ENV: &str = "FLINT_KERNEL";

/// Host accelerator capabilities, probed once per process.
///
/// Fields are plain `bool`s rather than an enum so a policy can
/// require conjunctions (e.g. the f16-float AVX2 kernel needs both
/// AVX2 *and* F16C for `vcvtph2ps`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCaps {
    /// AVX2 256-bit integer/float vectors (x86-64).
    pub avx2: bool,
    /// Fused multiply-add (x86-64; informational — no kernel requires
    /// it yet, but bench reports record it for cross-host comparison).
    pub fma: bool,
    /// F16C half↔single conversion (`vcvtph2ps`/`vcvtps2ph`, x86-64).
    pub f16c: bool,
    /// NEON/AdvSIMD 128-bit vectors (aarch64; baseline there).
    pub neon: bool,
}

impl KernelCaps {
    /// No accelerator features at all — what non-x86-64, non-aarch64
    /// hosts report, and a useful fixture for policy tests.
    pub const NONE: KernelCaps = KernelCaps {
        avx2: false,
        fma: false,
        f16c: false,
        neon: false,
    };

    /// Probes the running CPU. Prefer [`KernelCaps::get`], which
    /// caches the (immutable) answer process-wide.
    pub fn probe() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            KernelCaps {
                avx2: std::arch::is_x86_feature_detected!("avx2"),
                fma: std::arch::is_x86_feature_detected!("fma"),
                f16c: std::arch::is_x86_feature_detected!("f16c"),
                neon: false,
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            KernelCaps {
                avx2: false,
                fma: false,
                f16c: false,
                neon: std::arch::is_aarch64_feature_detected!("neon"),
            }
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            KernelCaps::NONE
        }
    }

    /// The process-wide capability snapshot (probed on first call).
    pub fn get() -> Self {
        static CAPS: OnceLock<KernelCaps> = OnceLock::new();
        *CAPS.get_or_init(KernelCaps::probe)
    }

    /// Compact `+`-joined summary (`"avx2+fma+f16c"`, `"neon"`, or
    /// `"none"`) — the form bench reports record.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        if self.avx2 {
            parts.push("avx2");
        }
        if self.fma {
            parts.push("fma");
        }
        if self.f16c {
            parts.push("f16c");
        }
        if self.neon {
            parts.push("neon");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }
}

/// The kernel family a dispatch-aware engine actually runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelPath {
    /// Portable lane loops (autovectorized by LLVM; every engine
    /// family has this path and every differential suite pins it to
    /// the scalar references).
    Portable,
    /// `std::arch` AVX2 intrinsics (x86-64, `simd-avx2` feature).
    Avx2,
    /// `std::arch` NEON intrinsics (aarch64).
    Neon,
}

impl KernelPath {
    /// Stable lowercase name — also the accepted [`KERNEL_ENV`] value.
    pub fn name(self) -> &'static str {
        match self {
            KernelPath::Portable => "portable",
            KernelPath::Avx2 => "avx2",
            KernelPath::Neon => "neon",
        }
    }

    /// Parses a [`KERNEL_ENV`] value (case-insensitive, trimmed).
    /// `None` for anything unrecognized.
    pub fn parse(s: &str) -> Option<KernelPath> {
        let s = s.trim();
        [KernelPath::Portable, KernelPath::Avx2, KernelPath::Neon]
            .into_iter()
            .find(|path| s.eq_ignore_ascii_case(path.name()))
    }
}

impl fmt::Display for KernelPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-engine-family kernel selection policy: which accelerated
/// kernels this family has **compiled in**. Combine with the CPU caps
/// and the environment override through [`KernelPolicy::select`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelPolicy {
    /// The family has an AVX2 kernel built in (feature + arch gates
    /// already folded in via `cfg!`).
    pub avx2: bool,
    /// The family's AVX2 kernel additionally requires F16C (the
    /// half→single widening conversion).
    pub f16c_required: bool,
    /// The family has a NEON kernel built in.
    pub neon: bool,
}

impl KernelPolicy {
    /// A family with no accelerated kernels at all (e.g. the soft-float
    /// comparison walk): always selects [`KernelPath::Portable`].
    pub const PORTABLE_ONLY: KernelPolicy = KernelPolicy {
        avx2: false,
        f16c_required: false,
        neon: false,
    };

    /// Selects the kernel path for an engine being built now: the
    /// compiled-in kernels of this policy, gated by the process-wide
    /// [`KernelCaps`], overridden by [`KERNEL_ENV`] if set.
    pub fn select(&self) -> KernelPath {
        let requested = std::env::var(KERNEL_ENV).ok();
        self.select_with(KernelCaps::get(), requested.as_deref())
    }

    /// Pure selection core (unit-testable without touching process
    /// environment or CPUID): `caps` is the capability snapshot,
    /// `requested` the raw [`KERNEL_ENV`] value if any.
    ///
    /// An explicit request yields the requested path when it is
    /// compiled in and supported, otherwise [`KernelPath::Portable`] —
    /// never a different accelerated path. Unknown request strings
    /// also degrade to portable. With no request, the fastest
    /// available path wins.
    pub fn select_with(&self, caps: KernelCaps, requested: Option<&str>) -> KernelPath {
        let avx2_ok = self.avx2 && caps.avx2 && (!self.f16c_required || caps.f16c);
        let neon_ok = self.neon && caps.neon;
        match requested {
            Some(raw) => match KernelPath::parse(raw) {
                Some(KernelPath::Avx2) if avx2_ok => KernelPath::Avx2,
                Some(KernelPath::Neon) if neon_ok => KernelPath::Neon,
                // `portable` requested, unsatisfiable request, or an
                // unknown value: the predictable fallback.
                _ => KernelPath::Portable,
            },
            None => {
                if avx2_ok {
                    KernelPath::Avx2
                } else if neon_ok {
                    KernelPath::Neon
                } else {
                    KernelPath::Portable
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_X86: KernelCaps = KernelCaps {
        avx2: true,
        fma: true,
        f16c: true,
        neon: false,
    };
    const AVX2_NO_F16C: KernelCaps = KernelCaps {
        avx2: true,
        fma: true,
        f16c: false,
        neon: false,
    };
    const ARM: KernelCaps = KernelCaps {
        avx2: false,
        fma: false,
        f16c: false,
        neon: true,
    };
    const FULL_POLICY: KernelPolicy = KernelPolicy {
        avx2: true,
        f16c_required: false,
        neon: true,
    };
    const F16C_POLICY: KernelPolicy = KernelPolicy {
        avx2: true,
        f16c_required: true,
        neon: false,
    };

    #[test]
    fn caps_probe_is_cached_and_consistent() {
        assert_eq!(KernelCaps::get(), KernelCaps::get());
        assert_eq!(KernelCaps::get(), KernelCaps::probe());
        // NEON and AVX2 are different ISAs; no host reports both.
        let caps = KernelCaps::get();
        assert!(!(caps.avx2 && caps.neon));
    }

    #[test]
    fn caps_summary_formats() {
        assert_eq!(KernelCaps::NONE.summary(), "none");
        assert_eq!(ALL_X86.summary(), "avx2+fma+f16c");
        assert_eq!(ARM.summary(), "neon");
        assert_eq!(AVX2_NO_F16C.summary(), "avx2+fma");
    }

    #[test]
    fn path_names_parse_round_trip() {
        for path in [KernelPath::Portable, KernelPath::Avx2, KernelPath::Neon] {
            assert_eq!(KernelPath::parse(path.name()), Some(path));
            assert_eq!(
                KernelPath::parse(&path.name().to_uppercase()),
                Some(path),
                "case-insensitive"
            );
            assert_eq!(
                KernelPath::parse(&format!("  {} ", path.name())),
                Some(path),
                "trimmed"
            );
            assert_eq!(path.to_string(), path.name());
        }
        assert_eq!(KernelPath::parse("sse9"), None);
        assert_eq!(KernelPath::parse(""), None);
    }

    #[test]
    fn auto_selection_prefers_fastest_available() {
        assert_eq!(FULL_POLICY.select_with(ALL_X86, None), KernelPath::Avx2);
        assert_eq!(FULL_POLICY.select_with(ARM, None), KernelPath::Neon);
        assert_eq!(
            FULL_POLICY.select_with(KernelCaps::NONE, None),
            KernelPath::Portable
        );
        assert_eq!(
            KernelPolicy::PORTABLE_ONLY.select_with(ALL_X86, None),
            KernelPath::Portable
        );
    }

    #[test]
    fn explicit_request_is_honored_when_satisfiable() {
        assert_eq!(
            FULL_POLICY.select_with(ALL_X86, Some("avx2")),
            KernelPath::Avx2
        );
        assert_eq!(
            FULL_POLICY.select_with(ALL_X86, Some("AVX2")),
            KernelPath::Avx2
        );
        assert_eq!(FULL_POLICY.select_with(ARM, Some("neon")), KernelPath::Neon);
        assert_eq!(
            FULL_POLICY.select_with(ALL_X86, Some("portable")),
            KernelPath::Portable
        );
    }

    #[test]
    fn unsatisfiable_or_unknown_requests_degrade_to_portable() {
        // Requested but not supported by the CPU.
        assert_eq!(
            FULL_POLICY.select_with(KernelCaps::NONE, Some("avx2")),
            KernelPath::Portable
        );
        // Requested but not compiled in for this family.
        assert_eq!(
            KernelPolicy::PORTABLE_ONLY.select_with(ALL_X86, Some("avx2")),
            KernelPath::Portable
        );
        // Cross-ISA request never silently switches accelerators.
        assert_eq!(
            FULL_POLICY.select_with(ALL_X86, Some("neon")),
            KernelPath::Portable
        );
        // Unknown strings degrade rather than panic.
        assert_eq!(
            FULL_POLICY.select_with(ALL_X86, Some("avx512")),
            KernelPath::Portable
        );
        assert_eq!(
            FULL_POLICY.select_with(ALL_X86, Some("")),
            KernelPath::Portable
        );
    }

    #[test]
    fn f16c_requirement_gates_avx2() {
        assert_eq!(F16C_POLICY.select_with(ALL_X86, None), KernelPath::Avx2);
        assert_eq!(
            F16C_POLICY.select_with(AVX2_NO_F16C, None),
            KernelPath::Portable
        );
        assert_eq!(
            F16C_POLICY.select_with(AVX2_NO_F16C, Some("avx2")),
            KernelPath::Portable
        );
    }
}
