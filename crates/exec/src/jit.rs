//! The in-process template JIT: tree programs compiled to executable
//! x86-64 machine code.
//!
//! The paper's headline numbers come from lowering trees to
//! straight-line integer compare/branch machine code (Listing 5). The
//! `vm-*` engines execute that instruction stream faithfully but
//! through an interpreter dispatch loop, so the repo *simulated* the
//! paper's fastest path instead of running it. This module closes the
//! codegen loop: the same [`TreeProgram`]s the interpreter executes
//! (one shared lowering — the backends cannot drift) are emitted as
//! native machine code into `mmap`'d pages and called directly.
//!
//! Three layers, from portable to platform-bound:
//!
//! * [`EmittedCode`] — the **template emitter**. Pure safe code, runs
//!   on every platform (unit-testable without executing anything):
//!   each [`Instr`] maps to a prebuilt x86-64 byte fragment
//!   (load-feature-word / materialize-immediate / sign-flip / compare /
//!   branch / return-leaf), stitched sequentially with branch targets
//!   patched as `rel32` offsets after emission. Every tree of a forest
//!   lands in one contiguous code buffer with per-tree entry offsets.
//! * `CodeBuf` (behind `jit-x86` on x86-64 Linux) — the executable
//!   memory island: `mmap(PROT_READ|PROT_WRITE)` → copy code →
//!   `mprotect(PROT_READ|PROT_EXEC)`, so no page is ever writable and
//!   executable at once (W^X). Raw `extern "C"` declarations — std
//!   already links libc; no new dependency.
//! * [`TieredJit`] — the compile-tier policy. Trees start **cold** and
//!   are interpreted by the bytecode VM; once a forest has scored
//!   [`DEFAULT_HOT_AFTER`] samples it is compiled (once, thread-safe)
//!   and subsequent predictions run native. If the platform lacks the
//!   feature, the architecture is wrong, or the mapping fails (also
//!   forced by the [`FORCE_FALLBACK_ENV`] test knob), the tier degrades
//!   to a permanent interpreter **fallback** — bit-identical answers,
//!   just slower. [`TieredJit::describe`] reports which tier serves.
//!
//! ## Emitted code shape
//!
//! Each tree becomes one `extern "C" fn(*const f32) -> u32`: `rdi`
//! holds the feature pointer, `eax` returns the class. The generated
//! body uses only `esi` (loaded feature word), `edx` (materialized
//! threshold key), `xmm0`/`xmm1` (float family) — caller-saved
//! registers, so there is no prologue, no stack frame and no call: a
//! root-to-leaf run is exactly the Listing-5 instruction sequence.
//!
//! Comparison semantics match the interpreter bit for bit:
//!
//! * integer family: `cmp esi, edx` then `jg`/`jl` — the signed
//!   compare of the FLInt order keys;
//! * float family: `ucomiss xmm0, xmm1` then `ja`. `ja` is taken iff
//!   `x > y` with no unordered operand, so a NaN feature falls to the
//!   left child — exactly the interpreter's `flag_gt = x > y` (false
//!   for NaN).

use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use flint_codegen::{Instr, TreeProgram, VmForest, VmVariant};
use flint_forest::RandomForest;

/// Comparison family a JIT engine compiles with — the JIT analogue of
/// the interpreter's [`VmVariant`] (the softfloat variant calls a
/// runtime routine and is interpreter-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JitCompare {
    /// FLInt integer order-key compares (`cmp` + `jg`/`jl`).
    Flint,
    /// Native float compares (`ucomiss` + `ja`).
    Float,
}

impl JitCompare {
    /// The tree-program variant this family compiles.
    pub fn variant(self) -> VmVariant {
        match self {
            JitCompare::Flint => VmVariant::Flint,
            JitCompare::Float => VmVariant::NativeFloat,
        }
    }
}

/// Samples a [`TieredJit`] interprets before compiling to native code —
/// keeps the (sub-millisecond, but nonzero) emit+mmap cost off the
/// build and serve-startup paths while letting any real batch reach the
/// native tier almost immediately.
pub const DEFAULT_HOT_AFTER: u64 = 64;

/// Environment knob forcing executable-memory allocation to fail, so
/// the interpreter-fallback path is testable on machines where `mmap`
/// works. Checked once per compile attempt; any non-empty value
/// triggers the failure.
pub const FORCE_FALLBACK_ENV: &str = "FLINT_JIT_FORCE_FALLBACK";

/// `true` when this build can execute emitted code: the `jit-x86`
/// feature is on and the target is x86-64 Linux. When `false`, the
/// `jit`/`jit-float` engines still build and answer — permanently on
/// the interpreter fallback tier.
pub fn jit_supported() -> bool {
    cfg!(all(
        feature = "jit-x86",
        target_arch = "x86_64",
        target_os = "linux"
    ))
}

/// Error lowering or mapping a JIT program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JitError {
    /// This build cannot execute emitted code (feature off or wrong
    /// platform); callers fall back to the interpreter.
    UnsupportedPlatform,
    /// The [`FORCE_FALLBACK_ENV`] knob is set (test-only failure
    /// injection).
    ForcedFallback,
    /// `mmap` or `mprotect` refused the executable mapping.
    MapFailed,
    /// The program contains an instruction with no x86-64 template
    /// (e.g. the 64-bit or softfloat forms, which are interpreter-only).
    UnsupportedInstr {
        /// Name of the untemplated instruction.
        instr: &'static str,
    },
    /// A register outside the two-register Listing-5 shape.
    BadRegister,
    /// A branch target outside the program.
    BadBranchTarget {
        /// The offending instruction index.
        target: u32,
    },
    /// A conditional branch not preceded by a compare (malformed
    /// program; never produced by the lowering).
    BranchWithoutCompare,
    /// A feature offset at or past the declared feature count — the
    /// emitted loads would read out of bounds, so compilation refuses.
    FeatureOutOfRange {
        /// The offending feature index.
        offset: u32,
        /// The declared feature vector length.
        n_features: usize,
    },
}

impl core::fmt::Display for JitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UnsupportedPlatform => {
                write!(f, "JIT unsupported on this build/platform")
            }
            Self::ForcedFallback => {
                write!(f, "JIT disabled by {FORCE_FALLBACK_ENV}")
            }
            Self::MapFailed => write!(f, "executable memory mapping failed"),
            Self::UnsupportedInstr { instr } => {
                write!(f, "no x86-64 template for instruction {instr}")
            }
            Self::BadRegister => write!(f, "register outside the two-register program shape"),
            Self::BadBranchTarget { target } => {
                write!(f, "branch target {target} outside the program")
            }
            Self::BranchWithoutCompare => {
                write!(f, "conditional branch without a preceding compare")
            }
            Self::FeatureOutOfRange { offset, n_features } => {
                write!(
                    f,
                    "feature offset {offset} outside the {n_features}-feature vector"
                )
            }
        }
    }
}

impl std::error::Error for JitError {}

/// `ModRM.rm` bits for `[rdi + disp32]` addressing (`mod = 10`).
const RDI_DISP32: u8 = 0x80 | 0x07;

/// Integer program register → x86-64 register bits: reg 1 is `esi`,
/// reg 2 is `edx` (both caller-saved, neither aliases `rdi`/`eax`).
fn int_reg(r: u8) -> Result<u8, JitError> {
    match r {
        1 => Ok(6), // esi
        2 => Ok(2), // edx
        _ => Err(JitError::BadRegister),
    }
}

/// Float program register → xmm register bits: reg 1 is `xmm0`, reg 2
/// is `xmm1`.
fn xmm_reg(r: u8) -> Result<u8, JitError> {
    match r {
        1 => Ok(0),
        2 => Ok(1),
        _ => Err(JitError::BadRegister),
    }
}

/// Byte displacement of feature `offset`, bounds-checked against the
/// feature vector the emitted loads will index.
fn feature_disp(offset: u32, n_features: usize) -> Result<i32, JitError> {
    if (offset as usize) < n_features {
        // n_features-bounded offsets times four always fit an i32 for
        // any feature vector that fits in memory.
        i32::try_from(u64::from(offset) * 4)
            .map_err(|_| JitError::FeatureOutOfRange { offset, n_features })
    } else {
        Err(JitError::FeatureOutOfRange { offset, n_features })
    }
}

/// Which compare family most recently set the flags — decides the
/// branch template (`jg`/`jl` consume integer flags, `ja` consumes the
/// `ucomiss` carry/zero encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpFamily {
    None,
    Int,
    Float,
}

/// A forest's tree programs emitted as x86-64 machine code: one
/// contiguous byte buffer plus per-tree entry offsets. Produced by the
/// portable template emitter — building this value involves no unsafe
/// code and works on every platform; only *executing* it requires the
/// `CodeBuf` mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmittedCode {
    code: Vec<u8>,
    entries: Vec<usize>,
}

impl EmittedCode {
    /// Emits every program into one buffer, recording each tree's entry
    /// offset. `n_features` bounds the feature loads the code will
    /// perform (callers must pass feature slices of exactly that
    /// length).
    ///
    /// # Errors
    ///
    /// [`JitError`] if a program contains an untemplated instruction,
    /// an out-of-shape register, a malformed branch, or a feature
    /// offset at or past `n_features`.
    pub fn emit(programs: &[TreeProgram], n_features: usize) -> Result<Self, JitError> {
        let mut code = Vec::new();
        let mut entries = Vec::with_capacity(programs.len());
        for program in programs {
            entries.push(code.len());
            emit_program(&mut code, program, n_features)?;
        }
        Ok(Self { code, entries })
    }

    /// The emitted machine code.
    pub fn code(&self) -> &[u8] {
        &self.code
    }

    /// Per-tree entry offsets into [`code`](Self::code), in tree order.
    pub fn entries(&self) -> &[usize] {
        &self.entries
    }
}

/// Emits one program's templates into `code`, then patches every
/// branch's `rel32` once all instruction byte offsets are known.
fn emit_program(
    code: &mut Vec<u8>,
    program: &TreeProgram,
    n_features: usize,
) -> Result<(), JitError> {
    let instrs = program.instrs();
    // Byte offset (within `code`) where each instruction's template
    // starts — the patch table for branch targets.
    let mut offsets = vec![0usize; instrs.len()];
    // (position of a rel32 placeholder, target instruction index).
    let mut fixups: Vec<(usize, u32)> = Vec::new();
    let mut last_cmp = CmpFamily::None;
    let branch_to =
        |code: &mut Vec<u8>, fixups: &mut Vec<(usize, u32)>, target: u32| -> Result<(), JitError> {
            if target as usize >= instrs.len() {
                return Err(JitError::BadBranchTarget { target });
            }
            fixups.push((code.len(), target));
            code.extend_from_slice(&[0; 4]);
            Ok(())
        };
    for (idx, instr) in instrs.iter().enumerate() {
        offsets[idx] = code.len();
        match *instr {
            Instr::LoadWord { dst, offset } => {
                // mov r32, [rdi + offset*4] — the feature word as its
                // integer bit pattern.
                let disp = feature_disp(offset, n_features)?;
                code.push(0x8B);
                code.push(RDI_DISP32 | (int_reg(dst)? << 3));
                code.extend_from_slice(&disp.to_le_bytes());
            }
            Instr::LoadFloat { dst, offset } => {
                // movss xmm, [rdi + offset*4]
                let disp = feature_disp(offset, n_features)?;
                code.extend_from_slice(&[0xF3, 0x0F, 0x10]);
                code.push(RDI_DISP32 | (xmm_reg(dst)? << 3));
                code.extend_from_slice(&disp.to_le_bytes());
            }
            Instr::Movz { dst, imm } => {
                // mov r32, imm32 — zero-extends the 16-bit immediate
                // like movz, and clears the upper half the following
                // Movk template merges into.
                code.push(0xB8 + int_reg(dst)?);
                code.extend_from_slice(&u32::from(imm).to_le_bytes());
            }
            Instr::Movk { dst, imm, shift } => {
                if shift != 16 {
                    // 64-bit four-part immediates are interpreter-only.
                    return Err(JitError::UnsupportedInstr {
                        instr: "Movk{shift>16}",
                    });
                }
                // Compositional movk: clear bits 16..32, then OR the
                // field in — correct regardless of the register's prior
                // contents, like the real movk.
                let r = int_reg(dst)?;
                code.extend_from_slice(&[0x81, 0xE0 | r]); // and r32, 0x0000FFFF
                code.extend_from_slice(&0x0000_FFFFu32.to_le_bytes());
                code.extend_from_slice(&[0x81, 0xC8 | r]); // or r32, imm<<16
                code.extend_from_slice(&(u32::from(imm) << 16).to_le_bytes());
            }
            Instr::LoadFloatConst { dst, value } => {
                // mov edx, bits ; movd xmm, edx — materialize the
                // threshold without a literal pool (no data section to
                // relocate). edx is free scratch here: float-family
                // programs contain no integer compares.
                code.push(0xBA);
                code.extend_from_slice(&value.to_bits().to_le_bytes());
                code.extend_from_slice(&[0x66, 0x0F, 0x6E]);
                code.push(0xC0 | (xmm_reg(dst)? << 3) | 0x02);
            }
            Instr::EorSign { dst } => {
                // xor r32, 0x80000000 — the FLInt negative-threshold
                // sign flip.
                code.extend_from_slice(&[0x81, 0xF0 | int_reg(dst)?]);
                code.extend_from_slice(&0x8000_0000u32.to_le_bytes());
            }
            Instr::Cmp { a, b } => {
                // cmp r/m32(a), r32(b) — signed flags for a vs b.
                code.push(0x39);
                code.push(0xC0 | (int_reg(b)? << 3) | int_reg(a)?);
                last_cmp = CmpFamily::Int;
            }
            Instr::Fcmp { a, b } => {
                // ucomiss xmm(a), xmm(b)
                code.extend_from_slice(&[0x0F, 0x2E]);
                code.push(0xC0 | (xmm_reg(a)? << 3) | xmm_reg(b)?);
                last_cmp = CmpFamily::Float;
            }
            Instr::BranchGt { target } => {
                match last_cmp {
                    // jg — signed greater-than over the integer flags.
                    CmpFamily::Int => code.extend_from_slice(&[0x0F, 0x8F]),
                    // ja — above over the ucomiss flags: taken iff
                    // x > y ordered, NOT taken on NaN, exactly the
                    // interpreter's flag_gt.
                    CmpFamily::Float => code.extend_from_slice(&[0x0F, 0x87]),
                    CmpFamily::None => return Err(JitError::BranchWithoutCompare),
                }
                branch_to(code, &mut fixups, target)?;
            }
            Instr::BranchLt { target } => {
                match last_cmp {
                    // jl — signed less-than; the lowering only emits
                    // BranchLt in the integer family (flipped-sign
                    // FLInt splits).
                    CmpFamily::Int => code.extend_from_slice(&[0x0F, 0x8C]),
                    CmpFamily::Float | CmpFamily::None => {
                        return Err(JitError::BranchWithoutCompare)
                    }
                }
                branch_to(code, &mut fixups, target)?;
            }
            Instr::Jump { target } => {
                code.push(0xE9);
                branch_to(code, &mut fixups, target)?;
            }
            Instr::Ret { class } => {
                // mov eax, class ; ret
                code.push(0xB8);
                code.extend_from_slice(&class.to_le_bytes());
                code.push(0xC3);
            }
            Instr::LoadDword { .. } => {
                return Err(JitError::UnsupportedInstr { instr: "LoadDword" })
            }
            Instr::LoadDouble { .. } => {
                return Err(JitError::UnsupportedInstr {
                    instr: "LoadDouble",
                })
            }
            Instr::LoadDoubleConst { .. } => {
                return Err(JitError::UnsupportedInstr {
                    instr: "LoadDoubleConst",
                })
            }
            Instr::EorSign64 { .. } => {
                return Err(JitError::UnsupportedInstr { instr: "EorSign64" })
            }
            Instr::Cmp64 { .. } => return Err(JitError::UnsupportedInstr { instr: "Cmp64" }),
            Instr::SoftCmp { .. } => return Err(JitError::UnsupportedInstr { instr: "SoftCmp" }),
            Instr::SoftCmp64 { .. } => {
                return Err(JitError::UnsupportedInstr { instr: "SoftCmp64" })
            }
        }
    }
    for (pos, target) in fixups {
        let rel = offsets[target as usize] as i64 - (pos as i64 + 4);
        let rel = i32::try_from(rel).map_err(|_| JitError::BadBranchTarget { target })?;
        code[pos..pos + 4].copy_from_slice(&rel.to_le_bytes());
    }
    Ok(())
}

/// The executable-memory half: only compiled where emitted code can
/// actually run. Everything `unsafe` in the JIT lives here, behind the
/// same explicit-allow pattern as the AVX2 kernel island.
///
/// Soundness argument for executing emitted code:
///
/// * `CodeBuf::map` copies the emitter's output into a fresh anonymous
///   private mapping and flips it `PROT_READ|PROT_EXEC` before any call
///   (W^X: never writable and executable at once);
/// * every entry offset comes from [`EmittedCode::entries`], so each
///   points at a `mov`/`movss` template head emitted for that tree, and
///   every branch inside a tree was patched to another instruction head
///   of the same tree — control flow cannot leave the buffer except
///   through `ret`;
/// * the generated code reads only `[rdi + offset*4]` with `offset`
///   checked against `n_features` at emit time, and
///   [`JitForest::predict`] asserts the feature slice is exactly
///   `n_features` long before passing its pointer;
/// * only caller-saved registers (`eax`, `esi`, `edx`, `xmm0`, `xmm1`)
///   are written and the stack is untouched, so the `extern "C"` call
///   contract holds trivially.
#[cfg(all(feature = "jit-x86", target_arch = "x86_64", target_os = "linux"))]
#[allow(unsafe_code)]
mod native {
    use super::JitError;

    /// Raw libc bindings — the container is offline, but std links libc
    /// already, so declaring the three calls we need costs nothing.
    mod sys {
        use core::ffi::c_void;

        pub const PROT_READ: i32 = 1;
        pub const PROT_WRITE: i32 = 2;
        pub const PROT_EXEC: i32 = 4;
        pub const MAP_PRIVATE: i32 = 2;
        pub const MAP_ANONYMOUS: i32 = 0x20;

        extern "C" {
            pub fn mmap(
                addr: *mut c_void,
                len: usize,
                prot: i32,
                flags: i32,
                fd: i32,
                offset: i64,
            ) -> *mut c_void;
            pub fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
            pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        }
    }

    /// An owned `PROT_READ|PROT_EXEC` mapping holding emitted code.
    pub struct CodeBuf {
        ptr: *mut u8,
        len: usize,
    }

    // SAFETY: after `map` returns, the mapping is read+execute only and
    // is never written again; concurrent reads/calls from any thread
    // are data-race-free, and the pointer is exclusively owned (unmap
    // happens only in Drop).
    unsafe impl Send for CodeBuf {}
    // SAFETY: as above — the mapping is immutable for the lifetime of
    // the value.
    unsafe impl Sync for CodeBuf {}

    impl core::fmt::Debug for CodeBuf {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.debug_struct("CodeBuf").field("len", &self.len).finish()
        }
    }

    impl CodeBuf {
        /// Maps `code` into fresh executable memory (W^X: written while
        /// `PROT_READ|PROT_WRITE`, then sealed `PROT_READ|PROT_EXEC`).
        ///
        /// # Errors
        ///
        /// [`JitError::ForcedFallback`] under the test knob,
        /// [`JitError::MapFailed`] if the kernel refuses the mapping or
        /// the protection flip.
        pub fn map(code: &[u8]) -> Result<Self, JitError> {
            if std::env::var_os(super::FORCE_FALLBACK_ENV).is_some_and(|v| !v.is_empty()) {
                return Err(JitError::ForcedFallback);
            }
            assert!(!code.is_empty(), "emitted code is never empty");
            let len = code.len();
            // SAFETY: anonymous private mapping with a null hint — no
            // aliasing with any existing Rust allocation; arguments
            // follow the mmap(2) contract.
            let ptr = unsafe {
                sys::mmap(
                    core::ptr::null_mut(),
                    len,
                    sys::PROT_READ | sys::PROT_WRITE,
                    sys::MAP_PRIVATE | sys::MAP_ANONYMOUS,
                    -1,
                    0,
                )
            };
            if ptr as isize == -1 || ptr.is_null() {
                return Err(JitError::MapFailed);
            }
            let ptr = ptr.cast::<u8>();
            // SAFETY: the mapping is len bytes, freshly owned and
            // writable; `code` cannot overlap a page the kernel just
            // invented.
            unsafe { core::ptr::copy_nonoverlapping(code.as_ptr(), ptr, len) };
            // SAFETY: ptr is page-aligned (returned by mmap) and the
            // range is exactly the mapping we own.
            let sealed = unsafe { sys::mprotect(ptr.cast(), len, sys::PROT_READ | sys::PROT_EXEC) };
            if sealed != 0 {
                // SAFETY: unmapping the mapping created above; no
                // pointers into it have escaped.
                unsafe { sys::munmap(ptr.cast(), len) };
                return Err(JitError::MapFailed);
            }
            Ok(Self { ptr, len })
        }

        /// Base address of the mapping.
        pub fn as_ptr(&self) -> *const u8 {
            self.ptr
        }

        /// Mapping length in bytes.
        pub fn len(&self) -> usize {
            self.len
        }
    }

    impl Drop for CodeBuf {
        fn drop(&mut self) {
            // SAFETY: we own the mapping; `call` borrows the CodeBuf for
            // the duration of every emitted-function call, so no thread
            // can be executing the pages once Drop runs.
            unsafe {
                sys::munmap(self.ptr.cast(), self.len);
            }
        }
    }

    /// The ABI every emitted tree function has: `rdi` = feature
    /// pointer, `eax` = predicted class.
    type TreeFn = unsafe extern "C" fn(*const f32) -> u32;

    /// Calls the emitted function at `entry`.
    ///
    /// # Safety
    ///
    /// `entry` must be an entry offset recorded by the emitter for this
    /// buffer's code, and `features` must point at least as many `f32`s
    /// as the `n_features` the code was emitted against.
    pub unsafe fn call(buf: &CodeBuf, entry: usize, features: *const f32) -> u32 {
        debug_assert!(entry < buf.len());
        // SAFETY: per this function's contract, `entry` addresses an
        // emitted function head inside the RX mapping and `features`
        // covers every offset the code loads (checked at emit time).
        unsafe {
            let f: TreeFn = core::mem::transmute(buf.as_ptr().add(entry));
            f(features)
        }
    }
}

/// A forest compiled to native x86-64 code: one executable mapping, one
/// entry per tree, majority-vote aggregation identical to every other
/// engine.
#[cfg(all(feature = "jit-x86", target_arch = "x86_64", target_os = "linux"))]
#[derive(Debug)]
pub struct JitForest {
    buf: native::CodeBuf,
    entries: Vec<usize>,
    n_features: usize,
    n_classes: usize,
}

#[cfg(all(feature = "jit-x86", target_arch = "x86_64", target_os = "linux"))]
impl JitForest {
    /// Lowers and maps every tree of `forest` under `compare`.
    ///
    /// # Errors
    ///
    /// [`JitError`] if emission or the executable mapping fails.
    pub fn compile(forest: &RandomForest, compare: JitCompare) -> Result<Self, JitError> {
        let programs = TreeProgram::compile_forest(forest, compare.variant());
        Self::from_programs(&programs, forest.n_features(), forest.n_classes())
    }

    /// Maps already-lowered tree programs (the exact programs the
    /// interpreter executes — shared lowering).
    ///
    /// # Errors
    ///
    /// [`JitError`] if emission or the executable mapping fails.
    pub fn from_programs(
        programs: &[TreeProgram],
        n_features: usize,
        n_classes: usize,
    ) -> Result<Self, JitError> {
        let emitted = EmittedCode::emit(programs, n_features)?;
        Ok(Self {
            buf: native::CodeBuf::map(emitted.code())?,
            entries: emitted.entries().to_vec(),
            n_features,
            n_classes,
        })
    }

    /// Expected feature vector length.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes voted over.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Majority-vote prediction over the native tree functions.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features()`.
    pub fn predict(&self, features: &[f32]) -> u32 {
        flint_forest::metrics::majority_vote(&self.predict_votes(features))
    }

    /// Per-class vote histogram (one vote per native tree function) —
    /// the partial a forest shard reports for distributed merge.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features()`.
    pub fn predict_votes(&self, features: &[f32]) -> Vec<u32> {
        assert_eq!(
            features.len(),
            self.n_features,
            "feature vector length (JIT code loads up to n_features words)"
        );
        let mut votes = vec![0u32; self.n_classes];
        for &entry in &self.entries {
            // SAFETY: `entry` comes from the emitter for this buffer,
            // and the assert above guarantees `features` covers every
            // offset the emitted loads index.
            #[allow(unsafe_code)]
            let class = unsafe { native::call(&self.buf, entry, features.as_ptr()) };
            votes[class as usize] += 1;
        }
        votes
    }
}

/// Fallback stand-in where emitted code cannot run: carries no code and
/// cannot be constructed — [`TieredJit`] stays on the interpreter tier.
#[cfg(not(all(feature = "jit-x86", target_arch = "x86_64", target_os = "linux")))]
#[derive(Debug)]
pub struct JitForest {
    never: core::convert::Infallible,
}

#[cfg(not(all(feature = "jit-x86", target_arch = "x86_64", target_os = "linux")))]
impl JitForest {
    /// Always [`JitError::UnsupportedPlatform`] on this build.
    ///
    /// # Errors
    ///
    /// Always errs.
    pub fn compile(_forest: &RandomForest, _compare: JitCompare) -> Result<Self, JitError> {
        Err(JitError::UnsupportedPlatform)
    }

    /// Always [`JitError::UnsupportedPlatform`] on this build.
    ///
    /// # Errors
    ///
    /// Always errs.
    pub fn from_programs(
        _programs: &[TreeProgram],
        _n_features: usize,
        _n_classes: usize,
    ) -> Result<Self, JitError> {
        Err(JitError::UnsupportedPlatform)
    }

    /// Unreachable: the type is uninhabited on this build.
    pub fn n_features(&self) -> usize {
        match self.never {}
    }

    /// Unreachable: the type is uninhabited on this build.
    pub fn n_classes(&self) -> usize {
        match self.never {}
    }

    /// Unreachable: the type is uninhabited on this build.
    pub fn predict(&self, _features: &[f32]) -> u32 {
        match self.never {}
    }

    /// Unreachable: the type is uninhabited on this build.
    pub fn predict_votes(&self, _features: &[f32]) -> Vec<u32> {
        match self.never {}
    }
}

/// Which tier a [`TieredJit`] is currently serving from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JitTier {
    /// Below the hot threshold: interpreting, compilation not yet
    /// attempted.
    Cold,
    /// Compiled: executing native x86-64 code.
    Native,
    /// Compilation was attempted and failed (feature off, wrong
    /// platform, mapping refused): interpreting permanently.
    Fallback,
}

/// The tiered execution policy: interpret cold forests through the
/// bytecode VM, compile to native code on first hot use, degrade to a
/// permanent interpreter fallback when the platform can't execute
/// emitted code. Both tiers run the same shared [`TreeProgram`]
/// lowering, so answers are bit-identical across tiers by construction.
#[derive(Debug)]
pub struct TieredJit {
    interp: VmForest,
    compare: JitCompare,
    n_features: usize,
    hot_after: u64,
    scored: AtomicU64,
    compiled: OnceLock<Option<JitForest>>,
}

impl TieredJit {
    /// Binds `forest` with the default hot threshold
    /// ([`DEFAULT_HOT_AFTER`]). Building is cheap: only the interpreter
    /// programs are prepared; emission and mapping happen on first hot
    /// use.
    pub fn new(forest: &RandomForest, compare: JitCompare) -> Self {
        Self::with_hot_after(forest, compare, DEFAULT_HOT_AFTER)
    }

    /// Binds `forest` with an explicit hot threshold (`0` compiles on
    /// the very first prediction — useful in tests and warmed servers).
    pub fn with_hot_after(forest: &RandomForest, compare: JitCompare, hot_after: u64) -> Self {
        Self {
            interp: VmForest::compile(forest, compare.variant()),
            compare,
            n_features: forest.n_features(),
            hot_after,
            scored: AtomicU64::new(0),
            compiled: OnceLock::new(),
        }
    }

    /// The comparison family this engine compiles.
    pub fn compare(&self) -> JitCompare {
        self.compare
    }

    /// Expected feature vector length.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes voted over.
    pub fn n_classes(&self) -> usize {
        self.interp.n_classes()
    }

    /// Samples scored so far (across both tiers).
    pub fn scored(&self) -> u64 {
        self.scored.load(Ordering::Relaxed)
    }

    /// The configured hot threshold.
    pub fn hot_after(&self) -> u64 {
        self.hot_after
    }

    /// The tier currently serving predictions.
    pub fn tier(&self) -> JitTier {
        match self.compiled.get() {
            None => JitTier::Cold,
            Some(Some(_)) => JitTier::Native,
            Some(None) => JitTier::Fallback,
        }
    }

    /// One-line description of family and serving tier (each a fixed
    /// string, so engine `describe()` stays `&'static str`).
    pub fn describe(&self) -> &'static str {
        match (self.compare, self.tier()) {
            (JitCompare::Flint, JitTier::Cold) => {
                "template JIT to x86-64, FLInt integer compares — cold tier: interpreting until hot"
            }
            (JitCompare::Flint, JitTier::Native) => {
                "template JIT to x86-64, FLInt integer compares — native tier: emitted machine code"
            }
            (JitCompare::Flint, JitTier::Fallback) => {
                "template JIT to x86-64, FLInt integer compares — fallback tier: interpreter (JIT unavailable)"
            }
            (JitCompare::Float, JitTier::Cold) => {
                "template JIT to x86-64, float ucomiss compares — cold tier: interpreting until hot"
            }
            (JitCompare::Float, JitTier::Native) => {
                "template JIT to x86-64, float ucomiss compares — native tier: emitted machine code"
            }
            (JitCompare::Float, JitTier::Fallback) => {
                "template JIT to x86-64, float ucomiss compares — fallback tier: interpreter (JIT unavailable)"
            }
        }
    }

    /// Advances the sample counter and returns the native forest if
    /// this prediction should run natively — compiling it (once) when
    /// the forest just crossed the hot threshold.
    fn hot_forest(&self) -> Option<&JitForest> {
        let seen = self.scored.fetch_add(1, Ordering::Relaxed);
        if seen < self.hot_after {
            return None;
        }
        self.compiled
            .get_or_init(|| {
                let programs: Vec<TreeProgram> = self
                    .interp
                    .programs()
                    .iter()
                    .map(|p| p.program().clone())
                    .collect();
                JitForest::from_programs(&programs, self.n_features, self.interp.n_classes()).ok()
            })
            .as_ref()
    }

    /// Majority-vote prediction through whichever tier serves.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features()`.
    pub fn predict(&self, features: &[f32]) -> u32 {
        assert_eq!(features.len(), self.n_features, "feature vector length");
        if let Some(native) = self.hot_forest() {
            return native.predict(features);
        }
        // Cold or fallback: the interpreter executes the same programs.
        self.interp
            .run(features)
            .expect("compiled VM programs run to a return")
            .0
    }

    /// Per-class vote histogram through whichever tier serves — both
    /// tiers count one vote per tree over the same shared lowering, so
    /// the histogram is tier-independent.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features()`.
    pub fn predict_votes(&self, features: &[f32]) -> Vec<u32> {
        assert_eq!(features.len(), self.n_features, "feature vector length");
        if let Some(native) = self.hot_forest() {
            return native.predict_votes(features);
        }
        self.interp
            .run_votes(features)
            .expect("compiled VM programs run to a return")
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_data::synth::SynthSpec;
    use flint_forest::{example_tree, ForestConfig};

    fn forest() -> (flint_data::Dataset, RandomForest) {
        let data = SynthSpec::new(200, 5, 3)
            .negative_fraction(0.5)
            .seed(33)
            .generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(6, 7)).expect("trainable");
        (data, forest)
    }

    #[test]
    fn emitter_templates_have_the_expected_heads() {
        let tree = example_tree();
        let program = TreeProgram::compile(&tree, VmVariant::Flint);
        let emitted = EmittedCode::emit(std::slice::from_ref(&program), 2).expect("emits");
        assert_eq!(emitted.entries(), &[0]);
        // The program opens with LoadWord{dst:1, offset:0}:
        // mov esi, [rdi+0] = 8B B7 00 00 00 00.
        assert_eq!(&emitted.code()[..6], &[0x8B, 0xB7, 0, 0, 0, 0]);
        // Every emitted tree ends in ret.
        assert_eq!(*emitted.code().last().expect("nonempty"), 0xC3);
    }

    #[test]
    fn emitter_packs_forests_with_monotonic_entries() {
        let (_, forest) = forest();
        let programs = TreeProgram::compile_forest(&forest, VmVariant::Flint);
        let emitted = EmittedCode::emit(&programs, forest.n_features()).expect("emits");
        assert_eq!(emitted.entries().len(), forest.n_trees());
        for pair in emitted.entries().windows(2) {
            assert!(pair[0] < pair[1], "entries must be monotonic");
        }
        // Each entry starts at a fresh template head: the integer
        // family always opens with either mov r32,[rdi+disp] (0x8B) or
        // a leaf-only mov eax (0xB8).
        for &entry in emitted.entries() {
            assert!(matches!(emitted.code()[entry], 0x8B | 0xB8));
        }
    }

    #[test]
    fn emitter_rejects_out_of_range_features() {
        let tree = example_tree(); // uses features 0 and 1
        let program = TreeProgram::compile(&tree, VmVariant::Flint);
        let err = EmittedCode::emit(std::slice::from_ref(&program), 1).unwrap_err();
        assert_eq!(
            err,
            JitError::FeatureOutOfRange {
                offset: 1,
                n_features: 1
            }
        );
    }

    #[test]
    fn emitter_rejects_interpreter_only_instructions() {
        let tree = example_tree();
        let soft = TreeProgram::compile(&tree, VmVariant::SoftFloat);
        assert_eq!(
            EmittedCode::emit(std::slice::from_ref(&soft), 2).unwrap_err(),
            JitError::UnsupportedInstr { instr: "SoftCmp" }
        );
        let wide = TreeProgram::compile_f64(&tree, VmVariant::Flint);
        assert!(EmittedCode::emit(std::slice::from_ref(&wide), 2).is_err());
    }

    #[test]
    fn tier_starts_cold_and_interprets() {
        let (data, forest) = forest();
        let tiered = TieredJit::new(&forest, JitCompare::Flint);
        assert_eq!(tiered.tier(), JitTier::Cold);
        assert_eq!(tiered.hot_after(), DEFAULT_HOT_AFTER);
        let class = tiered.predict(data.sample(0));
        assert_eq!(class, forest.predict_majority(data.sample(0)));
        assert_eq!(tiered.tier(), JitTier::Cold, "one sample stays cold");
        assert_eq!(tiered.scored(), 1);
        assert!(tiered.describe().contains("cold tier"));
    }

    #[cfg(all(feature = "jit-x86", target_arch = "x86_64", target_os = "linux"))]
    mod native_exec {
        use super::*;

        #[test]
        fn jit_forest_matches_the_forest_majority_vote() {
            let (data, forest) = forest();
            for compare in [JitCompare::Flint, JitCompare::Float] {
                let jit = JitForest::compile(&forest, compare).expect("compiles");
                assert_eq!(jit.n_features(), forest.n_features());
                assert_eq!(jit.n_classes(), forest.n_classes());
                for i in 0..data.n_samples() {
                    assert_eq!(
                        jit.predict(data.sample(i)),
                        forest.predict_majority(data.sample(i)),
                        "{compare:?} sample {i}"
                    );
                }
            }
        }

        #[test]
        fn jit_matches_interpreter_bit_for_bit_on_adversarial_inputs() {
            let (_, forest) = forest();
            for compare in [JitCompare::Flint, JitCompare::Float] {
                let jit = JitForest::compile(&forest, compare).expect("compiles");
                let vm = VmForest::compile(&forest, compare.variant());
                for pattern in [
                    [0.0f32; 5],
                    [-0.0; 5],
                    [f32::MIN_POSITIVE; 5],
                    [-f32::MIN_POSITIVE; 5],
                    [f32::MAX, f32::MIN, 0.5, -0.5, 1e-38],
                    [1e30, -1e30, 3.25, -3.25, 0.1],
                ] {
                    assert_eq!(
                        jit.predict(&pattern),
                        vm.run(&pattern).expect("runs").0,
                        "{compare:?} {pattern:?}"
                    );
                }
            }
        }

        #[test]
        fn hot_threshold_zero_compiles_on_first_use() {
            let (data, forest) = forest();
            let tiered = TieredJit::with_hot_after(&forest, JitCompare::Flint, 0);
            assert_eq!(tiered.tier(), JitTier::Cold);
            let class = tiered.predict(data.sample(3));
            assert_eq!(class, forest.predict_majority(data.sample(3)));
            assert_eq!(tiered.tier(), JitTier::Native);
            assert!(tiered.describe().contains("native tier"));
        }

        #[test]
        fn tier_transitions_exactly_at_the_hot_threshold() {
            let (data, forest) = forest();
            let tiered = TieredJit::with_hot_after(&forest, JitCompare::Float, 10);
            let reference = forest.predict_dataset_majority(&data);
            for (i, &want) in reference.iter().enumerate().take(30) {
                assert_eq!(tiered.predict(data.sample(i)), want, "sample {i}");
                let expected = if i < 10 {
                    JitTier::Cold
                } else {
                    JitTier::Native
                };
                assert_eq!(tiered.tier(), expected, "after sample {i}");
            }
            assert_eq!(tiered.scored(), 30);
        }

        #[test]
        fn native_and_cold_tiers_agree_on_every_sample() {
            let (data, forest) = forest();
            for compare in [JitCompare::Flint, JitCompare::Float] {
                let cold = TieredJit::with_hot_after(&forest, compare, u64::MAX);
                let hot = TieredJit::with_hot_after(&forest, compare, 0);
                for i in 0..data.n_samples() {
                    assert_eq!(
                        cold.predict(data.sample(i)),
                        hot.predict(data.sample(i)),
                        "{compare:?} sample {i}"
                    );
                }
                assert_eq!(cold.tier(), JitTier::Cold);
                assert_eq!(hot.tier(), JitTier::Native);
            }
        }
    }
}
