//! Property-based tests of the code generation stage: the VM and the
//! textual emitters must stay faithful to the reference trees for
//! arbitrary trained models and arbitrary (non-NaN) inputs.

use flint_codegen::{
    emit_tree_asm, emit_tree_c, emit_tree_rust, AsmTarget, CVariant, RustVariant, VmProgram,
    VmVariant,
};
use flint_data::synth::SynthSpec;
use flint_forest::train::{train_tree, TrainConfig};
use flint_forest::DecisionTree;
use proptest::prelude::*;

fn trained_tree(seed: u64, depth: usize) -> DecisionTree {
    let data = SynthSpec::new(130, 4, 3)
        .cluster_std(1.1)
        .negative_fraction(0.5)
        .seed(seed)
        .generate();
    train_tree(&data, &TrainConfig::with_max_depth(depth)).expect("trains")
}

fn features() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(
        any::<u32>()
            .prop_map(f32::from_bits)
            .prop_filter("NaN", |v| !v.is_nan()),
        4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// All three VM variants predict like the reference traversal on
    /// arbitrary bit-pattern inputs.
    #[test]
    fn vm_variants_match_reference(seed in 0u64..64, depth in 1usize..8, x in features()) {
        let tree = trained_tree(seed, depth);
        let want = tree.predict(&x);
        for variant in [VmVariant::Flint, VmVariant::NativeFloat, VmVariant::SoftFloat] {
            let program = VmProgram::compile(&tree, variant);
            let (got, stats) = program.run(&x).expect("runs");
            prop_assert_eq!(got, want, "{:?}", variant);
            prop_assert_eq!(stats.rets, 1);
        }
    }

    /// Program size is linear in the tree: every split contributes at
    /// most 6 instructions (FLInt) and every leaf exactly one.
    #[test]
    fn program_size_is_linear(seed in 0u64..64, depth in 1usize..8) {
        let tree = trained_tree(seed, depth);
        let program = VmProgram::compile(&tree, VmVariant::Flint);
        let splits = tree.n_nodes() - tree.n_leaves();
        let upper = splits * 6 + tree.n_leaves();
        let lower = splits * 5 + tree.n_leaves();
        let len = program.instrs().len();
        prop_assert!((lower..=upper).contains(&len), "{len} not in [{lower}, {upper}]");
    }

    /// The FLInt VM executes at most `depth+1` compares per inference
    /// and exactly one eor per negative-split node on the path.
    #[test]
    fn instruction_counts_bounded_by_depth(seed in 0u64..64, depth in 1usize..8, x in features()) {
        let tree = trained_tree(seed, depth);
        let program = VmProgram::compile(&tree, VmVariant::Flint);
        let (_, stats) = program.run(&x).expect("runs");
        prop_assert!(stats.cmp_int as usize <= tree.depth());
        prop_assert!(stats.eor <= stats.cmp_int);
        prop_assert_eq!(stats.movz, stats.cmp_int);
        prop_assert_eq!(stats.movk, stats.cmp_int);
        prop_assert_eq!(stats.load_word, stats.cmp_int);
    }

    /// Emitted C is structurally sound for every tree: balanced braces,
    /// one return per leaf, one condition per split, and the FLInt
    /// variant never mentions floats.
    #[test]
    fn emitted_c_is_structurally_sound(seed in 0u64..64, depth in 1usize..7) {
        let tree = trained_tree(seed, depth);
        for variant in [CVariant::Standard, CVariant::Flint] {
            let code = emit_tree_c(&tree, 0, variant);
            prop_assert_eq!(code.matches('{').count(), code.matches('}').count());
            prop_assert_eq!(code.matches("return").count(), tree.n_leaves());
            prop_assert_eq!(code.matches("if (").count(), tree.n_nodes() - tree.n_leaves());
        }
        let flint_code = emit_tree_c(&tree, 0, CVariant::Flint);
        prop_assert!(!flint_code.contains("float)1") && !flint_code.contains("(float)"));
    }

    /// Emitted Rust mirrors the same structural properties.
    #[test]
    fn emitted_rust_is_structurally_sound(seed in 0u64..64, depth in 1usize..7) {
        let tree = trained_tree(seed, depth);
        for variant in [RustVariant::Standard, RustVariant::Flint] {
            let code = emit_tree_rust(&tree, 0, variant);
            prop_assert_eq!(code.matches('{').count(), code.matches('}').count());
            prop_assert_eq!(code.matches("return").count(), tree.n_leaves());
        }
        let flint_code = emit_tree_rust(&tree, 0, RustVariant::Flint);
        prop_assert!(flint_code.contains("to_bits") || tree.n_leaves() == tree.n_nodes());
    }

    /// Emitted assembly: one compare per split, one eor per negative
    /// split, labels balanced, for both targets.
    #[test]
    fn emitted_asm_instruction_census(seed in 0u64..64, depth in 1usize..7) {
        let tree = trained_tree(seed, depth);
        let splits = tree.n_nodes() - tree.n_leaves();
        // -0.0 thresholds are rewritten to +0.0 (no flip), so only
        // strictly negative values emit a sign-flip instruction.
        let negative_splits = tree
            .thresholds()
            .filter(|t| t.is_sign_negative() && *t != 0.0)
            .count();
        let arm = emit_tree_asm(&tree, 0, AsmTarget::Armv8);
        prop_assert_eq!(arm.matches("cmp ").count(), splits);
        prop_assert_eq!(arm.matches("eor ").count(), negative_splits);
        prop_assert_eq!(arm.matches("movz").count(), splits);
        prop_assert_eq!(arm.matches("movk").count(), splits);
        let x86 = emit_tree_asm(&tree, 0, AsmTarget::X86);
        prop_assert_eq!(x86.matches("cmpl").count(), splits);
        prop_assert_eq!(x86.matches("xorl").count(), negative_splits);
    }
}
