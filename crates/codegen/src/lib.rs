//! # flint-codegen — if-else-tree code generation (arch-forest stage)
//!
//! The paper integrates FLInt into the arch-forest framework's code
//! generation: trained trees become nested if-else blocks in C
//! (Listings 1–4) or direct X86/ARMv8 assembly (Listing 5). This crate
//! reproduces that stage:
//!
//! * [`c_emitter`] — C translation units in both the standard float and
//!   the FLInt integer idiom, byte-faithful to the paper's listings;
//! * [`asm_emitter`] — ARMv8 and X86 assembly text with the `ldrsw` /
//!   `movz` / `movk` / `cmp` / `b.gt` sequence of Listing 5 (and the
//!   `eor` sign-flip for negative splits);
//! * [`rust_emitter`] — the same trees as compilable Rust, demonstrating
//!   Section IV-C's "any language with bit reinterpretation" claim;
//! * [`program`] — the shared tree-program lowering ([`TreeProgram`]):
//!   one compile step from trees to the Listing-5 instruction stream,
//!   consumed by both execution backends;
//! * [`vm`] — an integer-only tree bytecode VM whose instructions map
//!   one-to-one onto the assembly listing, serving as the *executable*
//!   assembly backend (and instruction-count source for `flint-sim`);
//!   the `flint-exec` template JIT lowers the same [`TreeProgram`]s to
//!   x86-64 machine code.
//!
//! ```
//! use flint_forest::example_tree;
//! use flint_codegen::{c_emitter::{emit_tree_c, CVariant}, vm::{VmProgram, VmVariant}};
//!
//! # fn main() -> Result<(), flint_codegen::vm::VmError> {
//! let tree = example_tree();
//! let c = emit_tree_c(&tree, 0, CVariant::Flint);
//! assert!(c.contains("(int*)"));
//!
//! let program = VmProgram::compile(&tree, VmVariant::Flint);
//! let (class, stats) = program.run(&[1.0, 0.0])?;
//! assert_eq!(class, tree.predict(&[1.0, 0.0]));
//! assert!(program.is_fpu_free() && stats.cmp_float == 0);
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod asm_emitter;
pub mod c_emitter;
pub mod program;
pub mod rust_emitter;
pub mod vm;

pub use asm_emitter::{emit_tree_asm, emit_tree_asm_f64, AsmTarget};
pub use c_emitter::{
    c_float_literal, emit_forest_c, emit_forest_c_f64, emit_tree_c, emit_tree_c_f64, CVariant,
};
pub use program::{Instr, Reg, TreeProgram, VmVariant};
pub use rust_emitter::{emit_forest_rust, emit_tree_rust, RustVariant};
pub use vm::{ExecStats, VmError, VmForest, VmProgram};
