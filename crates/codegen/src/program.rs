//! The shared tree-program representation: one lowering from decision
//! trees to the Listing-5 instruction stream, consumed by **both**
//! execution backends.
//!
//! Historically `vm.rs` owned the compile *and* the execute halves of
//! the bytecode path, which left any second consumer of the instruction
//! stream (the `flint-exec` template JIT lowers the same programs to
//! x86-64 machine code) re-deriving the lowering and free to drift.
//! This module is the single source of truth: [`TreeProgram::compile`]
//! emits the per-split `load / (flip) / materialize / compare / branch`
//! sequence exactly once, and the interpreter
//! (`flint_codegen::vm::VmProgram`) and the JIT both execute *that*
//! program — the two backends cannot disagree about what a tree
//! compiles to, only about how fast they run it.
//!
//! Each [`Instr`] corresponds to one machine instruction of the
//! respective backend: [`Instr::LoadWord`] ↔ `ldrsw`,
//! [`Instr::Movz`]/[`Instr::Movk`] ↔ immediate materialization,
//! [`Instr::EorSign`] ↔ `eor`, [`Instr::Cmp`] ↔ `cmp`,
//! [`Instr::BranchGt`]/[`Instr::BranchLt`] ↔ `b.gt`/`b.lt`,
//! [`Instr::Ret`] ↔ the leaf's return.

use flint_core::PreparedThreshold;
use flint_forest::{DecisionTree, Node, NodeId, RandomForest};

/// Register index (the program model has 4 integer and 4 float
/// registers; the generated code only ever uses two of each, like the
/// listings).
pub type Reg = u8;

/// One program instruction. Each variant corresponds to one machine
/// instruction of the respective backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Integer load of the feature word at `offset` (in words) from the
    /// feature vector — `ldrsw x, [base, #off]`.
    LoadWord {
        /// Destination integer register.
        dst: Reg,
        /// Feature index.
        offset: u32,
    },
    /// Float load of the feature at `offset` — `ldr s, [base, #off]`
    /// (requires an FPU).
    LoadFloat {
        /// Destination float register.
        dst: Reg,
        /// Feature index.
        offset: u32,
    },
    /// Materialize the low 16 bits of an immediate — `movz`.
    Movz {
        /// Destination integer register.
        dst: Reg,
        /// Low half of the immediate.
        imm: u16,
    },
    /// Materialize 16 bits of an immediate at a shifted position —
    /// `movk …, lsl <shift>` (shift 16 for `f32` keys; 16/32/48 for the
    /// four-part `f64` keys of the double precision backend).
    Movk {
        /// Destination integer register.
        dst: Reg,
        /// The 16-bit half/quarter of the immediate.
        imm: u16,
        /// Bit position (16, 32 or 48).
        shift: u8,
    },
    /// 64-bit integer load of the feature doubleword at `offset` — the
    /// `ldr x, [base, #off]` of the double precision backend.
    LoadDword {
        /// Destination integer register.
        dst: Reg,
        /// Feature index.
        offset: u32,
    },
    /// Load a float constant from the literal pool — `ldr s, =const`
    /// (data-memory access; requires an FPU).
    LoadFloatConst {
        /// Destination float register.
        dst: Reg,
        /// The constant.
        value: f32,
    },
    /// Load a double constant from the literal pool (double precision
    /// naive backend; requires an FPU).
    LoadDoubleConst {
        /// Destination float register.
        dst: Reg,
        /// The constant.
        value: f64,
    },
    /// Float load of the double at `offset` — `ldr d, [base, #off]`.
    LoadDouble {
        /// Destination float register.
        dst: Reg,
        /// Feature index.
        offset: u32,
    },
    /// Flip the sign bit of a 32-bit register — `eor w, w, #0x80000000`.
    EorSign {
        /// Register to flip.
        dst: Reg,
    },
    /// Flip bit 63 of a 64-bit register — `eor x, x, #1<<63`.
    EorSign64 {
        /// Register to flip.
        dst: Reg,
    },
    /// Signed 32-bit integer compare, sets flags — `cmp w, w`.
    Cmp {
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Signed 64-bit integer compare, sets flags — `cmp x, x`.
    Cmp64 {
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Software float comparison of two 64-bit registers holding f64
    /// patterns (double precision softfloat backend).
    SoftCmp64 {
        /// Left operand (bit pattern).
        a: Reg,
        /// Right operand (bit pattern).
        b: Reg,
    },
    /// Hardware float compare, sets flags — `fcmp` (requires an FPU).
    Fcmp {
        /// Left float operand.
        a: Reg,
        /// Right float operand.
        b: Reg,
    },
    /// Software float comparison of two integer registers holding float
    /// bit patterns; sets flags as if `fcmp` ran. Models a call into a
    /// softfloat runtime (`__aeabi_cfcmple` and friends).
    SoftCmp {
        /// Left operand (bit pattern).
        a: Reg,
        /// Right operand (bit pattern).
        b: Reg,
    },
    /// Branch to `target` when flags say "greater than" — `b.gt`.
    BranchGt {
        /// Absolute instruction index.
        target: u32,
    },
    /// Branch to `target` when flags say "less than" — `b.lt`.
    BranchLt {
        /// Absolute instruction index.
        target: u32,
    },
    /// Unconditional branch — `b`.
    Jump {
        /// Absolute instruction index.
        target: u32,
    },
    /// Return the class in the instruction — leaf epilogue.
    Ret {
        /// Predicted class.
        class: u32,
    },
}

/// Comparison idiom a program was compiled with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmVariant {
    /// FLInt: integer loads and compares only.
    Flint,
    /// Native float instructions (FPU machines, naive trees).
    NativeFloat,
    /// Software float comparison calls (FPU-less machines, naive trees).
    SoftFloat,
}

/// One tree lowered to the Listing-5 instruction stream — the compile
/// half shared by the bytecode interpreter and the template JIT.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeProgram {
    instrs: Vec<Instr>,
    variant: VmVariant,
}

impl TreeProgram {
    /// Compiles `tree` under the given comparison variant.
    ///
    /// The emitted instruction sequence per split node matches
    /// Listing 5: load, (flip,) materialize immediate, compare,
    /// conditional branch to the else block; leaves return.
    ///
    /// # Panics
    ///
    /// Panics if the tree contains NaN thresholds (prevented by tree
    /// validation).
    pub fn compile(tree: &DecisionTree, variant: VmVariant) -> Self {
        let mut instrs = Vec::new();
        compile_node(&mut instrs, tree, NodeId::ROOT, variant);
        Self { instrs, variant }
    }

    /// Compiles `tree` as a **double precision** program: 64-bit loads
    /// (`ldr x`), four-part immediate materialization (`movz` + three
    /// `movk`), bit-63 sign flips and 64-bit compares. Thresholds widen
    /// exactly from the trained `f32` values.
    ///
    /// # Panics
    ///
    /// Panics if the tree contains NaN thresholds.
    pub fn compile_f64(tree: &DecisionTree, variant: VmVariant) -> Self {
        let mut instrs = Vec::new();
        compile_node_f64(&mut instrs, tree, NodeId::ROOT, variant);
        Self { instrs, variant }
    }

    /// Lowers every tree of `forest` under `variant`, in tree order.
    pub fn compile_forest(forest: &RandomForest, variant: VmVariant) -> Vec<Self> {
        forest
            .trees()
            .iter()
            .map(|t| Self::compile(t, variant))
            .collect()
    }

    /// The compiled instruction stream.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The comparison variant this program uses.
    pub fn variant(&self) -> VmVariant {
        self.variant
    }

    /// `true` if no instruction in the program needs an FPU.
    pub fn is_fpu_free(&self) -> bool {
        !self.instrs.iter().any(|i| {
            matches!(
                i,
                Instr::LoadFloat { .. } | Instr::LoadFloatConst { .. } | Instr::Fcmp { .. }
            )
        })
    }
}

fn compile_node(instrs: &mut Vec<Instr>, tree: &DecisionTree, id: NodeId, variant: VmVariant) {
    match &tree.nodes()[id.index()] {
        Node::Leaf { class, .. } => instrs.push(Instr::Ret { class: *class }),
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            match variant {
                VmVariant::Flint => {
                    let prepared = PreparedThreshold::new(*threshold)
                        .expect("validated trees have no NaN thresholds");
                    let key = prepared.key() as u32;
                    instrs.push(Instr::LoadWord {
                        dst: 1,
                        offset: *feature,
                    });
                    if prepared.flips_sign() {
                        instrs.push(Instr::EorSign { dst: 1 });
                    }
                    instrs.push(Instr::Movz {
                        dst: 2,
                        imm: (key & 0xffff) as u16,
                    });
                    instrs.push(Instr::Movk {
                        dst: 2,
                        imm: (key >> 16) as u16,
                        shift: 16,
                    });
                    instrs.push(Instr::Cmp { a: 1, b: 2 });
                    let branch_slot = instrs.len();
                    // Placeholder target patched after the left subtree.
                    if prepared.flips_sign() {
                        instrs.push(Instr::BranchLt { target: 0 });
                    } else {
                        instrs.push(Instr::BranchGt { target: 0 });
                    }
                    compile_node(instrs, tree, *left, variant);
                    let else_target = instrs.len() as u32;
                    match &mut instrs[branch_slot] {
                        Instr::BranchGt { target } | Instr::BranchLt { target } => {
                            *target = else_target
                        }
                        _ => unreachable!("branch slot holds a branch"),
                    }
                    compile_node(instrs, tree, *right, variant);
                }
                VmVariant::NativeFloat => {
                    instrs.push(Instr::LoadFloat {
                        dst: 1,
                        offset: *feature,
                    });
                    instrs.push(Instr::LoadFloatConst {
                        dst: 2,
                        value: *threshold,
                    });
                    instrs.push(Instr::Fcmp { a: 1, b: 2 });
                    let branch_slot = instrs.len();
                    instrs.push(Instr::BranchGt { target: 0 });
                    compile_node(instrs, tree, *left, variant);
                    let else_target = instrs.len() as u32;
                    match &mut instrs[branch_slot] {
                        Instr::BranchGt { target } => *target = else_target,
                        _ => unreachable!("branch slot holds a branch"),
                    }
                    compile_node(instrs, tree, *right, variant);
                }
                VmVariant::SoftFloat => {
                    let bits = threshold.to_bits();
                    instrs.push(Instr::LoadWord {
                        dst: 1,
                        offset: *feature,
                    });
                    instrs.push(Instr::Movz {
                        dst: 2,
                        imm: (bits & 0xffff) as u16,
                    });
                    instrs.push(Instr::Movk {
                        dst: 2,
                        imm: (bits >> 16) as u16,
                        shift: 16,
                    });
                    instrs.push(Instr::SoftCmp { a: 1, b: 2 });
                    let branch_slot = instrs.len();
                    instrs.push(Instr::BranchGt { target: 0 });
                    compile_node(instrs, tree, *left, variant);
                    let else_target = instrs.len() as u32;
                    match &mut instrs[branch_slot] {
                        Instr::BranchGt { target } => *target = else_target,
                        _ => unreachable!("branch slot holds a branch"),
                    }
                    compile_node(instrs, tree, *right, variant);
                }
            }
        }
    }
}

fn compile_node_f64(instrs: &mut Vec<Instr>, tree: &DecisionTree, id: NodeId, variant: VmVariant) {
    match &tree.nodes()[id.index()] {
        Node::Leaf { class, .. } => instrs.push(Instr::Ret { class: *class }),
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            let wide = f64::from(*threshold);
            let emit_imm64 = |instrs: &mut Vec<Instr>, key: u64| {
                instrs.push(Instr::Movz {
                    dst: 2,
                    imm: (key & 0xffff) as u16,
                });
                for shift in [16u8, 32, 48] {
                    instrs.push(Instr::Movk {
                        dst: 2,
                        imm: ((key >> shift) & 0xffff) as u16,
                        shift,
                    });
                }
            };
            match variant {
                VmVariant::Flint => {
                    let prepared = PreparedThreshold::new(wide)
                        .expect("validated trees have no NaN thresholds");
                    instrs.push(Instr::LoadDword {
                        dst: 1,
                        offset: *feature,
                    });
                    if prepared.flips_sign() {
                        instrs.push(Instr::EorSign64 { dst: 1 });
                    }
                    emit_imm64(instrs, prepared.key() as u64);
                    instrs.push(Instr::Cmp64 { a: 1, b: 2 });
                    let branch_slot = instrs.len();
                    if prepared.flips_sign() {
                        instrs.push(Instr::BranchLt { target: 0 });
                    } else {
                        instrs.push(Instr::BranchGt { target: 0 });
                    }
                    compile_node_f64(instrs, tree, *left, variant);
                    let else_target = instrs.len() as u32;
                    match &mut instrs[branch_slot] {
                        Instr::BranchGt { target } | Instr::BranchLt { target } => {
                            *target = else_target
                        }
                        _ => unreachable!("branch slot holds a branch"),
                    }
                    compile_node_f64(instrs, tree, *right, variant);
                }
                VmVariant::NativeFloat => {
                    instrs.push(Instr::LoadDouble {
                        dst: 1,
                        offset: *feature,
                    });
                    instrs.push(Instr::LoadDoubleConst {
                        dst: 2,
                        value: wide,
                    });
                    instrs.push(Instr::Fcmp { a: 1, b: 2 });
                    let branch_slot = instrs.len();
                    instrs.push(Instr::BranchGt { target: 0 });
                    compile_node_f64(instrs, tree, *left, variant);
                    let else_target = instrs.len() as u32;
                    match &mut instrs[branch_slot] {
                        Instr::BranchGt { target } => *target = else_target,
                        _ => unreachable!("branch slot holds a branch"),
                    }
                    compile_node_f64(instrs, tree, *right, variant);
                }
                VmVariant::SoftFloat => {
                    instrs.push(Instr::LoadDword {
                        dst: 1,
                        offset: *feature,
                    });
                    emit_imm64(instrs, wide.to_bits());
                    instrs.push(Instr::SoftCmp64 { a: 1, b: 2 });
                    let branch_slot = instrs.len();
                    instrs.push(Instr::BranchGt { target: 0 });
                    compile_node_f64(instrs, tree, *left, variant);
                    let else_target = instrs.len() as u32;
                    match &mut instrs[branch_slot] {
                        Instr::BranchGt { target } => *target = else_target,
                        _ => unreachable!("branch slot holds a branch"),
                    }
                    compile_node_f64(instrs, tree, *right, variant);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_forest::example_tree;

    #[test]
    fn lowering_emits_listing5_shape_per_split() {
        let tree = example_tree();
        let program = TreeProgram::compile(&tree, VmVariant::Flint);
        assert_eq!(program.variant(), VmVariant::Flint);
        // Every split contributes load/movz/movk/cmp/branch (+ optional
        // eor); every leaf contributes exactly one ret.
        let rets = program
            .instrs()
            .iter()
            .filter(|i| matches!(i, Instr::Ret { .. }))
            .count();
        let cmps = program
            .instrs()
            .iter()
            .filter(|i| matches!(i, Instr::Cmp { .. }))
            .count();
        assert_eq!(rets, 3, "example tree has three leaves");
        assert_eq!(cmps, 2, "example tree has two splits");
        assert!(program.is_fpu_free());
    }

    #[test]
    fn branch_targets_are_in_range() {
        let tree = example_tree();
        for variant in [
            VmVariant::Flint,
            VmVariant::NativeFloat,
            VmVariant::SoftFloat,
        ] {
            let program = TreeProgram::compile(&tree, variant);
            let len = program.instrs().len() as u32;
            for instr in program.instrs() {
                if let Instr::BranchGt { target }
                | Instr::BranchLt { target }
                | Instr::Jump { target } = instr
                {
                    assert!(*target < len, "{variant:?}: target {target} out of {len}");
                }
            }
        }
    }

    #[test]
    fn forest_lowering_is_per_tree() {
        use flint_data::synth::SynthSpec;
        use flint_forest::{ForestConfig, RandomForest};
        let data = SynthSpec::new(120, 4, 3).seed(9).generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(4, 6)).expect("trainable");
        let programs = TreeProgram::compile_forest(&forest, VmVariant::Flint);
        assert_eq!(programs.len(), forest.n_trees());
        for (tree, program) in forest.trees().iter().zip(&programs) {
            assert_eq!(program, &TreeProgram::compile(tree, VmVariant::Flint));
        }
    }
}
