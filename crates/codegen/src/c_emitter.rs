//! C source emission for if-else trees — the paper's Listings 1–4.
//!
//! Two variants are generated:
//!
//! * **standard** (Listing 1/3): `if (pX[3] <= (float)10.074347f) { … }`
//! * **FLInt** (Listing 2/4): the feature array is reinterpreted as
//!   `int*`, the split value becomes a hex integer immediate, and
//!   negative splits compile to the sign-flip form
//!   `if (((int)(0x403bddde)) <= ((*(((int*)(pX))+125)) ^ (0b1<<31)))`.
//!
//! The emitted text is a compilable translation unit (one predict
//! function per tree plus a majority-vote forest function); the
//! integration tests compile and run it when a C compiler is present.

use flint_core::PreparedThreshold;
use flint_forest::{DecisionTree, Node, NodeId, RandomForest};
use std::fmt::Write;

/// Which comparison idiom the C code uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CVariant {
    /// Plain float comparisons (Listing 1).
    Standard,
    /// FLInt integer comparisons with offline-resolved sign handling
    /// (Listings 2 and 4).
    Flint,
}

impl CVariant {
    /// Suffix used in generated function names (`_std` / `_flint`).
    pub fn suffix(self) -> &'static str {
        match self {
            CVariant::Standard => "std",
            CVariant::Flint => "flint",
        }
    }
}

/// Emits one `unsigned int predict_tree_<index>_<variant>(const float*
/// pX)` function for `tree`.
///
/// # Panics
///
/// Panics if the tree contains NaN thresholds (tree validation prevents
/// this for trees built through the public API).
pub fn emit_tree_c(tree: &DecisionTree, index: usize, variant: CVariant) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "unsigned int predict_tree_{index}_{}(const float* pX) {{",
        variant.suffix()
    );
    emit_node(&mut out, tree, NodeId::ROOT, variant, 1);
    let _ = writeln!(out, "}}");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn emit_node(out: &mut String, tree: &DecisionTree, id: NodeId, variant: CVariant, depth: usize) {
    match &tree.nodes()[id.index()] {
        Node::Leaf { class, .. } => {
            indent(out, depth);
            let _ = writeln!(out, "return {class}u;");
        }
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            indent(out, depth);
            let _ = writeln!(out, "if ({}) {{", condition(*feature, *threshold, variant));
            emit_node(out, tree, *left, variant, depth + 1);
            indent(out, depth);
            let _ = writeln!(out, "}} else {{");
            emit_node(out, tree, *right, variant, depth + 1);
            indent(out, depth);
            let _ = writeln!(out, "}}");
        }
    }
}

/// The branch condition text for `pX[feature] <= threshold`.
///
/// For [`CVariant::Flint`] this reproduces the exact idioms of
/// Listings 2 and 4, including the `-0.0 -> +0.0` rewrite and the
/// sign-flip XOR for negative split values.
pub fn condition(feature: u32, threshold: f32, variant: CVariant) -> String {
    match variant {
        CVariant::Standard => {
            // {:?} prints the shortest f32 representation that
            // round-trips, like the paper's printed decimals.
            format!("pX[{feature}] <= (float){threshold:?}f")
        }
        CVariant::Flint => {
            let prepared =
                PreparedThreshold::new(threshold).expect("validated trees have no NaN thresholds");
            let key = prepared.key() as u32;
            if prepared.flips_sign() {
                format!("((int)(0x{key:08x})) <= ((*(((int*)(pX))+{feature})) ^ (0b1<<31))")
            } else {
                format!("(*(((int*)(pX))+{feature})) <= ((int)(0x{key:08x}))")
            }
        }
    }
}

/// Formats an `f32` as a C hexadecimal float literal
/// (`0x1.242610p+3f`), which round-trips the bit pattern exactly
/// through any C compiler — used to embed test vectors and thresholds
/// without decimal rounding drift.
///
/// # Examples
///
/// ```
/// use flint_codegen::c_emitter::c_float_literal;
///
/// assert_eq!(c_float_literal(1.0), "0x1.000000p+0f");
/// assert_eq!(c_float_literal(-0.0), "-0.0f");
/// assert!(c_float_literal(1e-40).ends_with("p-149f")); // subnormal
/// ```
pub fn c_float_literal(v: f32) -> String {
    if v == 0.0 {
        return if v.is_sign_negative() {
            "-0.0f".to_owned()
        } else {
            "0.0f".to_owned()
        };
    }
    let bits = v.to_bits();
    let sign = if bits >> 31 != 0 { "-" } else { "" };
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0 {
        // Subnormal: value = man * 2^-149.
        return format!("{sign}0x{man:x}p-149f");
    }
    format!("{sign}0x1.{:06x}p{:+}f", man << 1, exp - 127)
}

/// Emits a full translation unit for a forest: one function per tree
/// plus `unsigned int predict_forest_<variant>(const float* pX)` doing
/// a majority vote (ties to the lower class, matching `flint-exec`).
pub fn emit_forest_c(forest: &RandomForest, variant: CVariant) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* Generated by flint-codegen ({}) */",
        variant.suffix()
    );
    let _ = writeln!(out, "#include <stddef.h>\n");
    for (i, tree) in forest.trees().iter().enumerate() {
        out.push_str(&emit_tree_c(tree, i, variant));
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "unsigned int predict_forest_{}(const float* pX) {{",
        variant.suffix()
    );
    let _ = writeln!(
        out,
        "    unsigned int votes[{}] = {{0}};",
        forest.n_classes()
    );
    for i in 0..forest.n_trees() {
        let _ = writeln!(
            out,
            "    votes[predict_tree_{i}_{}(pX)] += 1u;",
            variant.suffix()
        );
    }
    let _ = writeln!(
        out,
        "    unsigned int best = 0u;\n    for (size_t c = 1; c < {}; ++c) {{\n        if (votes[c] > votes[best]) best = (unsigned int)c;\n    }}\n    return best;",
        forest.n_classes()
    );
    let _ = writeln!(out, "}}");
    out
}

/// The branch condition text for the **double precision** realization
/// `pX[feature] <= (double)threshold` (the paper's generator supports
/// both widths; converting the trained `f32` threshold to `f64` is
/// exact, and the FLInt immediate becomes a 64-bit constant compared
/// as `long long` — Section IV-C).
pub fn condition_f64(feature: u32, threshold: f32, variant: CVariant) -> String {
    let threshold = f64::from(threshold); // exact widening
    match variant {
        CVariant::Standard => format!("pX[{feature}] <= (double){threshold:?}"),
        CVariant::Flint => {
            let prepared =
                PreparedThreshold::new(threshold).expect("validated trees have no NaN thresholds");
            let key = prepared.key() as u64;
            if prepared.flips_sign() {
                format!(
                    "((long long)(0x{key:016x}LL)) <= ((*(((long long*)(pX))+{feature})) ^ (1LL<<63))"
                )
            } else {
                format!("(*(((long long*)(pX))+{feature})) <= ((long long)(0x{key:016x}LL))")
            }
        }
    }
}

/// Emits one `unsigned int predict_tree_<index>_<variant>_f64(const
/// double* pX)` function — the double-precision twin of
/// [`emit_tree_c`].
///
/// # Panics
///
/// Panics if the tree contains NaN thresholds.
pub fn emit_tree_c_f64(tree: &DecisionTree, index: usize, variant: CVariant) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "unsigned int predict_tree_{index}_{}_f64(const double* pX) {{",
        variant.suffix()
    );
    emit_node_f64(&mut out, tree, NodeId::ROOT, variant, 1);
    let _ = writeln!(out, "}}");
    out
}

fn emit_node_f64(
    out: &mut String,
    tree: &DecisionTree,
    id: NodeId,
    variant: CVariant,
    depth: usize,
) {
    match &tree.nodes()[id.index()] {
        Node::Leaf { class, .. } => {
            indent(out, depth);
            let _ = writeln!(out, "return {class}u;");
        }
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            indent(out, depth);
            let _ = writeln!(
                out,
                "if ({}) {{",
                condition_f64(*feature, *threshold, variant)
            );
            emit_node_f64(out, tree, *left, variant, depth + 1);
            indent(out, depth);
            let _ = writeln!(out, "}} else {{");
            emit_node_f64(out, tree, *right, variant, depth + 1);
            indent(out, depth);
            let _ = writeln!(out, "}}");
        }
    }
}

/// Emits a double-precision translation unit: per-tree `_f64` functions
/// plus `predict_forest_<variant>_f64(const double* pX)` majority vote.
pub fn emit_forest_c_f64(forest: &RandomForest, variant: CVariant) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* Generated by flint-codegen ({}, double precision) */",
        variant.suffix()
    );
    let _ = writeln!(out, "#include <stddef.h>\n");
    for (i, tree) in forest.trees().iter().enumerate() {
        out.push_str(&emit_tree_c_f64(tree, i, variant));
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "unsigned int predict_forest_{}_f64(const double* pX) {{",
        variant.suffix()
    );
    let _ = writeln!(
        out,
        "    unsigned int votes[{}] = {{0}};",
        forest.n_classes()
    );
    for i in 0..forest.n_trees() {
        let _ = writeln!(
            out,
            "    votes[predict_tree_{i}_{}_f64(pX)] += 1u;",
            variant.suffix()
        );
    }
    let _ = writeln!(
        out,
        "    unsigned int best = 0u;\n    for (size_t c = 1; c < {}; ++c) {{\n        if (votes[c] > votes[best]) best = (unsigned int)c;\n    }}\n    return best;",
        forest.n_classes()
    );
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_forest::example_tree;

    #[test]
    fn standard_condition_matches_listing1_idiom() {
        let c = condition(3, f32::from_bits(0x4121_3087), CVariant::Standard);
        assert!(c.starts_with("pX[3] <= (float)10.074347"), "{c}");
    }

    #[test]
    fn flint_condition_matches_listing2_idiom() {
        let c = condition(3, f32::from_bits(0x4121_3087), CVariant::Flint);
        assert_eq!(c, "(*(((int*)(pX))+3)) <= ((int)(0x41213087))");
    }

    #[test]
    fn flint_negative_condition_matches_listing4_idiom() {
        let c = condition(125, f32::from_bits(0xc03b_ddde), CVariant::Flint);
        assert_eq!(
            c,
            "((int)(0x403bddde)) <= ((*(((int*)(pX))+125)) ^ (0b1<<31))"
        );
    }

    #[test]
    fn negative_zero_split_emits_positive_zero_immediate() {
        let c = condition(0, -0.0, CVariant::Flint);
        assert_eq!(c, "(*(((int*)(pX))+0)) <= ((int)(0x00000000))");
    }

    #[test]
    fn tree_emission_is_balanced() {
        let tree = example_tree();
        for variant in [CVariant::Standard, CVariant::Flint] {
            let code = emit_tree_c(&tree, 0, variant);
            assert_eq!(
                code.matches('{').count(),
                code.matches('}').count(),
                "unbalanced braces in {variant:?}"
            );
            assert_eq!(code.matches("return").count(), tree.n_leaves());
            assert_eq!(
                code.matches("if (").count(),
                tree.n_nodes() - tree.n_leaves()
            );
        }
    }

    #[test]
    fn forest_emission_contains_all_trees_and_vote() {
        use flint_data::synth::SynthSpec;
        use flint_forest::ForestConfig;
        let data = SynthSpec::new(80, 3, 2).generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(3, 4)).expect("trainable");
        let code = emit_forest_c(&forest, CVariant::Flint);
        for i in 0..3 {
            assert!(
                code.contains(&format!("predict_tree_{i}_flint")),
                "tree {i}"
            );
        }
        assert!(code.contains("predict_forest_flint"));
        assert!(code.contains("votes["));
    }

    #[test]
    fn flint_trees_never_mention_float_comparisons() {
        let tree = example_tree();
        let code = emit_tree_c(&tree, 0, CVariant::Flint);
        assert!(
            !code.contains("(float)"),
            "FLInt code must not contain float casts:\n{code}"
        );
    }

    #[test]
    fn f64_flint_condition_uses_64bit_immediates() {
        // 10.074347... as f64 (widened exactly from the f32 pattern).
        let split = f32::from_bits(0x4121_3087);
        let want_key = f64::from(split).to_bits();
        let c = condition_f64(3, split, CVariant::Flint);
        assert!(c.contains(&format!("0x{want_key:016x}LL")), "{c}");
        assert!(c.contains("long long"), "{c}");
    }

    #[test]
    fn f64_negative_split_uses_63bit_sign_flip() {
        let split = f32::from_bits(0xc03b_ddde); // -2.935417
        let c = condition_f64(125, split, CVariant::Flint);
        assert!(c.contains("(1LL<<63)"), "{c}");
        // Immediate is the sign-cleared 64-bit pattern of |split|.
        let want_key = f64::from(-split).to_bits();
        assert!(c.contains(&format!("0x{want_key:016x}LL")), "{c}");
    }

    #[test]
    fn f64_tree_emission_is_balanced() {
        let tree = example_tree();
        for variant in [CVariant::Standard, CVariant::Flint] {
            let code = emit_tree_c_f64(&tree, 0, variant);
            assert_eq!(code.matches('{').count(), code.matches('}').count());
            assert_eq!(code.matches("return").count(), tree.n_leaves());
            assert!(code.contains("const double* pX"));
        }
        let flint = emit_tree_c_f64(&tree, 0, CVariant::Flint);
        assert!(!flint.contains("(double)"), "{flint}");
    }

    #[test]
    fn f64_forest_unit_contains_vote() {
        use flint_data::synth::SynthSpec;
        use flint_forest::ForestConfig;
        let data = SynthSpec::new(60, 3, 2).generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(2, 3)).expect("trainable");
        let code = emit_forest_c_f64(&forest, CVariant::Flint);
        assert!(code.contains("predict_forest_flint_f64"));
        assert!(code.contains("predict_tree_1_flint_f64"));
    }
}
