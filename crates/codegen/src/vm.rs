//! An integer-only tree virtual machine — the executable stand-in for
//! the paper's direct assembly implementation.
//!
//! The lowering from trees to the Listing-5 instruction stream lives in
//! [`crate::program`] (shared with the `flint-exec` template JIT, which
//! lowers the *same* [`TreeProgram`]s to x86-64 machine code); this
//! module is the interpreter half: [`VmProgram`] executes a program one
//! instruction at a time, counting per-kind instruction executions for
//! the cost-model simulator in `flint-sim`. Executing a program
//! performs *exactly* the instruction sequence the assembly backend
//! would, which is what the simulator charges per machine profile.
//!
//! Three compilation variants cover the evaluation's comparison axes:
//!
//! * [`VmVariant::Flint`] — integer loads, integer compares (no float
//!   instruction in the program at all);
//! * [`VmVariant::NativeFloat`] — float load + float-constant load +
//!   `fcmp` (machines *with* an FPU running the naive trees);
//! * [`VmVariant::SoftFloat`] — float bits loaded as integers but
//!   compared by a software-float comparison call (machines *without*
//!   an FPU running naive trees).

// The instruction set and the lowering are defined once in `program`;
// re-exported here so `vm::Instr`-style paths keep working.
pub use crate::program::{Instr, Reg, TreeProgram, VmVariant};
use flint_forest::{DecisionTree, RandomForest};
use flint_softfloat::soft_le;

/// Per-instruction-kind execution counts of one program run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Integer feature loads (32-bit).
    pub load_word: u64,
    /// Integer feature loads (64-bit, double precision programs).
    pub load_dword: u64,
    /// Float feature loads.
    pub load_float: u64,
    /// Float constant loads (literal pool / data memory).
    pub load_float_const: u64,
    /// `movz` immediate materializations.
    pub movz: u64,
    /// `movk` immediate materializations.
    pub movk: u64,
    /// Sign-flip XORs.
    pub eor: u64,
    /// Integer compares.
    pub cmp_int: u64,
    /// Hardware float compares.
    pub cmp_float: u64,
    /// Software float comparison calls.
    pub soft_cmp: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Of those, how many were taken.
    pub branches_taken: u64,
    /// Unconditional jumps.
    pub jumps: u64,
    /// Returns.
    pub rets: u64,
}

impl ExecStats {
    /// Total instructions executed.
    pub fn total(&self) -> u64 {
        self.load_word
            + self.load_dword
            + self.load_float
            + self.load_float_const
            + self.movz
            + self.movk
            + self.eor
            + self.cmp_int
            + self.cmp_float
            + self.soft_cmp
            + self.branches
            + self.jumps
            + self.rets
    }

    /// Accumulates another run's counts.
    pub fn add(&mut self, other: &ExecStats) {
        self.load_word += other.load_word;
        self.load_dword += other.load_dword;
        self.load_float += other.load_float;
        self.load_float_const += other.load_float_const;
        self.movz += other.movz;
        self.movk += other.movk;
        self.eor += other.eor;
        self.cmp_int += other.cmp_int;
        self.cmp_float += other.cmp_float;
        self.soft_cmp += other.soft_cmp;
        self.branches += other.branches;
        self.branches_taken += other.branches_taken;
        self.jumps += other.jumps;
        self.rets += other.rets;
    }
}

/// Error raised by the VM interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmError {
    /// The program ran past its end without returning.
    FellOffEnd,
    /// A feature offset exceeded the feature vector.
    FeatureOutOfRange {
        /// The offending offset.
        offset: u32,
    },
    /// Instruction budget exhausted (cycle in a malformed program).
    BudgetExhausted,
}

impl core::fmt::Display for VmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::FellOffEnd => write!(f, "program ended without a return"),
            Self::FeatureOutOfRange { offset } => {
                write!(f, "feature offset {offset} outside the feature vector")
            }
            Self::BudgetExhausted => write!(f, "instruction budget exhausted (malformed program)"),
        }
    }
}

impl std::error::Error for VmError {}

/// A compiled tree program bound to the interpreter.
#[derive(Debug, Clone, PartialEq)]
pub struct VmProgram {
    program: TreeProgram,
}

impl From<TreeProgram> for VmProgram {
    /// Binds an already-lowered program to the interpreter.
    fn from(program: TreeProgram) -> Self {
        Self { program }
    }
}

impl VmProgram {
    /// Compiles `tree` under the given comparison variant (the shared
    /// lowering of [`TreeProgram::compile`]).
    ///
    /// # Panics
    ///
    /// Panics if the tree contains NaN thresholds (prevented by tree
    /// validation).
    pub fn compile(tree: &DecisionTree, variant: VmVariant) -> Self {
        TreeProgram::compile(tree, variant).into()
    }

    /// Compiles `tree` as a **double precision** program (the shared
    /// lowering of [`TreeProgram::compile_f64`]); run it with
    /// [`run_f64`](Self::run_f64).
    ///
    /// # Panics
    ///
    /// Panics if the tree contains NaN thresholds.
    pub fn compile_f64(tree: &DecisionTree, variant: VmVariant) -> Self {
        TreeProgram::compile_f64(tree, variant).into()
    }

    /// The underlying shared program.
    pub fn program(&self) -> &TreeProgram {
        &self.program
    }

    /// The compiled instruction stream.
    pub fn instrs(&self) -> &[Instr] {
        self.program.instrs()
    }

    /// The comparison variant this program uses.
    pub fn variant(&self) -> VmVariant {
        self.program.variant()
    }

    /// `true` if no instruction in the program needs an FPU.
    pub fn is_fpu_free(&self) -> bool {
        self.program.is_fpu_free()
    }

    /// Executes a single precision program on `f32` features.
    ///
    /// # Errors
    ///
    /// [`VmError`] on malformed programs or out-of-range feature
    /// offsets. Programs produced by [`VmProgram::compile`] on
    /// validated trees with matching feature vectors never fail.
    pub fn run(&self, features: &[f32]) -> Result<(u32, ExecStats), VmError> {
        self.exec(FeatureBank::Single(features))
    }

    /// Executes a double precision program (from
    /// [`VmProgram::compile_f64`]) on `f64` features.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_f64(&self, features: &[f64]) -> Result<(u32, ExecStats), VmError> {
        self.exec(FeatureBank::Double(features))
    }

    fn exec(&self, features: FeatureBank<'_>) -> Result<(u32, ExecStats), VmError> {
        let instrs = self.program.instrs();
        let mut stats = ExecStats::default();
        // Integer registers are raw 64-bit containers; 32-bit
        // instructions address their low words like `wN` views of `xN`.
        let mut int_regs = [0i64; 4];
        let mut float_regs = [0f64; 4];
        let mut flag_gt = false;
        let mut flag_lt = false;
        let mut pc = 0usize;
        let budget = instrs.len() as u64 * 4 + 16;
        let mut executed = 0u64;
        loop {
            if executed > budget {
                return Err(VmError::BudgetExhausted);
            }
            executed += 1;
            let instr = *instrs.get(pc).ok_or(VmError::FellOffEnd)?;
            pc += 1;
            match instr {
                Instr::LoadWord { dst, offset } => {
                    stats.load_word += 1;
                    int_regs[dst as usize] = i64::from(features.bits32(offset)?);
                }
                Instr::LoadDword { dst, offset } => {
                    stats.load_dword += 1;
                    int_regs[dst as usize] = features.bits64(offset)? as i64;
                }
                Instr::LoadFloat { dst, offset } => {
                    stats.load_float += 1;
                    float_regs[dst as usize] = f64::from(f32::from_bits(features.bits32(offset)?));
                }
                Instr::LoadDouble { dst, offset } => {
                    stats.load_float += 1;
                    float_regs[dst as usize] = f64::from_bits(features.bits64(offset)?);
                }
                Instr::Movz { dst, imm } => {
                    stats.movz += 1;
                    // movz zero-extends the 16-bit immediate.
                    int_regs[dst as usize] = i64::from(imm);
                }
                Instr::Movk { dst, imm, shift } => {
                    stats.movk += 1;
                    let mask = 0xffffu64 << shift;
                    let old = int_regs[dst as usize] as u64;
                    int_regs[dst as usize] = ((old & !mask) | (u64::from(imm) << shift)) as i64;
                }
                Instr::LoadFloatConst { dst, value } => {
                    stats.load_float_const += 1;
                    float_regs[dst as usize] = f64::from(value);
                }
                Instr::LoadDoubleConst { dst, value } => {
                    stats.load_float_const += 1;
                    float_regs[dst as usize] = value;
                }
                Instr::EorSign { dst } => {
                    stats.eor += 1;
                    // 32-bit eor on the low word.
                    int_regs[dst as usize] ^= 0x8000_0000;
                }
                Instr::EorSign64 { dst } => {
                    stats.eor += 1;
                    int_regs[dst as usize] ^= i64::MIN;
                }
                Instr::Cmp { a, b } => {
                    stats.cmp_int += 1;
                    let x = int_regs[a as usize] as u32 as i32;
                    let y = int_regs[b as usize] as u32 as i32;
                    flag_gt = x > y;
                    flag_lt = x < y;
                }
                Instr::Cmp64 { a, b } => {
                    stats.cmp_int += 1;
                    let (x, y) = (int_regs[a as usize], int_regs[b as usize]);
                    flag_gt = x > y;
                    flag_lt = x < y;
                }
                Instr::Fcmp { a, b } => {
                    stats.cmp_float += 1;
                    let (x, y) = (float_regs[a as usize], float_regs[b as usize]);
                    flag_gt = x > y;
                    flag_lt = x < y;
                }
                Instr::SoftCmp { a, b } => {
                    stats.soft_cmp += 1;
                    let x = f32::from_bits(int_regs[a as usize] as u32);
                    let y = f32::from_bits(int_regs[b as usize] as u32);
                    // Software comparison routine — integer-only inside.
                    let le = soft_le(x, y);
                    let eq = flint_softfloat::soft_eq(x, y);
                    flag_gt = !le;
                    flag_lt = le && !eq;
                }
                Instr::SoftCmp64 { a, b } => {
                    stats.soft_cmp += 1;
                    let x = f64::from_bits(int_regs[a as usize] as u64);
                    let y = f64::from_bits(int_regs[b as usize] as u64);
                    let le = soft_le(x, y);
                    let eq = flint_softfloat::soft_eq(x, y);
                    flag_gt = !le;
                    flag_lt = le && !eq;
                }
                Instr::BranchGt { target } => {
                    stats.branches += 1;
                    if flag_gt {
                        stats.branches_taken += 1;
                        pc = target as usize;
                    }
                }
                Instr::BranchLt { target } => {
                    stats.branches += 1;
                    if flag_lt {
                        stats.branches_taken += 1;
                        pc = target as usize;
                    }
                }
                Instr::Jump { target } => {
                    stats.jumps += 1;
                    pc = target as usize;
                }
                Instr::Ret { class } => {
                    stats.rets += 1;
                    return Ok((class, stats));
                }
            }
        }
    }
}

/// The feature vector a program executes against: `f32` rows for single
/// precision programs, `f64` rows for double precision ones.
#[derive(Debug, Clone, Copy)]
enum FeatureBank<'a> {
    Single(&'a [f32]),
    Double(&'a [f64]),
}

impl FeatureBank<'_> {
    /// 32-bit pattern of feature `offset` (single precision banks only;
    /// a double bank narrows exactly when the value is representable —
    /// programs never mix widths, so this path is single-bank only in
    /// practice and narrowing is a defensive fallback).
    fn bits32(self, offset: u32) -> Result<u32, VmError> {
        match self {
            FeatureBank::Single(f) => f
                .get(offset as usize)
                .map(|v| v.to_bits())
                .ok_or(VmError::FeatureOutOfRange { offset }),
            FeatureBank::Double(f) => f
                .get(offset as usize)
                .map(|v| (*v as f32).to_bits())
                .ok_or(VmError::FeatureOutOfRange { offset }),
        }
    }

    /// 64-bit pattern of feature `offset` (single banks widen exactly).
    fn bits64(self, offset: u32) -> Result<u64, VmError> {
        match self {
            FeatureBank::Single(f) => f
                .get(offset as usize)
                .map(|v| f64::from(*v).to_bits())
                .ok_or(VmError::FeatureOutOfRange { offset }),
            FeatureBank::Double(f) => f
                .get(offset as usize)
                .map(|v| v.to_bits())
                .ok_or(VmError::FeatureOutOfRange { offset }),
        }
    }
}

/// A forest compiled to VM programs with majority-vote aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct VmForest {
    programs: Vec<VmProgram>,
    n_classes: usize,
}

impl VmForest {
    /// Compiles every tree of `forest` under `variant`.
    pub fn compile(forest: &RandomForest, variant: VmVariant) -> Self {
        Self {
            programs: TreeProgram::compile_forest(forest, variant)
                .into_iter()
                .map(VmProgram::from)
                .collect(),
            n_classes: forest.n_classes(),
        }
    }

    /// The per-tree programs.
    pub fn programs(&self) -> &[VmProgram] {
        &self.programs
    }

    /// Number of classes voted over.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Majority-vote prediction plus accumulated instruction counts.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError`] from any tree program.
    pub fn run(&self, features: &[f32]) -> Result<(u32, ExecStats), VmError> {
        let (votes, stats) = self.run_votes(features)?;
        Ok((flint_forest::metrics::majority_vote(&votes), stats))
    }

    /// Per-class vote histogram (one vote per tree program) plus
    /// accumulated instruction counts — the partial a forest shard
    /// reports for distributed merge.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError`] from any tree program.
    pub fn run_votes(&self, features: &[f32]) -> Result<(Vec<u32>, ExecStats), VmError> {
        let mut votes = vec![0u32; self.n_classes];
        let mut stats = ExecStats::default();
        for p in &self.programs {
            let (class, s) = p.run(features)?;
            votes[class as usize] += 1;
            stats.add(&s);
        }
        Ok((votes, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_forest::example_tree;

    #[test]
    fn flint_program_matches_reference_tree() {
        let tree = example_tree();
        let program = VmProgram::compile(&tree, VmVariant::Flint);
        for input in [
            [0.0f32, -2.0],
            [0.0, 0.0],
            [1.0, 0.0],
            [0.5, -1.25],
            [-1.0, -0.0],
        ] {
            let (class, _) = program.run(&input).expect("runs");
            assert_eq!(class, tree.predict(&input), "{input:?}");
        }
    }

    #[test]
    fn all_variants_agree() {
        let tree = example_tree();
        let flint = VmProgram::compile(&tree, VmVariant::Flint);
        let float = VmProgram::compile(&tree, VmVariant::NativeFloat);
        let soft = VmProgram::compile(&tree, VmVariant::SoftFloat);
        for input in [[0.3f32, -1.3], [0.6, 2.0], [0.5, -1.25], [-7.0, 0.0]] {
            let want = tree.predict(&input);
            assert_eq!(flint.run(&input).expect("runs").0, want);
            assert_eq!(float.run(&input).expect("runs").0, want);
            assert_eq!(soft.run(&input).expect("runs").0, want);
        }
    }

    #[test]
    fn interpreter_executes_the_shared_lowering() {
        let tree = example_tree();
        let shared = TreeProgram::compile(&tree, VmVariant::Flint);
        let vm = VmProgram::compile(&tree, VmVariant::Flint);
        assert_eq!(vm.program(), &shared);
        assert_eq!(vm.instrs(), shared.instrs());
        let rebound: VmProgram = shared.into();
        assert_eq!(rebound, vm);
    }

    #[test]
    fn flint_programs_are_fpu_free() {
        let tree = example_tree();
        assert!(VmProgram::compile(&tree, VmVariant::Flint).is_fpu_free());
        assert!(VmProgram::compile(&tree, VmVariant::SoftFloat).is_fpu_free());
        assert!(!VmProgram::compile(&tree, VmVariant::NativeFloat).is_fpu_free());
    }

    #[test]
    fn instruction_counts_match_listing_shape() {
        let tree = example_tree();
        let program = VmProgram::compile(&tree, VmVariant::Flint);
        // Path [1.0, 0.0]: root (positive split, no eor) then right leaf:
        // ldrsw + movz + movk + cmp + b.gt(taken) + ret = 6 instructions.
        let (_, stats) = program.run(&[1.0, 0.0]).expect("runs");
        assert_eq!(stats.load_word, 1);
        assert_eq!(stats.movz, 1);
        assert_eq!(stats.movk, 1);
        assert_eq!(stats.cmp_int, 1);
        assert_eq!(stats.branches, 1);
        assert_eq!(stats.branches_taken, 1);
        assert_eq!(stats.eor, 0);
        assert_eq!(stats.rets, 1);
        assert_eq!(stats.total(), 6);
        // Path [0.0, 0.0]: root (no eor) + inner (-1.25 split: eor) then
        // leaf — the eor fires exactly once.
        let (_, stats) = program.run(&[0.0, 0.0]).expect("runs");
        assert_eq!(stats.eor, 1);
        assert_eq!(stats.cmp_int, 2);
    }

    #[test]
    fn native_variant_counts_float_instructions() {
        let tree = example_tree();
        let program = VmProgram::compile(&tree, VmVariant::NativeFloat);
        let (_, stats) = program.run(&[1.0, 0.0]).expect("runs");
        assert_eq!(stats.load_float, 1);
        assert_eq!(stats.load_float_const, 1);
        assert_eq!(stats.cmp_float, 1);
        assert_eq!(stats.cmp_int, 0);
    }

    #[test]
    fn soft_variant_counts_softcmp() {
        let tree = example_tree();
        let program = VmProgram::compile(&tree, VmVariant::SoftFloat);
        let (_, stats) = program.run(&[1.0, 0.0]).expect("runs");
        assert_eq!(stats.soft_cmp, 1);
        assert_eq!(stats.cmp_float, 0);
    }

    #[test]
    fn feature_out_of_range_is_reported() {
        let tree = example_tree();
        let program = VmProgram::compile(&tree, VmVariant::Flint);
        // [0.0] goes left at the root into the node testing feature 1,
        // which is outside the truncated feature vector.
        assert_eq!(
            program.run(&[0.0]).unwrap_err(),
            VmError::FeatureOutOfRange { offset: 1 }
        );
    }

    #[test]
    fn f64_programs_match_reference_on_all_variants() {
        let tree = example_tree();
        let flint = VmProgram::compile_f64(&tree, VmVariant::Flint);
        let float = VmProgram::compile_f64(&tree, VmVariant::NativeFloat);
        let soft = VmProgram::compile_f64(&tree, VmVariant::SoftFloat);
        assert!(flint.is_fpu_free());
        assert!(soft.is_fpu_free());
        for input in [
            [0.3f32, -1.3],
            [0.6, 2.0],
            [0.5, -1.25],
            [-7.0, 0.0],
            [0.5, -0.0],
        ] {
            let wide: Vec<f64> = input.iter().map(|&v| f64::from(v)).collect();
            let want = tree.predict(&input);
            assert_eq!(flint.run_f64(&wide).expect("runs").0, want, "{input:?}");
            assert_eq!(float.run_f64(&wide).expect("runs").0, want, "{input:?}");
            assert_eq!(soft.run_f64(&wide).expect("runs").0, want, "{input:?}");
        }
    }

    #[test]
    fn f64_flint_uses_four_part_immediates() {
        let tree = example_tree();
        let program = VmProgram::compile_f64(&tree, VmVariant::Flint);
        // Path [1.0, 0.0]: one split — ldr x + movz + 3×movk + cmp +
        // branch + ret = 8 instructions.
        let (_, stats) = program.run_f64(&[1.0, 0.0]).expect("runs");
        assert_eq!(stats.load_dword, 1);
        assert_eq!(stats.load_word, 0);
        assert_eq!(stats.movz, 1);
        assert_eq!(stats.movk, 3);
        assert_eq!(stats.cmp_int, 1);
        assert_eq!(stats.total(), 8);
    }

    #[test]
    fn f64_inputs_between_f32_values() {
        // A double strictly between adjacent f32 values must route per
        // exact f64 comparison against the widened threshold.
        let tree = example_tree(); // root split 0.5
        let program = VmProgram::compile_f64(&tree, VmVariant::Flint);
        let above = 0.5f64 + f64::EPSILON;
        assert_eq!(program.run_f64(&[above, 0.0]).expect("runs").0, 2);
        let below = 0.5f64 - f64::EPSILON;
        assert_ne!(program.run_f64(&[below, 0.0]).expect("runs").0, 2);
    }

    #[test]
    fn forest_vm_majority_vote() {
        use flint_data::synth::SynthSpec;
        use flint_forest::{ForestConfig, RandomForest};
        let data = SynthSpec::new(150, 4, 3).seed(6).generate();
        let forest = RandomForest::fit(&data, &ForestConfig::grid(5, 6)).expect("trainable");
        let vm = VmForest::compile(&forest, VmVariant::Flint);
        assert_eq!(vm.programs().len(), 5);
        // Agreement with the majority vote every engine implements.
        for i in 0..data.n_samples() {
            let (class, stats) = vm.run(data.sample(i)).expect("runs");
            assert_eq!(class, forest.predict_majority(data.sample(i)));
            assert!(stats.total() > 0);
        }
    }
}
